//! Exhaustive cross-checks of the optimizer core (paper §5.2, Problems
//! 1 & 2): the max-flow solvers must match brute-force enumeration on
//! random instances of ≤ 12 nodes, across a wide seeded sample.
//!
//! These complement `property_invariants.rs` (which covers n < 8 through
//! the proptest harness) with larger DAGs, denser edge distributions, and
//! independent validity checks that do not trust the brute-force solvers
//! either: closure under prerequisites for PSP, feasibility plus
//! `cost_of` agreement for OEP.

use helix_common::SplitMix64;
use helix_flow::oep::{NodeCosts, OepProblem, State};
use helix_flow::psp::is_closed;
use helix_flow::{Dag, NodeId, ProjectSelection};

/// Random DAG on `n` nodes: each (j < i) edge is present with probability
/// `density`. Edges always point id-upward, so acyclicity is structural.
fn random_dag(n: usize, density: f64, rng: &mut SplitMix64) -> Dag<()> {
    let mut dag: Dag<()> = Dag::new();
    let ids: Vec<NodeId> = (0..n).map(|_| dag.add_node(())).collect();
    for i in 1..n {
        for j in 0..i {
            if rng.chance(density) {
                dag.add_edge(ids[j], ids[i]).unwrap();
            }
        }
    }
    dag
}

#[test]
fn psp_min_cut_matches_exhaustive_enumeration() {
    let mut rng = SplitMix64::new(0x9a7_0001);
    for case in 0..300 {
        let n = 1 + rng.index(12);
        let density = rng.range_f64(0.05, 0.7);
        let mut psp = ProjectSelection::new();
        let mut profits = Vec::new();
        for _ in 0..n {
            // Profits in [-40, 40]; a sprinkle of zeros exercises ties.
            let profit = rng.next_below(81) as i128 - 40;
            profits.push(profit);
            psp.add_project(profit);
        }
        // Prerequisites point id-downward (j < i), mirroring the OEP
        // reduction's shape, with occasional duplicates.
        for i in 1..n {
            for j in 0..i {
                if rng.chance(density) {
                    psp.add_prerequisite(i, j);
                }
            }
        }

        let fast = psp.solve();
        let slow = psp.solve_brute_force();
        assert_eq!(
            fast.profit, slow.profit,
            "case {case}: min-cut profit {} != exhaustive {}",
            fast.profit, slow.profit
        );
        // Independent checks, trusting neither solver: the min-cut
        // selection must be closed and its claimed profit must re-add.
        assert!(is_closed(&psp, &fast.selected), "case {case}: selection not closed");
        let readded: i128 = fast
            .selected
            .iter()
            .enumerate()
            .filter(|(_, sel)| **sel)
            .map(|(i, _)| profits[i])
            .sum();
        assert_eq!(readded, fast.profit, "case {case}: profit accounting broken");
    }
}

#[test]
fn psp_profit_never_negative_and_empty_is_ok() {
    // The empty set is always closed with profit 0, so no optimal
    // selection can do worse.
    let mut rng = SplitMix64::new(0x9a7_0002);
    for _ in 0..100 {
        let n = 1 + rng.index(12);
        let mut psp = ProjectSelection::new();
        for _ in 0..n {
            psp.add_project(-(rng.next_below(50) as i128));
        }
        for i in 1..n {
            if rng.chance(0.4) {
                psp.add_prerequisite(i, rng.index(i));
            }
        }
        let solution = psp.solve();
        assert!(solution.profit >= 0);
    }
    assert_eq!(ProjectSelection::new().solve().profit, 0);
}

/// Enumerate all 3^n state vectors, keeping the feasible minimum.
fn oep_exhaustive<T>(problem: &OepProblem<'_, T>, n: usize) -> Option<u64> {
    let mut best: Option<u64> = None;
    let mut states = vec![State::Compute; n];
    let total = 3usize.pow(n as u32);
    for mut code in 0..total {
        for slot in states.iter_mut() {
            *slot = match code % 3 {
                0 => State::Compute,
                1 => State::Load,
                _ => State::Prune,
            };
            code /= 3;
        }
        if !problem.is_feasible(&states) {
            continue;
        }
        if let Some(cost) = problem.cost_of(&states) {
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
    }
    best
}

#[test]
fn oep_state_assignment_matches_independent_enumeration() {
    let mut rng = SplitMix64::new(0x0e9_0001);
    for case in 0..120 {
        // 3^n enumeration: keep n ≤ 9 here (the dedicated 12-node case
        // below uses the library's own brute force, which prunes).
        let n = 2 + rng.index(8);
        let density = rng.range_f64(0.1, 0.6);
        let dag = random_dag(n, density, &mut rng);
        let costs: Vec<NodeCosts> = (0..n)
            .map(|i| {
                let compute = 1 + rng.next_below(60);
                let load = rng.chance(0.65).then(|| 1 + rng.next_below(60));
                let mut c = NodeCosts::new(compute, load);
                if rng.chance(0.2) {
                    c = c.forced();
                }
                if i == n - 1 || rng.chance(0.15) {
                    c = c.required();
                }
                c
            })
            .collect();

        let problem = OepProblem::new(&dag, &costs);
        let fast = problem.solve();
        assert!(
            problem.is_feasible(&fast.states),
            "case {case}: max-flow produced infeasible states {:?}",
            fast.states
        );
        assert_eq!(
            problem.cost_of(&fast.states),
            Some(fast.total_cost),
            "case {case}: reported cost disagrees with Equation 1"
        );
        let best = oep_exhaustive(&problem, n)
            .expect("all-Compute is always feasible, so an optimum exists");
        assert_eq!(
            fast.total_cost, best,
            "case {case}: max-flow {} != exhaustive optimum {}",
            fast.total_cost, best
        );
    }
}

#[test]
fn oep_matches_library_brute_force_up_to_twelve_nodes() {
    let mut rng = SplitMix64::new(0x0e9_0002);
    for case in 0..40 {
        let n = 9 + rng.index(4); // 9..=12
        let dag = random_dag(n, rng.range_f64(0.1, 0.4), &mut rng);
        let costs: Vec<NodeCosts> = (0..n)
            .map(|i| {
                let compute = 1 + rng.next_below(40);
                let load = rng.chance(0.6).then(|| 1 + rng.next_below(40));
                let mut c = NodeCosts::new(compute, load);
                if rng.chance(0.25) {
                    c = c.forced();
                } else if i == n - 1 {
                    c = c.required();
                }
                c
            })
            .collect();
        let problem = OepProblem::new(&dag, &costs);
        let fast = problem.solve();
        let slow = problem.solve_brute_force();
        assert!(problem.is_feasible(&fast.states), "case {case}");
        assert_eq!(fast.total_cost, slow.total_cost, "case {case}");
    }
}

#[test]
fn oep_load_everything_when_loads_are_cheap() {
    // Sanity anchor with a known answer: a chain where every node has a
    // cheap load must load the required sink and prune the rest.
    let mut dag: Dag<()> = Dag::new();
    let ids: Vec<NodeId> = (0..5).map(|_| dag.add_node(())).collect();
    for w in ids.windows(2) {
        dag.add_edge(w[0], w[1]).unwrap();
    }
    let costs: Vec<NodeCosts> = (0..5)
        .map(|i| {
            let mut c = NodeCosts::new(1_000, Some(1));
            if i == 4 {
                c = c.required();
            }
            c
        })
        .collect();
    let problem = OepProblem::new(&dag, &costs);
    let solution = problem.solve();
    assert_eq!(solution.total_cost, 1);
    assert_eq!(solution.states[4], State::Load);
    assert!(solution.states[..4].iter().all(|s| *s == State::Prune));
}
