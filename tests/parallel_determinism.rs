//! The tentpole obligation of the parallel engine: for every workload,
//! any worker count, **and pipelining on or off**, execution must be
//! indistinguishable from the serial engine — byte-identical outputs,
//! identical OEP `State` assignments, and identical materialization
//! decisions.
//!
//! Each comparison runs a fresh session per configuration with the same
//! seed over three iterations: the initial build, one scripted change,
//! and one identical rerun (which exercises the parallel `Load` path —
//! and, pipelined, the prefetch lane). The baseline is the strictly
//! serial engine (one worker, `pipeline(false)`); every other
//! configuration runs with the pipelined lanes on, so prefetched loads
//! and staged background writes are held to the same bar as frontier
//! scheduling. Outputs are compared through the storage codec, so
//! "identical" means identical to the byte.
//!
//! One caveat is inherent to the paper, not to the scheduler: under
//! `MatStrategy::Opt`, Algorithm 2's *elective* decision compares the
//! measured cumulative run time `C(n)` against `2·l(n)`, so a node whose
//! margin is a few microseconds can flip between any two runs — serial
//! rerun included. The parallel engine guarantees decisions are replayed
//! in the serial engine's order with the same catalog/budget state, which
//! makes decisions identical whenever the cost comparison itself is
//! stable. The suite therefore checks elective decisions under
//! configurations where the threshold is decisively one-sided (AM, NM,
//! and Opt on a slow disk where loads can never win), and checks the
//! mandatory-output decisions everywhere.

use helix_core::{IterationReport, MatStrategy, Session, SessionConfig};
use helix_storage::{encode_value, DiskProfile};
use helix_workloads::{
    run_iterations, CensusWorkload, GenomicsWorkload, IeWorkload, MnistWorkload, Workload,
};
use std::collections::BTreeMap;

/// Everything about an iteration that must not depend on the worker count.
#[derive(Debug, PartialEq)]
struct IterationFingerprint {
    /// Output name → encoded bytes.
    outputs: BTreeMap<String, Vec<u8>>,
    /// Node name → OEP state label.
    states: Vec<(String, String)>,
    /// Node name → whether its result was materialized this iteration.
    /// Restricted to mandatory outputs when elective decisions are
    /// timing-marginal (see module docs).
    materialized: BTreeMap<String, bool>,
    /// Node name → run-state label (computed / loaded / pruned).
    run_states: BTreeMap<String, String>,
}

fn fingerprint(report: &IterationReport, compare_elective: bool) -> IterationFingerprint {
    IterationFingerprint {
        outputs: report
            .outputs
            .iter()
            .map(|(name, value)| (name.clone(), encode_value(value)))
            .collect(),
        states: report
            .states
            .iter()
            .map(|(name, state)| (name.clone(), format!("{state:?}")))
            .collect(),
        materialized: report
            .metrics
            .node_runs
            .iter()
            .filter(|run| compare_elective || report.outputs.contains_key(&run.name))
            .map(|run| (run.name.clone(), run.materialized_bytes > 0))
            .collect(),
        run_states: report
            .metrics
            .node_runs
            .iter()
            .map(|run| (run.name.clone(), format!("{:?}", run.state)))
            .collect(),
    }
}

struct Flavor {
    strategy: MatStrategy,
    disk: DiskProfile,
    /// Whether elective Algorithm-2 decisions are deterministic under
    /// this configuration (decisively one-sided thresholds).
    compare_elective: bool,
}

impl Flavor {
    /// HELIX OPT on the unthrottled test disk: elective margins can be
    /// microseconds, so only mandatory decisions are compared.
    fn opt() -> Flavor {
        Flavor {
            strategy: MatStrategy::Opt,
            disk: DiskProfile::unthrottled(),
            compare_elective: false,
        }
    }

    /// HELIX OPT on a deliberately slow disk: `2·l(n)` dwarfs any `C(n)`,
    /// so Algorithm 2 deterministically declines every elective write and
    /// the full decision set is comparable.
    fn opt_slow_disk() -> Flavor {
        Flavor {
            strategy: MatStrategy::Opt,
            disk: DiskProfile::scaled(1_000, 50_000_000),
            compare_elective: true,
        }
    }

    /// HELIX AM: every out-of-scope node is written — the strictest test
    /// of the deterministic finalize order, since every decision hits the
    /// catalog and budget accounting.
    fn always() -> Flavor {
        Flavor {
            strategy: MatStrategy::Always,
            disk: DiskProfile::unthrottled(),
            compare_elective: true,
        }
    }

    /// HELIX NM: nothing is ever written.
    fn never() -> Flavor {
        Flavor {
            strategy: MatStrategy::Never,
            disk: DiskProfile::unthrottled(),
            compare_elective: true,
        }
    }
}

/// Run three iterations (initial, one scripted change, identical rerun)
/// and fingerprint each, plus the final catalog signature set.
fn run_trace<W: Workload>(
    mut workload: W,
    workers: usize,
    flavor: &Flavor,
    pipelined: bool,
) -> (Vec<IterationFingerprint>, Vec<String>) {
    let config = SessionConfig::in_memory()
        .with_workers(workers)
        .with_strategy(flavor.strategy)
        .with_disk(flavor.disk)
        .with_pipeline(pipelined);
    let mut session = Session::new(config).expect("session opens");
    let change = workload.scripted_sequence()[0];
    let mut reports =
        run_iterations(&mut session, &mut workload, &[change]).expect("iterations run");
    reports.push(session.run(&workload.build()).expect("identical rerun"));
    session.sync().expect("background writes drain");
    let fingerprints = reports.iter().map(|r| fingerprint(r, flavor.compare_elective)).collect();
    let catalog_sigs = session.catalog().entries().iter().map(|e| e.signature.clone()).collect();
    (fingerprints, catalog_sigs)
}

fn assert_workers_equivalent<W: Workload, F: Fn() -> W>(make: F, flavor: Flavor) {
    let (baseline, baseline_sigs) = run_trace(make(), 1, &flavor, false);
    // Workers = 1 exercises the pipelined lanes on the inline driver;
    // 2/4/8 exercise them against frontier scheduling.
    for workers in [1, 2, 4, 8] {
        let (parallel, parallel_sigs) = run_trace(make(), workers, &flavor, true);
        assert_eq!(baseline.len(), parallel.len());
        for (iteration, (serial_fp, parallel_fp)) in baseline.iter().zip(&parallel).enumerate() {
            assert_eq!(
                serial_fp, parallel_fp,
                "{workers} pipelined workers diverged from serial at iteration {iteration}"
            );
        }
        if flavor.compare_elective {
            assert_eq!(
                baseline_sigs, parallel_sigs,
                "{workers} pipelined workers left a different catalog than serial"
            );
        }
    }
}

#[test]
fn census_parallel_execution_is_bit_identical_to_serial() {
    assert_workers_equivalent(CensusWorkload::small, Flavor::opt());
}

#[test]
fn genomics_parallel_execution_is_bit_identical_to_serial() {
    assert_workers_equivalent(GenomicsWorkload::small, Flavor::opt());
}

#[test]
fn ie_parallel_execution_is_bit_identical_to_serial() {
    assert_workers_equivalent(IeWorkload::small, Flavor::opt());
}

#[test]
fn mnist_parallel_execution_is_bit_identical_to_serial() {
    // MNIST includes the volatile random-Fourier learner; nonce refresh
    // order is a session-level decision, so volatility must not leak
    // scheduling nondeterminism either.
    assert_workers_equivalent(MnistWorkload::small, Flavor::opt());
}

#[test]
fn opt_decisions_are_worker_count_invariant_on_slow_disk() {
    assert_workers_equivalent(CensusWorkload::small, Flavor::opt_slow_disk());
}

#[test]
fn always_materialize_is_worker_count_invariant() {
    assert_workers_equivalent(CensusWorkload::small, Flavor::always());
    assert_workers_equivalent(GenomicsWorkload::small, Flavor::always());
}

#[test]
fn never_materialize_is_worker_count_invariant() {
    assert_workers_equivalent(IeWorkload::small, Flavor::never());
}
