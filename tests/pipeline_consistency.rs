//! Consistency obligations of the pipelined iteration runtime's write
//! lane (staged catalog commits):
//!
//! * **Order independence** — background writes may land in *any*
//!   interleaving (the writer races loads, restores, and releases);
//!   final catalog contents, manifest contents, and loaded bytes must be
//!   identical to the serial inline-write engine regardless.
//! * **Crash consistency** — a process killed at any point of the staged
//!   protocol (after staging, mid-drain, before the manifest commit)
//!   must recover to a consistent catalog: a parseable manifest, every
//!   referenced file present and readable, no stray temp or orphan
//!   artifacts, and accounting that matches the entries.
//! * **End-to-end** — a pipelined session's reports and catalog equal a
//!   serial session's even when the background queue is deliberately
//!   left deep across iteration boundaries.

use helix::core::{MatStrategy, Session, SessionConfig, Workflow};
use helix::storage::{encode_value, DiskProfile, MaterializationCatalog};
use helix_common::hash::Signature;
use helix_common::SplitMix64;
use helix_data::{Scalar, Value};
use proptest::prelude::*;

fn scalar(v: f64) -> Value {
    Value::Scalar(Scalar::F64(v))
}

/// Signature → (node name, value) test fixtures, `n` of them.
fn fixtures(n: usize) -> Vec<(Signature, String, Value)> {
    (0..n)
        .map(|i| {
            let name = format!("node-{i}");
            (Signature::of_str(&name), name, scalar(i as f64 * 1.5 + 0.25))
        })
        .collect()
}

/// The serial reference: inline `store_owned` in decision order.
fn serial_catalog(items: &[(Signature, String, Value)]) -> MaterializationCatalog {
    let cat = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
    for (iteration, (sig, name, value)) in items.iter().enumerate() {
        cat.store_owned(*sig, "t", name, iteration as u64, value).unwrap();
    }
    cat
}

fn entry_fingerprints(cat: &MaterializationCatalog) -> Vec<(String, u64, Vec<String>)> {
    cat.entries().iter().map(|e| (e.signature.clone(), e.bytes, e.owners().to_vec())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stage everything in decision order (as the engine's deterministic
    /// finalize sequence does), land the file writes in a *random*
    /// permutation with loads interleaved, then commit. The catalog must
    /// be indistinguishable from the serial inline-write reference.
    #[test]
    fn background_completion_order_never_changes_catalog_contents(
        seed in any::<u64>(),
        n in 2usize..10,
    ) {
        let items = fixtures(n);
        let reference = serial_catalog(&items);

        let cat = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let mut frames = Vec::new();
        for (iteration, (sig, name, value)) in items.iter().enumerate() {
            let (_, _, frame) = cat.stage_owned(*sig, "t", name, iteration as u64, value).unwrap();
            frames.push((*sig, frame));
        }
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut frames);
        for (k, (sig, frame)) in frames.iter().enumerate() {
            // Interleave loads with pending and landed writes alike: the
            // bytes served must never depend on whether the file landed.
            let probe = &items[k % items.len()];
            let (loaded, _, _) = cat.load_for(probe.0, "t").unwrap();
            prop_assert_eq!(encode_value(&loaded), encode_value(&probe.2));
            cat.complete_stage(*sig, frame).unwrap();
        }
        cat.commit_staged().unwrap();

        prop_assert_eq!(cat.pending_stages(), 0);
        prop_assert_eq!(entry_fingerprints(&cat), entry_fingerprints(&reference));
        prop_assert_eq!(cat.total_bytes(), reference.total_bytes());
        // Every artifact is durable and byte-identical to the reference.
        for (sig, _, value) in &items {
            let (got, _) = cat.load(*sig).unwrap();
            prop_assert_eq!(encode_value(&got), encode_value(value));
        }
        // The sealed manifest round-trips through a fresh process.
        let root = cat.root().to_path_buf();
        drop(cat);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        prop_assert_eq!(reopened.len(), items.len());
    }

    /// Kill the writer at a random point: some writes landed (in a random
    /// order), some never did, the manifest commit may or may not have
    /// happened. Reopening must always yield a consistent catalog.
    #[test]
    fn crash_at_any_point_of_the_background_drain_recovers_consistently(
        seed in any::<u64>(),
        n in 2usize..10,
        committed in prop::bool::ANY,
    ) {
        let items = fixtures(n);
        let cat = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
        let mut frames = Vec::new();
        for (iteration, (sig, name, value)) in items.iter().enumerate() {
            let (_, _, frame) = cat.stage_owned(*sig, "t", name, iteration as u64, value).unwrap();
            frames.push((*sig, frame));
        }
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut frames);
        let landed = rng.index(n + 1); // 0..=n of the writes completed
        for (sig, frame) in frames.iter().take(landed) {
            cat.complete_stage(*sig, frame).unwrap();
        }
        if committed {
            cat.commit_staged().unwrap();
        }
        // Crash: the process dies here — nothing else is flushed.
        let root = cat.root().to_path_buf();
        drop(cat);

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        // Consistency: every surviving entry is backed by a readable,
        // CRC-clean file with the exact staged bytes.
        for entry in reopened.entries() {
            prop_assert!(root.join(&entry.file).exists());
            let sig = Signature::from_hex(&entry.signature).unwrap();
            let (value, _) = reopened.load(sig).unwrap();
            let original = items.iter().find(|(s, _, _)| *s == sig).unwrap();
            prop_assert_eq!(encode_value(&value), encode_value(&original.2));
        }
        // No crash residue: temp files swept, every artifact referenced.
        for dirent in std::fs::read_dir(&root).unwrap().flatten() {
            let name = dirent.file_name().to_string_lossy().into_owned();
            prop_assert!(!name.contains(".tmp-"), "stale temp survived: {}", name);
            if name.ends_with(".hxm") {
                prop_assert!(
                    reopened.entries().iter().any(|e| e.file == name),
                    "orphan artifact survived: {}",
                    name
                );
            }
        }
        // Accounting matches the recovered entry set exactly.
        let total: u64 = reopened.entries().iter().map(|e| e.bytes).sum();
        prop_assert_eq!(reopened.total_bytes(), total);
        // And the uncommitted-manifest case loses at most the staged
        // batch — never previously durable state (trivially true here:
        // the recovered set is a subset of what was staged and landed).
        prop_assert!(reopened.len() <= landed.max(if committed { landed } else { n }));
    }
}

/// A deep cross-iteration backlog (slow disk, many writes) drains
/// correctly and the pipelined session still matches serial exactly.
#[test]
fn deep_write_backlog_across_iterations_matches_serial() {
    let chain = |version: u64| -> Workflow {
        let mut wf = Workflow::new("backlog");
        let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::Text("x".repeat(4_000)))));
        let b = wf.reduce("b", a, version, move |v, _| {
            let text = match v.as_scalar()? {
                Scalar::Text(t) => t.len() as f64 * version as f64,
                other => other.as_f64().unwrap_or(0.0),
            };
            Ok(Value::Scalar(Scalar::F64(text)))
        });
        let c = wf.reduce("c", b, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        });
        wf.output(c);
        wf
    };
    // Slow writes (the 4 KB source takes ~2 ms to land) force the write
    // queue to stay deep while later iterations plan and load against
    // staged entries.
    let disk = DiskProfile::scaled(2_000_000, 0);
    let sequence: Vec<Workflow> = vec![chain(1), chain(1), chain(2), chain(2), chain(3)];

    let config = SessionConfig::in_memory().with_strategy(MatStrategy::Always).with_disk(disk);
    let mut serial = Session::new(config.clone().with_pipeline(false)).unwrap();
    let serial_outputs: Vec<Option<f64>> = sequence
        .iter()
        .map(|wf| serial.run(wf).unwrap().output_scalar("c").and_then(Scalar::as_f64))
        .collect();

    let mut pipelined = Session::new(config).unwrap();
    let reports = pipelined.run_pipelined(&sequence).unwrap();
    let pipelined_outputs: Vec<Option<f64>> =
        reports.iter().map(|r| r.output_scalar("c").and_then(Scalar::as_f64)).collect();
    assert_eq!(serial_outputs, pipelined_outputs);

    pipelined.sync().unwrap();
    let sigs =
        |s: &Session| s.catalog().entries().iter().map(|e| e.signature.clone()).collect::<Vec<_>>();
    assert_eq!(sigs(&serial), sigs(&pipelined), "catalog contents diverged");
    // Every pipelined artifact is durable and loadable after the drain.
    for entry in pipelined.catalog().entries() {
        let sig = Signature::from_hex(&entry.signature).unwrap();
        let (a, _) = pipelined.catalog().load(sig).unwrap();
        let (b, _) = serial.catalog().load(sig).unwrap();
        assert_eq!(encode_value(&a), encode_value(&b), "artifact bytes diverged for {sig:?}");
    }
}
