//! Corruption-injection suite for the durable storage layer.
//!
//! The journal's recovery contract is: *scan, verify CRC + hash chain,
//! replay the longest valid prefix*. These properties check the contract
//! by equivalence — for any injected damage (bit flips, truncation,
//! duplicated frames), opening the damaged catalog must yield **exactly**
//! the catalog obtained by cleanly truncating the journal at the last
//! whole frame before the damage. No partial replay, no resurrection of
//! anything after the damage point, no panic, ever.
//!
//! The artifact codec gets the same treatment: any single-byte flip,
//! truncation, or trailing garbage must produce a clean error, never a
//! wrong value.
//!
//! The kill-point property drives the staged-commit protocol (stage →
//! complete → commit) and kills the process model at an arbitrary point:
//! recovery must surface exactly the stages whose file write landed.

use helix_common::hash::Signature;
use helix_data::{Scalar, Value};
use helix_storage::journal;
use helix_storage::{decode_value, encode_value, DiskProfile, MaterializationCatalog};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn scalar(v: f64) -> Value {
    Value::Scalar(Scalar::F64(v))
}

fn sig(i: u8) -> Signature {
    Signature::of_str(&format!("corruption-node-{i}"))
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "helix-corruption-{}-{}-{}",
        std::process::id(),
        tag,
        UNIQUE.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&root).unwrap();
    root
}

fn open(root: &Path) -> MaterializationCatalog {
    MaterializationCatalog::open(root, DiskProfile::unthrottled()).unwrap()
}

/// Drive a deterministic op sequence against the catalog: stores,
/// releases (which seal `Remove` frames), and loads (which dirty
/// metadata). One unconditional store first, so every journal carries at
/// least one entry frame after the opening snapshot.
fn apply_ops(cat: &MaterializationCatalog, ops: &[(u8, u8)]) {
    cat.store_owned(sig(0), "t", "n0", 0, &scalar(0.5)).unwrap();
    for (i, (op, key)) in ops.iter().enumerate() {
        let s = sig(key % 8);
        match op % 4 {
            0 | 1 => {
                let value = scalar(*key as f64 * 1.25 + i as f64);
                cat.store_owned(s, "t", &format!("n{}", key % 8), i as u64 + 1, &value).unwrap();
            }
            2 => {
                cat.release(s, "t").unwrap();
            }
            _ => {
                // Missing signatures are fine: the point is the dirty
                // marking on hits, not the load result.
                let _ = cat.load_for(s, "t");
            }
        }
    }
}

/// Copy every regular file of `src` into a fresh temp dir.
fn clone_catalog_dir(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_root(tag);
    for dirent in std::fs::read_dir(src).unwrap().flatten() {
        if dirent.path().is_file() {
            std::fs::copy(dirent.path(), dst.join(dirent.file_name())).unwrap();
        }
    }
    dst
}

/// Full observable identity of a catalog: every entry field that recovery
/// is obligated to reproduce, sorted for comparison.
fn fingerprints(cat: &MaterializationCatalog) -> Vec<(String, String, u64, String, u64)> {
    let mut rows: Vec<_> = cat
        .entries()
        .iter()
        .map(|e| {
            (e.signature.clone(), e.file.clone(), e.bytes, e.node_name.clone(), e.created_iteration)
        })
        .collect();
    rows.sort();
    rows
}

/// The journal bytes of a sealed (dropped) catalog plus its clean scan.
fn sealed_journal(root: &Path) -> (Vec<u8>, journal::JournalScan) {
    let bytes = std::fs::read(root.join("catalog.journal")).unwrap();
    let scan = journal::scan_bytes(&bytes);
    assert_eq!(scan.stop, None, "a cleanly closed journal must scan clean");
    assert_eq!(scan.tail_bytes, 0);
    (bytes, scan)
}

/// Largest frame boundary at or before `idx` — the longest whole-frame
/// prefix that survives damage at byte `idx`.
fn prefix_end(scan: &journal::JournalScan, idx: usize) -> u64 {
    scan.frame_ends.iter().copied().filter(|e| *e <= idx as u64).max().unwrap_or(0)
}

/// Open the damaged dir and the clean-truncated reference dir; both must
/// be indistinguishable, and a second open of the damaged dir must be
/// clean (damage never accumulates).
fn assert_recovers_to_prefix(damaged: &Path, reference: &Path) {
    let recovered = open(damaged);
    let expected = open(reference);
    assert_eq!(
        fingerprints(&recovered),
        fingerprints(&expected),
        "recovery must replay exactly the longest valid prefix"
    );
    assert_eq!(recovered.total_bytes(), expected.total_bytes());
    // Every surviving entry is actually loadable (files intact, frames
    // decodable).
    for entry in recovered.entries() {
        let s = Signature::from_hex(&entry.signature).unwrap();
        recovered.load(s).unwrap_or_else(|e| panic!("entry {} unloadable: {e}", entry.signature));
    }
    drop(recovered);
    let again = open(damaged);
    assert_eq!(again.recovery_stats().journal_stop, None, "second open must be clean");
    assert_eq!(again.recovery_stats().journal_tail_bytes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flip one byte anywhere after the opening snapshot frame: recovery
    /// must replay exactly the whole frames before the flipped one.
    /// (A version-byte flip *inside frame 0* is the designed
    /// newer-format refusal, covered by a deterministic test below.)
    #[test]
    fn bit_flip_recovers_exactly_the_longest_valid_prefix(
        ops in prop::collection::vec((any::<u8>(), any::<u8>()), 4..16),
        pos_seed in any::<u64>(),
        mask in 1u8..=255u8,
    ) {
        let root = temp_root("flip-src");
        let cat = open(&root);
        apply_ops(&cat, &ops);
        drop(cat);
        let (bytes, scan) = sealed_journal(&root);
        let first_end = scan.frame_ends[0] as usize;
        let idx = first_end + (pos_seed as usize) % (bytes.len() - first_end);
        let keep = prefix_end(&scan, idx);

        let damaged = clone_catalog_dir(&root, "flip-damaged");
        let mut flipped = bytes.clone();
        flipped[idx] ^= mask;
        std::fs::write(damaged.join("catalog.journal"), &flipped).unwrap();

        let reference = clone_catalog_dir(&root, "flip-reference");
        std::fs::write(reference.join("catalog.journal"), &bytes[..keep as usize]).unwrap();

        // The damaged open must notice the damage.
        {
            let recovered = open(&damaged);
            prop_assert!(recovered.recovery_stats().journal_stop.is_some());
        }
        // ...and land on exactly the clean-prefix state. (The damaged dir
        // was already repaired by the open above; recovery is idempotent,
        // so the equivalence check still holds.)
        assert_recovers_to_prefix(&damaged, &reference);
    }

    /// Cut the journal anywhere (crash mid-append): recovery replays the
    /// whole frames before the cut, drops the torn tail.
    #[test]
    fn truncation_recovers_exactly_the_longest_valid_prefix(
        ops in prop::collection::vec((any::<u8>(), any::<u8>()), 4..16),
        cut_seed in any::<u64>(),
    ) {
        let root = temp_root("cut-src");
        let cat = open(&root);
        apply_ops(&cat, &ops);
        drop(cat);
        let (bytes, scan) = sealed_journal(&root);
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        let keep = prefix_end(&scan, cut);

        let damaged = clone_catalog_dir(&root, "cut-damaged");
        std::fs::write(damaged.join("catalog.journal"), &bytes[..cut]).unwrap();
        let reference = clone_catalog_dir(&root, "cut-reference");
        std::fs::write(reference.join("catalog.journal"), &bytes[..keep as usize]).unwrap();

        assert_recovers_to_prefix(&damaged, &reference);
    }

    /// Splice a duplicated frame into the chain: the duplicate is
    /// CRC-valid but its `prev_hash` cannot match the running chain, so
    /// the scan must stop (chain break) and nothing may replay twice.
    #[test]
    fn duplicated_frame_never_replays_twice(
        ops in prop::collection::vec((any::<u8>(), any::<u8>()), 4..16),
        frame_seed in any::<u64>(),
    ) {
        let root = temp_root("dup-src");
        let cat = open(&root);
        apply_ops(&cat, &ops);
        drop(cat);
        let (bytes, scan) = sealed_journal(&root);
        let i = (frame_seed as usize) % scan.frame_ends.len();
        let start = if i == 0 { 0 } else { scan.frame_ends[i - 1] as usize };
        let end = scan.frame_ends[i] as usize;

        let mut spliced = Vec::with_capacity(bytes.len() + (end - start));
        spliced.extend_from_slice(&bytes[..end]);
        spliced.extend_from_slice(&bytes[start..end]); // the duplicate
        spliced.extend_from_slice(&bytes[end..]);

        let damaged = clone_catalog_dir(&root, "dup-damaged");
        std::fs::write(damaged.join("catalog.journal"), &spliced).unwrap();
        let reference = clone_catalog_dir(&root, "dup-reference");
        std::fs::write(reference.join("catalog.journal"), &bytes[..end]).unwrap();

        {
            let recovered = open(&damaged);
            prop_assert_eq!(
                recovered.recovery_stats().journal_stop.as_deref(),
                Some("chain-break")
            );
        }
        assert_recovers_to_prefix(&damaged, &reference);
    }

    /// Any single-byte flip in an encoded artifact is a clean decode
    /// error — never a panic, never a silently wrong value.
    #[test]
    fn artifact_flip_is_always_a_clean_error(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        mask in 1u8..=255u8,
    ) {
        let value = scalar(seed as f64 * 0.125 + 0.25);
        let encoded = encode_value(&value);
        let idx = (pos_seed as usize) % encoded.len();
        let mut bad = encoded.clone();
        bad[idx] ^= mask;
        prop_assert!(decode_value(&bad).is_err(), "flip at byte {} undetected", idx);
    }

    /// Truncation at any cut point and trailing garbage of any length are
    /// clean decode errors (the codec enforces exact-length consumption).
    #[test]
    fn artifact_truncation_and_garbage_are_clean_errors(
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let value = scalar(seed as f64 * 0.5);
        let encoded = encode_value(&value);
        let cut = (cut_seed as usize) % encoded.len();
        prop_assert!(decode_value(&encoded[..cut]).is_err(), "cut at {} undetected", cut);
        let mut padded = encoded.clone();
        padded.extend_from_slice(&garbage);
        prop_assert!(decode_value(&padded).is_err(), "trailing garbage undetected");
    }

    /// Kill the process model at an arbitrary point of the staged-commit
    /// protocol: stage N entries, land an arbitrary subset in an
    /// arbitrary order, never reach the final commit. Recovery must
    /// surface exactly {durable base} ∪ {landed stages} — each loadable
    /// with its exact bytes — and leave no temp residue.
    #[test]
    fn staged_commit_kill_point_recovers_exactly_the_landed_set(
        n in 2usize..7,
        landed_mask in any::<u8>(),
        order_seed in any::<u64>(),
    ) {
        let root = temp_root("kill");
        let cat = open(&root);
        cat.store_owned(sig(200), "t", "base", 0, &scalar(99.0)).unwrap();

        let staged: Vec<_> = (0..n)
            .map(|i| {
                let s = sig(100 + i as u8);
                let value = scalar(i as f64 + 0.75);
                let (_, _, frame) =
                    cat.stage_owned(s, "t", &format!("staged-{i}"), 1, &value).unwrap();
                (s, frame, value)
            })
            .collect();

        // Land a subset, in a permuted order (background writers race).
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = order_seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let landed: Vec<usize> =
            order.into_iter().filter(|i| landed_mask & (1 << (i % 8)) != 0).collect();
        for &i in &landed {
            cat.complete_stage(staged[i].0, &staged[i].1).unwrap();
        }
        // Kill: drop without commit_staged (no final fsync, no snapshot).
        drop(cat);

        let recovered = open(&root);
        prop_assert!(recovered.contains(sig(200)), "durable base survives");
        for (i, (s, _, value)) in staged.iter().enumerate() {
            if landed.contains(&i) {
                let (loaded, _) = recovered.load(*s).unwrap();
                prop_assert_eq!(
                    loaded.as_scalar().unwrap().as_f64(),
                    value.as_scalar().unwrap().as_f64(),
                    "landed stage {} must recover with its exact bytes", i
                );
            } else {
                prop_assert!(!recovered.contains(*s), "unlanded stage {} must be absent", i);
            }
        }
        for dirent in std::fs::read_dir(&root).unwrap().flatten() {
            let name = dirent.file_name().to_string_lossy().into_owned();
            prop_assert!(!name.contains(".tmp-"), "temp residue after recovery: {}", name);
        }
    }
}

/// A journal whose *first* frame names a future format version must be
/// refused outright — newer data is never misread as damage and swept.
#[test]
fn future_format_journal_is_refused_not_swept() {
    let root = temp_root("future");
    let cat = open(&root);
    cat.store_owned(sig(1), "t", "n", 0, &scalar(1.0)).unwrap();
    drop(cat);
    let mut bytes = std::fs::read(root.join("catalog.journal")).unwrap();
    bytes[4] = 9; // frame-0 version byte → "written by a future build"
    std::fs::write(root.join("catalog.journal"), &bytes).unwrap();

    let err = match MaterializationCatalog::open(&root, DiskProfile::unthrottled()) {
        Err(e) => format!("{e}"),
        Ok(_) => panic!("future-format journal must be refused"),
    };
    assert!(err.contains("newer"), "refusal must say why: {err}");
    assert!(
        root.join(format!("{}.hxm", sig(1).to_hex())).exists(),
        "the future build's artifact must not be destroyed"
    );
}
