//! The observability inertness contract: tracing is *provably inert*.
//!
//! `helix-obs` spans and metrics are written by the engine, pipeline,
//! serve, and storage layers but never read back by anything that plans
//! or executes work, so enabling tracing must not change a single output
//! byte. This suite enforces that directly:
//!
//! * **Byte identity**: the same multi-tenant service workload runs with
//!   tracing off and tracing on, at 1/2/4/8 workers/cores and under both
//!   `HELIX_SCHEDULING` policies (strict priority and DRF fair share),
//!   and every tenant's encoded outputs must match byte-for-byte.
//! * **Trace validity**: a traced pipeline-bench run must export
//!   well-formed Chrome `trace_event` JSON (the subset Perfetto loads),
//!   and the overlap ratio *derived from the trace alone* — `(serial.wall
//!   − pipelined.wall) / serial.io` per workload — must match the ratio
//!   the driver reported.
//!
//! The span ring and the enabled flag are process-global, so the tests
//! serialize on one mutex instead of trusting the harness's thread
//! scheduling.

use helix::core::{Session, SessionConfig};
use helix::serve::{HelixService, SchedulingPolicy, ServiceConfig, TenantSpec};
use helix::storage::encode_value;
use helix::workloads::{CensusWorkload, GenomicsWorkload, Workload};
use helix_bench::pipeline::{run_pipeline_bench, PipelineBenchConfig};
use helix_obs::{chrome_trace_json, drain_spans, set_enabled, write_trace};
use serde::{parse_json, write_json_compact, Json};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serializes tests that toggle the process-global tracing state.
static TRACE_GATE: Mutex<()> = Mutex::new(());

const SEED: u64 = 42;

/// Output name → encoded bytes: everything a user sees from an iteration.
type Outputs = BTreeMap<String, Vec<u8>>;

fn workload_for(ix: usize) -> Box<dyn Workload> {
    if ix.is_multiple_of(2) {
        Box::new(CensusWorkload::small())
    } else {
        Box::new(GenomicsWorkload::small())
    }
}

/// Initial build, one scripted change, one identical rerun — compute,
/// invalidation, and reuse paths in three iterations.
fn iteration_workflows(mut workload: Box<dyn Workload>) -> Vec<helix::core::Workflow> {
    let change = workload.scripted_sequence()[0];
    let mut wfs = vec![workload.build()];
    workload.apply_change(change);
    wfs.push(workload.build());
    wfs.push(workload.build());
    wfs
}

fn outputs_of(report: &helix::core::IterationReport) -> Outputs {
    report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect()
}

/// Run two tenants concurrently on a shared service and return each
/// tenant's full output trace, encoded. The only variable across calls
/// is `workers` (= cores) and the scheduling policy — everything the
/// fingerprint depends on is fixed.
fn service_fingerprint(workers: usize, policy: SchedulingPolicy) -> Vec<Vec<Outputs>> {
    let tenants = 2;
    let service = HelixService::new(
        ServiceConfig::new(workers)
            .with_seed(SEED)
            .with_max_concurrent_iterations(tenants)
            .with_scheduling(policy),
    )
    .expect("service starts");
    for ix in 0..tenants {
        service.register_tenant(&format!("t{ix}"), TenantSpec::default()).expect("tenant");
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|ix| {
                let service = &service;
                scope.spawn(move || {
                    let session = service
                        .open_session(
                            &format!("t{ix}"),
                            SessionConfig::in_memory().with_workers(workers),
                        )
                        .expect("session opens");
                    let tickets: Vec<_> = iteration_workflows(workload_for(ix))
                        .into_iter()
                        .map(|wf| session.submit(wf).expect("submission accepted"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| outputs_of(&t.wait().expect("iteration runs")))
                        .collect::<Vec<Outputs>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    })
}

/// A solo pipelined-session fingerprint — covers the engine + pipeline
/// lanes without the service in the loop.
fn pipelined_fingerprint(workers: usize) -> Vec<Outputs> {
    let mut session =
        Session::new(SessionConfig::in_memory().with_workers(workers).with_seed(SEED))
            .expect("session opens");
    session
        .run_pipelined(&iteration_workflows(workload_for(0)))
        .expect("pipelined run")
        .iter()
        .map(outputs_of)
        .collect()
}

/// A solo fingerprint with micro-batch streaming on (PR 9): the
/// partition dispatcher emits `batch.*` spans from its load/compute/
/// commit lanes, and none of them may touch an output byte.
fn streamed_fingerprint(workers: usize) -> Vec<Outputs> {
    let mut session = Session::new(
        SessionConfig::in_memory().with_workers(workers).with_seed(SEED).with_microbatch(16),
    )
    .expect("session opens");
    iteration_workflows(workload_for(0))
        .iter()
        .map(|wf| outputs_of(&session.run(wf).expect("iteration runs")))
        .collect()
}

#[test]
fn tracing_is_inert_for_streamed_runs() {
    let _gate = TRACE_GATE.lock().unwrap();
    for workers in [1usize, 4] {
        set_enabled(false);
        let baseline = streamed_fingerprint(workers);

        set_enabled(true);
        drain_spans();
        let traced = streamed_fingerprint(workers);
        let (events, _) = drain_spans();
        set_enabled(false);

        assert_eq!(baseline, traced, "streamed outputs changed under tracing at {workers} workers");
        // Guard against vacuity: the batch lanes must actually have
        // traced their work.
        for name in ["batch.load", "batch.compute", "batch.commit"] {
            assert!(
                events.iter().any(|e| e.name == name),
                "no {name} spans in the streamed traced run"
            );
        }
    }
}

#[test]
fn tracing_is_inert_across_workers_and_policies() {
    let _gate = TRACE_GATE.lock().unwrap();
    for policy in [SchedulingPolicy::Priority, SchedulingPolicy::fair()] {
        for workers in [1usize, 2, 4, 8] {
            set_enabled(false);
            let baseline = service_fingerprint(workers, policy.clone());
            let solo_baseline = pipelined_fingerprint(workers);

            set_enabled(true);
            drain_spans(); // start the traced run from an empty ring
            let traced = service_fingerprint(workers, policy.clone());
            let solo_traced = pipelined_fingerprint(workers);
            let (events, _) = drain_spans();
            set_enabled(false);

            assert_eq!(
                baseline, traced,
                "outputs changed under tracing at {workers} workers, {policy:?}"
            );
            assert_eq!(
                solo_baseline, solo_traced,
                "pipelined outputs changed under tracing at {workers} workers"
            );
            // Guard against vacuity: the traced run must actually have
            // recorded spans from the instrumented layers.
            assert!(!events.is_empty(), "traced run recorded no spans");
            for cat in ["engine", "serve", "storage"] {
                assert!(events.iter().any(|e| e.cat == cat), "no {cat} spans in the traced run");
            }
        }
    }
}

fn num(j: &Json) -> f64 {
    match j {
        Json::Int(i) => *i as f64,
        Json::Float(f) => *f,
        other => panic!("expected number, got {other:?}"),
    }
}

fn text(j: &Json) -> &str {
    match j {
        Json::String(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

/// Validate the Perfetto-loadable subset: every entry is an `"X"`
/// complete event with numeric non-negative `ts`/`dur` or an `"M"`
/// metadata event, all on pid 1. Returns (tid → track name, X events).
fn validate_trace(doc: &Json) -> (BTreeMap<i128, String>, Vec<&Json>) {
    let events = match doc.get("traceEvents") {
        Some(Json::Array(a)) => a,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(doc.get("displayTimeUnit").is_some());
    let mut names = BTreeMap::new();
    let mut complete = Vec::new();
    for entry in events {
        assert_eq!(entry.get("pid"), Some(&Json::Int(1)));
        let tid = match entry.get("tid") {
            Some(Json::Int(t)) => *t,
            other => panic!("tid missing: {other:?}"),
        };
        match text(entry.get("ph").expect("ph present")) {
            "M" => {
                if text(entry.get("name").expect("name")) == "thread_name" {
                    let track = text(entry.get("args").and_then(|a| a.get("name")).expect("name"));
                    names.insert(tid, track.to_string());
                }
            }
            "X" => {
                assert!(num(entry.get("ts").expect("ts")) >= 0.0);
                assert!(num(entry.get("dur").expect("dur")) >= 0.0);
                assert!(!text(entry.get("name").expect("name")).is_empty());
                assert!(!text(entry.get("cat").expect("cat")).is_empty());
                complete.push(entry);
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    (names, complete)
}

#[test]
fn traced_pipeline_bench_exports_valid_json_with_matching_overlap() {
    let _gate = TRACE_GATE.lock().unwrap();
    set_enabled(true);
    drain_spans();
    let config = PipelineBenchConfig {
        iterations: 3,
        workers: 2,
        disk: helix::storage::DiskProfile::scaled(20_000_000, 50_000),
        seed: SEED,
    };
    let report = run_pipeline_bench(&config).expect("bench runs");
    let (events, dropped) = drain_spans();
    set_enabled(false);

    // The file the HELIX_TRACE env path would receive must re-parse as
    // well-formed JSON.
    let dir = std::env::temp_dir().join(format!("helix-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.json");
    write_trace(&path, &events, dropped).expect("trace written");
    let parsed = parse_json(&std::fs::read_to_string(&path).expect("readable")).expect("parses");
    assert_eq!(
        parsed,
        parse_json(&write_json_compact(&chrome_trace_json(&events, dropped)))
            .expect("in-memory doc parses")
    );
    std::fs::remove_dir_all(&dir).ok();

    let (track_names, complete) = validate_trace(&parsed);

    // Re-derive each workload's overlap ratio from the trace alone and
    // check it against the driver's report (µs-float rounding only).
    for w in &report.workloads {
        let track = format!("bench-{}", w.workload);
        let tid = *track_names
            .iter()
            .find(|(_, name)| **name == track)
            .map(|(tid, _)| tid)
            .unwrap_or_else(|| panic!("no {track} track in the trace"));
        let dur_of = |span_name: &str| -> f64 {
            complete
                .iter()
                .find(|e| {
                    e.get("tid") == Some(&Json::Int(tid))
                        && text(e.get("name").unwrap()) == span_name
                })
                .map(|e| num(e.get("dur").unwrap()))
                .unwrap_or_else(|| panic!("no {span_name} span on {track}"))
        };
        let serial = dur_of("serial.wall");
        let pipelined = dur_of("pipelined.wall");
        let serial_io = dur_of("serial.io");
        let derived = ((serial - pipelined) / serial_io.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
        assert!(
            (derived - w.overlap_ratio).abs() < 0.01,
            "{}: trace-derived overlap {derived} != reported {}",
            w.workload,
            w.overlap_ratio
        );
    }

    // The engine and pipeline layers ran under the bench; their spans
    // must be on the same timeline.
    for cat in ["engine", "pipeline", "bench"] {
        assert!(
            complete.iter().any(|e| text(e.get("cat").unwrap()) == cat),
            "no {cat} spans in the bench trace"
        );
    }
}
