//! Paper Table 1: every Scikit-learn DPR/L/I/PPR operation maps onto
//! compositions of the basis functions `F` (paper §3.1). This test builds
//! each composition with the actual DSL and runs it, making the coverage
//! claim executable rather than rhetorical.

use helix_core::ops::Algo;
use helix_core::prelude::*;
use helix_data::{Example, ExampleBatch, FeatureVector, Scalar, Split, Value};

fn blob_source(wf: &mut Workflow) -> helix_core::dsl::DcHandle {
    // The generator draws on the context RNG, so the source must declare
    // itself seeded — its output (and the whole workflow downstream) is
    // keyed by seed and never shared across sessions with different
    // seeds. A plain `source` here fails loudly at execution time.
    wf.source_seeded("data", 1, |ctx| {
        let mut rng = ctx.rng();
        let examples: Vec<Example> = (0..200)
            .map(|i| {
                let label = (i % 2) as f64;
                let c = if label > 0.5 { 2.0 } else { -2.0 };
                Example::new(
                    FeatureVector::Dense(vec![
                        c + rng.next_gaussian() * 0.3,
                        c + rng.next_gaussian() * 0.3,
                    ]),
                    Some(label),
                    if i % 4 == 0 { Split::Test } else { Split::Train },
                )
            })
            .collect();
        Ok(Value::examples(ExampleBatch::dense(examples)))
    })
}

/// `fit(X, y)` — learning: D → f.
#[test]
fn sklearn_fit_maps_to_learning() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wf = Workflow::new("fit");
    let data = blob_source(&mut wf);
    let model = wf.learner("model", data, Algo::LogisticRegression { l2: 0.1, epochs: 5 });
    wf.output(model);
    let report = session.run(&wf).unwrap();
    assert!(report.output("model").unwrap().as_model().is_ok());
}

/// `predict(X)` / `predict_proba(X)` — inference: (D, f) → Y.
#[test]
fn sklearn_predict_maps_to_inference() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wf = Workflow::new("predict");
    let data = blob_source(&mut wf);
    let model = wf.learner("model", data, Algo::LogisticRegression { l2: 0.1, epochs: 5 });
    let predictions = wf.predict("predictions", model, data);
    wf.output(predictions);
    let report = session.run(&wf).unwrap();
    let out = report.output("predictions").unwrap();
    let binding = out.as_collection().unwrap();
    let batch = binding.as_examples().unwrap();
    assert!(batch.examples.iter().all(|e| e.prediction.is_some()));
}

/// `fit_transform(X)` — learning then inference, for a learned DPR
/// transform (random Fourier features).
#[test]
fn sklearn_fit_transform_maps_to_learned_transform() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wf = Workflow::new("fit_transform");
    let data = blob_source(&mut wf);
    let rff = wf.learner("rff", data, Algo::RandomFourier { dim_out: 8, gamma: 0.2 });
    let transformed = wf.predict("transformed", rff, data);
    wf.output(transformed);
    let report = session.run(&wf).unwrap();
    let out = report.output("transformed").unwrap();
    let binding = out.as_collection().unwrap();
    assert_eq!(binding.as_examples().unwrap().examples[0].features.dim(), 8);
}

/// `score(y_true, y_pred)` — join + reduce.
#[test]
fn sklearn_score_maps_to_join_reduce() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wf = Workflow::new("score");
    let data = blob_source(&mut wf);
    let model = wf.learner("model", data, Algo::LogisticRegression { l2: 0.1, epochs: 5 });
    let predictions = wf.predict("predictions", model, data);
    // The accuracy reducer joins labels with predictions element-wise and
    // reduces to a scalar — exactly Table 1's composition.
    let score = wf.accuracy("score", predictions);
    wf.output(score);
    let report = session.run(&wf).unwrap();
    let acc = report.output_scalar("score").unwrap().metric("accuracy").unwrap();
    assert!(acc > 0.9, "separable blobs: {acc}");
}

/// Model selection `fit(p1..pn)` — a reduce implemented in terms of
/// learning, inference, and scoring (hyperparameter search inside a
/// reducer UDF, as Table 1 describes).
#[test]
fn sklearn_model_selection_maps_to_reduce_over_learning() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wf = Workflow::new("selection");
    let data = blob_source(&mut wf);
    let best = wf.reduce("best_l2", data, 1, |v, _ctx| {
        let batch = v.as_collection()?.as_examples()?;
        let dim = 2;
        let mut best = (f64::NEG_INFINITY, 0.0f64);
        for l2 in [0.01, 0.1, 1.0] {
            let trainer = helix_ml::LogisticRegression { l2, epochs: 5, ..Default::default() };
            let model = trainer.fit(&batch.examples, dim)?;
            let pairs: Vec<(f64, f64)> = batch
                .examples
                .iter()
                .filter(|e| e.split == Split::Test)
                .map(|e| {
                    (
                        e.label.unwrap_or(0.0),
                        helix_ml::LogisticRegression::predict(&model, &e.features),
                    )
                })
                .collect();
            let acc = helix_ml::metrics::accuracy(&pairs);
            if acc > best.0 {
                best = (acc, l2);
            }
        }
        Ok(Value::Scalar(Scalar::Metrics(vec![
            ("best_accuracy".into(), best.0),
            ("best_l2".into(), best.1),
        ])))
    });
    wf.output(best);
    let report = session.run(&wf).unwrap();
    let scalar = report.output_scalar("best_l2").unwrap();
    assert!(scalar.metric("best_accuracy").unwrap() > 0.9);
    assert!(scalar.metric("best_l2").is_some());
}

/// `fit_predict(X)` — learning then inference in one step (clustering).
#[test]
fn sklearn_fit_predict_maps_to_learn_then_infer() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wf = Workflow::new("fit_predict");
    let data = blob_source(&mut wf);
    let kmeans = wf.learner("kmeans", data, Algo::KMeans { k: 2 });
    let assigned = wf.predict("assigned", kmeans, data);
    let sizes = wf.cluster_summary("sizes", assigned, 2);
    wf.output(sizes);
    let report = session.run(&wf).unwrap();
    let sizes = report.output_scalar("sizes").unwrap();
    let c0 = sizes.metric("cluster_0").unwrap();
    let c1 = sizes.metric("cluster_1").unwrap();
    assert_eq!(c0 + c1, 200.0);
    assert!(c0 > 50.0 && c1 > 50.0, "two balanced blobs: {c0} vs {c1}");
}
