//! Property-based tests for provenance-keyed signatures: the seed is part
//! of every chain signature at exactly the nodes it can affect.
//!
//! Three obligations (ISSUE 4):
//!
//! 1. two sessions differing *only in seed* never share a signature at a
//!    stochastic operator or anywhere downstream of one;
//! 2. they *always* share signatures for the seed-independent prefix
//!    (parsing, feature extraction — anything upstream of the first
//!    stochastic node);
//! 3. a solo strictly-serial run is byte-identical to a service run under
//!    distinct per-tenant seeds, at 1/2/4/8 cores.

use helix::core::ops::Algo;
use helix::core::track::{chain_signatures, ExecEnv};
use helix::core::{Session, SessionConfig, Workflow};
use helix::data::{Example, ExampleBatch, FeatureVector, Scalar, Split, Value};
use helix::exec::Phase;
use helix::serve::{HelixService, ServiceConfig, TenantSpec};
use helix::storage::encode_value;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// A workflow with a deterministic prefix chain (`source` then `prefix`
/// pass-through UDF stages), one stochastic learner, and a deterministic
/// suffix (predict + reduce) that inherits the seed only through its
/// parents. `algo_ix` selects among the seeded algorithms.
fn stochastic_workflow(prefix: usize, suffix: usize, algo_ix: usize) -> Workflow {
    let mut wf = Workflow::new("prov");
    let mut dc = wf.source("src", 1, |_| {
        let examples = (0..12)
            .map(|i| {
                let x = i as f64;
                Example::new(
                    FeatureVector::Dense(vec![x, 12.0 - x]),
                    Some((i % 2) as f64),
                    if i % 4 == 0 { Split::Test } else { Split::Train },
                )
            })
            .collect();
        Ok(Value::examples(ExampleBatch::dense(examples)))
    });
    for k in 0..prefix {
        dc = wf.udf_collection(&format!("pre{k}"), Phase::Dpr, &[dc], 1, |inputs, _| {
            Ok((*inputs[0]).clone())
        });
    }
    let algo = match algo_ix % 3 {
        0 => Algo::LogisticRegression { l2: 0.1, epochs: 2 },
        1 => Algo::KMeans { k: 2 },
        _ => Algo::Word2Vec { dim: 2, epochs: 1 },
    };
    let model = wf.learner("model", dc, algo);
    let mut scalar = {
        let pred = wf.predict("pred", model, dc);
        wf.reduce("stat0", pred, 1, |v, _| {
            let batch = v.as_collection()?.as_examples()?;
            let sum: f64 = batch.examples.iter().filter_map(|e| e.prediction).sum();
            Ok(Value::Scalar(Scalar::F64(sum)))
        })
    };
    for k in 0..suffix {
        scalar = wf.reduce(&format!("post{k}"), scalar, 1, |v, _| {
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        });
    }
    wf.output(scalar);
    wf
}

/// Names of the nodes strictly upstream of (and independent of) the
/// stochastic learner.
fn prefix_names(prefix: usize) -> Vec<String> {
    let mut names = vec!["src".to_string()];
    names.extend((0..prefix).map(|k| format!("pre{k}")));
    names
}

/// Names of the stochastic node and everything downstream of it.
fn stochastic_and_descendants(suffix: usize) -> Vec<String> {
    let mut names = vec!["model".to_string(), "pred".to_string(), "stat0".to_string()];
    names.extend((0..suffix).map(|k| format!("post{k}")));
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (1) + (2): seeds fragment signatures from the first stochastic
    /// node downward — and nowhere else.
    #[test]
    fn seed_splits_signatures_exactly_at_stochastic_nodes(
        prefix in 0usize..4,
        suffix in 0usize..3,
        algo_ix in 0usize..3,
        seed_a in any::<u64>(),
        seed_delta in 1u64..=u64::MAX,
    ) {
        let seed_b = seed_a.wrapping_add(seed_delta); // distinct by construction
        let wf = stochastic_workflow(prefix, suffix, algo_ix);
        let nonces = HashMap::new();
        let sigs_a = chain_signatures(&wf, &nonces, &ExecEnv::new(seed_a));
        let sigs_b = chain_signatures(&wf, &nonces, &ExecEnv::new(seed_b));
        let at = |name: &str| wf.node_by_name(name).expect("node exists").ix();

        for name in prefix_names(prefix) {
            prop_assert_eq!(
                sigs_a[at(&name)], sigs_b[at(&name)],
                "seed-independent prefix node `{}` must share its signature across seeds", name
            );
        }
        for name in stochastic_and_descendants(suffix) {
            prop_assert_ne!(
                sigs_a[at(&name)], sigs_b[at(&name)],
                "node `{}` is stochastic or downstream of one; distinct seeds must never \
                 share its signature", name
            );
        }
        // Reflexivity: the same seed reproduces the same chain.
        prop_assert_eq!(sigs_a, chain_signatures(&wf, &nonces, &ExecEnv::new(seed_a)));
    }
}

/// Encoded outputs of one iteration report.
fn outputs_of(report: &helix::core::IterationReport) -> BTreeMap<String, Vec<u8>> {
    report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// (3): solo strictly-serial ≡ service, tenants on distinct seeds,
    /// at 1/2/4/8 cores. The follower's seed-independent prefix rides
    /// the leader's artifacts; its bytes must not notice.
    #[test]
    fn solo_serial_equals_service_under_distinct_seeds(
        seed_a in any::<u64>(),
        seed_delta in 1u64..=u64::MAX,
        // LR or KMeans only: Word2Vec consumes token units, and this
        // test actually executes the workflow (the signature-level test
        // above still covers all three algorithms).
        algo_ix in 0usize..2,
    ) {
        let seed_b = seed_a.wrapping_add(seed_delta);
        let wf = || stochastic_workflow(2, 1, algo_ix);
        // Two-iteration schedule: initial build, then an identical rerun
        // (exercises compute, store, and reuse paths).
        let solo = |seed: u64| -> Vec<BTreeMap<String, Vec<u8>>> {
            let mut session = Session::new(
                SessionConfig::in_memory().with_workers(1).with_seed(seed).with_pipeline(false),
            )
            .expect("solo session opens");
            (0..2).map(|_| outputs_of(&session.run(&wf()).expect("solo run"))).collect()
        };
        let baseline_a = solo(seed_a);
        let baseline_b = solo(seed_b);

        for cores in [1usize, 2, 4, 8] {
            // The CI determinism matrix replays this under both
            // schedulers (HELIX_SCHEDULING): provenance keying must hold
            // regardless of how admissions are ordered.
            let mut config = ServiceConfig::new(cores).with_max_concurrent_iterations(2);
            if let Some(policy) = helix::serve::SchedulingPolicy::from_env() {
                config = config.with_scheduling(policy);
            }
            let service = HelixService::new(config).expect("service starts");
            service.register_tenant("a", TenantSpec::default()).expect("registers");
            service.register_tenant("b", TenantSpec::default()).expect("registers");
            for (tenant, seed, baseline) in
                [("a", seed_a, &baseline_a), ("b", seed_b, &baseline_b)]
            {
                let session = service
                    .open_session(
                        tenant,
                        SessionConfig::in_memory().with_workers(cores).with_seed(seed),
                    )
                    .expect("session opens");
                let trace: Vec<BTreeMap<String, Vec<u8>>> = (0..2)
                    .map(|_| outputs_of(&session.run_iteration(wf()).expect("iteration runs")))
                    .collect();
                prop_assert_eq!(
                    &trace, baseline,
                    "tenant {} (seed {}) diverged from solo serial at {} cores",
                    tenant, seed, cores
                );
            }
        }
    }
}
