//! The tentpole obligation of `helix-serve`: multi-tenancy must be
//! *invisible* in every tenant's results. For 2–8 concurrent tenants on a
//! shared service at 1/2/4/8 cores, every tenant's iteration outputs must
//! be byte-identical to a **solo serial run** of that tenant (same seed,
//! private catalog, one worker) — regardless of co-tenants, queue order,
//! cross-tenant artifact hits, or how many core tokens the budget grants.
//! And the core budget must actually bound the machine: the token
//! high-water mark never exceeds the budget even when every session asks
//! for maximum width (the ROADMAP's `workers²` fix).
//!
//! Outputs are compared through the storage codec, so "identical" means
//! identical to the byte. Execution *plans* are allowed to differ — a
//! tenant may `Load` where its solo run computed (that is the point of
//! cross-tenant reuse); provenance-keyed signatures (each session's seed
//! folded into the chain at the stochastic nodes) guarantee the loaded
//! bytes equal the computed ones — including when tenants run *distinct*
//! seeds, where exactly the seed-independent prefix stays shared.

use helix::core::{Session, SessionConfig};
use helix::serve::{HelixService, SchedulingPolicy, ServiceConfig, TenantSpec};
use helix::storage::encode_value;
use helix::workloads::{CensusWorkload, GenomicsWorkload, IeWorkload, MnistWorkload, Workload};
use std::collections::BTreeMap;

const SERVICE_SEED: u64 = 42;

/// Apply the CI determinism matrix's scheduler selection: with
/// `HELIX_SCHEDULING=priority|fairshare` set, every service in this suite
/// runs under that policy — both schedulers must pass the exact same
/// byte-identity obligations, because scheduling may reorder work but
/// never change bytes.
fn scheduled(config: ServiceConfig) -> ServiceConfig {
    match SchedulingPolicy::from_env() {
        Some(policy) => config.with_scheduling(policy),
        None => config,
    }
}

/// Output name → encoded bytes: everything a user sees from an iteration.
type Outputs = BTreeMap<String, Vec<u8>>;

fn workload_for(ix: usize) -> Box<dyn Workload> {
    match ix % 4 {
        0 => Box::new(CensusWorkload::small()),
        1 => Box::new(GenomicsWorkload::small()),
        2 => Box::new(IeWorkload::small()),
        _ => Box::new(MnistWorkload::small()),
    }
}

/// The three-iteration schedule every trace runs: initial build, first
/// scripted change, identical rerun (exercising compute, invalidation,
/// and reuse paths).
fn iteration_workflows(mut workload: Box<dyn Workload>) -> Vec<helix::core::Workflow> {
    let change = workload.scripted_sequence()[0];
    let mut wfs = vec![workload.build()];
    workload.apply_change(change);
    wfs.push(workload.build());
    wfs.push(workload.build());
    wfs
}

fn outputs_of(report: &helix::core::IterationReport) -> Outputs {
    report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect()
}

/// The ground truth: a solo, strictly serial session (one worker,
/// private catalog, pipelined lanes off) under an explicit seed.
fn solo_serial_trace_seeded(ix: usize, seed: u64) -> Vec<Outputs> {
    let mut session = Session::new(
        SessionConfig::in_memory().with_workers(1).with_seed(seed).with_pipeline(false),
    )
    .expect("solo session opens");
    iteration_workflows(workload_for(ix))
        .iter()
        .map(|wf| outputs_of(&session.run(wf).expect("solo iteration runs")))
        .collect()
}

fn solo_serial_trace(ix: usize) -> Vec<Outputs> {
    solo_serial_trace_seeded(ix, SERVICE_SEED)
}

#[test]
fn concurrent_tenants_match_solo_serial_at_every_core_count() {
    let tenants = 4; // one of each workload, all running at once
    let baselines: Vec<Vec<Outputs>> = (0..tenants).map(solo_serial_trace).collect();

    for cores in [1usize, 2, 4, 8] {
        let service = HelixService::new(scheduled(
            ServiceConfig::new(cores)
                .with_seed(SERVICE_SEED)
                .with_max_concurrent_iterations(tenants),
        ))
        .expect("service starts");
        for ix in 0..tenants {
            service
                .register_tenant(&format!("t{ix}"), TenantSpec::default())
                .expect("tenant registers");
        }

        let traces: Vec<Vec<Outputs>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..tenants)
                .map(|ix| {
                    let service = &service;
                    scope.spawn(move || {
                        let session = service
                            .open_session(
                                &format!("t{ix}"),
                                SessionConfig::in_memory().with_workers(cores),
                            )
                            .expect("session opens");
                        // Submit the whole schedule up front: successive
                        // iterations of one session queue behind each
                        // other, which is exactly the shape where the
                        // scheduler overlaps iteration t+1's planning
                        // with t's execution (execute-phase-only
                        // in-flight semantics). Results must not notice.
                        let tickets: Vec<_> = iteration_workflows(workload_for(ix))
                            .into_iter()
                            .map(|wf| session.submit(wf).expect("submission accepted"))
                            .collect();
                        tickets
                            .into_iter()
                            .map(|t| outputs_of(&t.wait().expect("iteration runs")))
                            .collect::<Vec<Outputs>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("tenant thread panicked")).collect()
        });

        for (ix, (trace, baseline)) in traces.iter().zip(&baselines).enumerate() {
            assert_eq!(trace.len(), baseline.len());
            for (iteration, (got, want)) in trace.iter().zip(baseline).enumerate() {
                assert_eq!(
                    got, want,
                    "tenant {ix} iteration {iteration} diverged from its solo serial run \
                     at {cores} cores"
                );
            }
        }
        let stats = service.stats();
        assert!(
            stats.peak_cores_leased <= cores,
            "core budget violated at {cores} cores: peak {}",
            stats.peak_cores_leased
        );
    }
}

#[test]
fn eight_tenants_on_a_tight_budget_stay_within_two_cores() {
    // Every session asks for 8-wide parallelism; the budget holds 2
    // tokens. Pre-budget, this shape is exactly the `workers²` blowup
    // (8 sessions × 8 dispatch × 8 data-parallel threads); now the token
    // high-water mark bounds the whole process.
    let cores = 2;
    let tenants = 8;
    let service = HelixService::new(scheduled(
        ServiceConfig::new(cores).with_seed(SERVICE_SEED).with_max_concurrent_iterations(tenants),
    ))
    .expect("service starts");
    for ix in 0..tenants {
        service.register_tenant(&format!("t{ix}"), TenantSpec::default()).unwrap();
    }
    let baselines: Vec<Vec<Outputs>> = (0..tenants).map(solo_serial_trace).collect();
    let traces: Vec<Vec<Outputs>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|ix| {
                let service = &service;
                scope.spawn(move || {
                    let session = service
                        .open_session(&format!("t{ix}"), SessionConfig::in_memory().with_workers(8))
                        .expect("session opens");
                    iteration_workflows(workload_for(ix))
                        .into_iter()
                        .map(|wf| outputs_of(&session.run_iteration(wf).expect("iteration runs")))
                        .collect::<Vec<Outputs>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread panicked")).collect()
    });
    for (ix, (trace, baseline)) in traces.iter().zip(&baselines).enumerate() {
        assert_eq!(trace, baseline, "tenant {ix} diverged under the tight budget");
    }
    let stats = service.stats();
    assert!(
        stats.peak_cores_leased <= cores,
        "8 greedy tenants leaked threads: peak {} > {}",
        stats.peak_cores_leased,
        cores
    );
}

#[test]
fn sessions_multiplexed_over_a_two_slot_pool_stay_byte_identical() {
    // More tenants than the runner has worker slots: with
    // `max_concurrent_iterations = 2` the pool holds two workers, so six
    // tenants' whole schedules multiplex through park/resume on the
    // same two threads — every iteration crosses the runner's session
    // claim and core grant at least once. Bytes must not notice the
    // pooling, exactly as they must not notice co-tenants or core count.
    let tenants = 6;
    let pool = 2;
    let baselines: Vec<Vec<Outputs>> = (0..tenants).map(solo_serial_trace).collect();

    let service = HelixService::new(scheduled(
        ServiceConfig::new(pool).with_seed(SERVICE_SEED).with_max_concurrent_iterations(pool),
    ))
    .expect("service starts");
    for ix in 0..tenants {
        service.register_tenant(&format!("t{ix}"), TenantSpec::default()).expect("registers");
    }

    let traces: Vec<Vec<Outputs>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|ix| {
                let service = &service;
                scope.spawn(move || {
                    let session = service
                        .open_session(
                            &format!("t{ix}"),
                            SessionConfig::in_memory().with_workers(pool),
                        )
                        .expect("session opens");
                    let tickets: Vec<_> = iteration_workflows(workload_for(ix))
                        .into_iter()
                        .map(|wf| session.submit(wf).expect("submission accepted"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| outputs_of(&t.wait().expect("iteration runs")))
                        .collect::<Vec<Outputs>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread panicked")).collect()
    });

    for (ix, (trace, baseline)) in traces.iter().zip(&baselines).enumerate() {
        assert_eq!(trace, baseline, "tenant {ix} diverged on the two-slot pool");
    }
    let stats = service.stats();
    assert!(stats.peak_cores_leased <= pool, "core budget violated on the two-slot pool");
}

#[test]
fn distinct_seed_tenants_reproduce_solo_bytes_and_share_the_prefix() {
    // The acceptance obligation of provenance-keyed signatures: two
    // tenants run the same census schedule under *different* seeds on one
    // shared catalog. Each tenant's outputs must be byte-identical to its
    // own solo serial run under its own seed (no cross-seed
    // contamination), and the seed-independent workflow prefix — parsing,
    // extraction, example assembly, everything upstream of the stochastic
    // learner — must still be shared: the follower records ≥ 1
    // cross-tenant catalog hit. Checked at every core count.
    let seeds = [11u64, 97u64];
    let baselines: Vec<Vec<Outputs>> =
        seeds.iter().map(|&seed| solo_serial_trace_seeded(0, seed)).collect();
    // Sanity for the test itself: the seeds must actually diverge
    // somewhere, or the cross-seed-contamination assertion is vacuous.
    // (The census output is a test-split accuracy; with distinct seeds
    // the logistic models differ. If the traces were fully equal this
    // test could not detect a session accidentally running the wrong
    // seed, so fail loudly and pick better seeds.)
    assert_ne!(baselines[0], baselines[1], "chosen seeds produce identical traces");

    for cores in [1usize, 2, 4, 8] {
        let service = HelixService::new(scheduled(
            ServiceConfig::new(cores).with_max_concurrent_iterations(seeds.len()),
        ))
        .expect("service starts");
        service.register_tenant("leader", TenantSpec::default()).expect("tenant registers");
        service.register_tenant("follower", TenantSpec::default()).expect("tenant registers");

        // Strictly sequential: the leader finishes its whole schedule
        // before the follower starts, which makes the follower's prefix
        // hits deterministic.
        for (tenant, (&seed, baseline)) in
            ["leader", "follower"].iter().zip(seeds.iter().zip(&baselines))
        {
            let session = service
                .open_session(
                    tenant,
                    SessionConfig::in_memory().with_workers(cores).with_seed(seed),
                )
                .expect("session opens");
            let trace: Vec<Outputs> = iteration_workflows(workload_for(0))
                .into_iter()
                .map(|wf| outputs_of(&session.run_iteration(wf).expect("iteration runs")))
                .collect();
            assert_eq!(
                &trace, baseline,
                "tenant {tenant} (seed {seed}) diverged from its solo serial run at {cores} cores"
            );
        }

        let stats = service.stats();
        assert!(
            stats.tenants["follower"].cross_hits >= 1,
            "follower must reuse the leader's seed-independent prefix at {cores} cores \
             (cross_hits = {})",
            stats.tenants["follower"].cross_hits
        );
        assert_eq!(stats.tenants["leader"].session_seeds, vec![seeds[0]]);
        assert_eq!(stats.tenants["follower"].session_seeds, vec![seeds[1]]);
        assert!(stats.peak_cores_leased <= cores, "core budget violated at {cores} cores");
    }
}

#[test]
fn cross_tenant_reuse_is_byte_transparent() {
    // Leader and follower share the census workload. Running strictly one
    // after the other makes the follower's cross-tenant hits
    // deterministic; its outputs must still be byte-identical to its solo
    // serial run even though it loads artifacts it never computed.
    let service = HelixService::new(scheduled(ServiceConfig::new(2).with_seed(SERVICE_SEED)))
        .expect("service starts");
    service.register_tenant("leader", TenantSpec::default()).unwrap();
    service.register_tenant("follower", TenantSpec::default()).unwrap();

    let leader = service
        .open_session("leader", SessionConfig::in_memory().with_workers(2))
        .expect("session opens");
    for wf in iteration_workflows(workload_for(0)) {
        leader.run_iteration(wf).expect("leader iteration runs");
    }

    let follower = service
        .open_session("follower", SessionConfig::in_memory().with_workers(2))
        .expect("session opens");
    let trace: Vec<Outputs> = iteration_workflows(workload_for(0))
        .into_iter()
        .map(|wf| outputs_of(&follower.run_iteration(wf).expect("follower iteration runs")))
        .collect();

    assert_eq!(trace, solo_serial_trace(0), "reused bytes must equal computed bytes");
    let stats = service.stats();
    assert!(
        stats.tenants["follower"].cross_hits > 0,
        "follower must actually have reused the leader's artifacts"
    );
    assert!(stats.cross_hit_rate() > 0.0);
}

#[test]
fn fair_share_with_adversarial_heavy_tenant_stays_byte_identical() {
    // The fair-share acceptance shape: one heavy tenant (two sessions,
    // maximum priority, whole backlog submitted up front) against three
    // light tenants at every core count. Fair-share scheduling must (a)
    // keep every session's outputs byte-identical to its solo serial
    // run — scheduling reorders work, never bytes — and (b) audit clean:
    // every pick is the DRF choice, so no light tenant's dominant share
    // can fall below its entitlement while it is backlogged.
    let tenants = 4;
    let baselines: Vec<Vec<Outputs>> = (0..tenants).map(solo_serial_trace).collect();

    for cores in [1usize, 2, 4, 8] {
        let service = HelixService::new(
            ServiceConfig::new(cores)
                .with_seed(SERVICE_SEED)
                .with_max_concurrent_iterations(tenants + 2)
                .with_scheduling(SchedulingPolicy::fair()),
        )
        .expect("service starts");
        service
            .register_tenant("t0", TenantSpec::default().with_priority(3).with_max_concurrent(2))
            .expect("heavy registers");
        for ix in 1..tenants {
            service.register_tenant(&format!("t{ix}"), TenantSpec::default()).unwrap();
        }

        // Heavy runs its schedule on two sessions; each light tenant on
        // one. Session traces must all match the per-tenant baseline.
        let plans: Vec<usize> = (0..2).map(|_| 0).chain(1..tenants).collect();
        let traces: Vec<(usize, Vec<Outputs>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .iter()
                .map(|&ix| {
                    let service = &service;
                    scope.spawn(move || {
                        let session = service
                            .open_session(
                                &format!("t{ix}"),
                                SessionConfig::in_memory().with_workers(cores),
                            )
                            .expect("session opens");
                        let tickets: Vec<_> = iteration_workflows(workload_for(ix))
                            .into_iter()
                            .map(|wf| session.submit(wf).expect("submission accepted"))
                            .collect();
                        let trace = tickets
                            .into_iter()
                            .map(|t| outputs_of(&t.wait().expect("iteration runs")))
                            .collect::<Vec<Outputs>>();
                        (ix, trace)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("session thread panicked")).collect()
        });

        for (ix, trace) in &traces {
            assert_eq!(
                trace, &baselines[*ix],
                "tenant t{ix} diverged from its solo serial run under fair share at \
                 {cores} cores"
            );
        }
        let stats = service.stats();
        assert!(stats.scheduling.is_fair());
        assert_eq!(
            stats.fairness.non_drf_picks, 0,
            "every pick must be the DRF choice at {cores} cores"
        );
        assert_eq!(stats.fairness.max_share_gap, 0.0);
        assert!(stats.peak_cores_leased <= cores, "core budget violated at {cores} cores");
    }
}
