//! Stress obligations of the pooled session runner: many open-loop
//! sessions must multiplex over a *fixed* set of service threads —
//! `min(cores, max_concurrent_iterations)` pool workers plus one
//! scheduler — with every job completing and the core budget intact.
//! This is the structural difference from the old thread-per-job
//! runner, whose thread count scaled with the number of in-flight
//! sessions.
//!
//! The CI smoke runs 512 sessions; the `#[ignore]`d variant is the
//! acceptance run — 10,000 sessions — and is exercised by the
//! `serve_async --check` bench in release mode (run it here with
//! `cargo test --release --test runner_stress -- --ignored`).
//!
//! Thread counts are sampled from `/proc/self/task`, so the ceiling
//! assertion is Linux-only (elsewhere the sampler reports 0 and the
//! bound is skipped; completion and budget assertions still run).

use helix_bench::serve_async::{run_serve_async, ServeAsyncConfig, ServeAsyncReport};
use std::time::Duration;

fn stress_config(sessions: usize) -> ServeAsyncConfig {
    ServeAsyncConfig {
        sessions,
        tenants: 16.min(sessions),
        cores: 4,
        iterations_per_session: 1,
        // Arrivals far above service capacity: the open-loop backlog is
        // the point — thousands of admitted-but-waiting sessions, zero
        // extra threads.
        arrival_rate: 20_000.0,
        seed: 42,
        // The stress asserts completion and thread shape, not latency.
        slo: Duration::from_secs(600),
        fair: false,
    }
}

fn assert_stress_invariants(report: &ServeAsyncReport) {
    assert_eq!(
        report.completed,
        report.total_jobs,
        "{} of {} jobs did not complete ({} failed, {} timed out)",
        report.total_jobs - report.completed,
        report.total_jobs,
        report.failed,
        report.timed_out,
    );
    assert!(
        report.peak_cores_leased <= report.cores,
        "core budget violated: peak {} > {}",
        report.peak_cores_leased,
        report.cores
    );
    assert!(report.pool_size <= report.cores, "pool never exceeds the core budget");
    // The tentpole bound: the service adds its pool workers and one
    // scheduler, and nothing that scales with session count. One thread
    // of slack absorbs a transient (e.g. a lazy background-writer
    // spin-up caught mid-sample).
    if report.peak_threads > 0 {
        assert!(
            report.service_threads() <= report.pool_size + 2,
            "thread ceiling violated: {} sessions made the service add {} threads at peak \
             (pool {} + scheduler + slack allows {})",
            report.sessions,
            report.service_threads(),
            report.pool_size,
            report.pool_size + 2,
        );
    }
}

#[test]
fn five_hundred_twelve_open_loop_sessions_share_a_fixed_pool() {
    let report = run_serve_async(&stress_config(512)).expect("stress run completes");
    assert_eq!(report.total_jobs, 512);
    assert_stress_invariants(&report);
}

#[test]
#[ignore = "acceptance-scale run (10k sessions); use --release -- --ignored"]
fn ten_thousand_sessions_complete_on_a_bounded_thread_count() {
    let report = run_serve_async(&stress_config(10_000)).expect("stress run completes");
    assert_eq!(report.total_jobs, 10_000);
    assert_stress_invariants(&report);
}
