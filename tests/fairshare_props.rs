//! Property tests for the DRF allocator in isolation (no service, no
//! threads, no clocks — a pure state machine driven by generated demand
//! sequences):
//!
//! * a capacity-gated allocation loop never exceeds the core budget, for
//!   arbitrary weights and demand/completion sequences, and always
//!   drains every tenant's backlog;
//! * the pick is deterministic under permuted (and duplicated) arrival
//!   order of the eligible set — the decision is a pure function of the
//!   ledger state, never of iteration order;
//! * starvation-freedom: every backlogged tenant is popped within a
//!   bounded number of picks (the bound follows from the share +
//!   dispatch-count ordering), so no tenant waits forever.

use helix::serve::fairshare::SHARE_SCALE;
use helix::serve::DrfAllocator;
use proptest::prelude::*;

/// Tenant names `t0..t<n>`; fixed so tie-breaks are reproducible.
fn tenant_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("t{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Capacity-gated allocation: leases handed out through the
    /// allocator's pick never exceed the budget, every tenant's demand
    /// fully drains, and each tenant is dispatched exactly its demand.
    #[test]
    fn allocation_never_exceeds_budget_and_drains(
        cores in 1u64..6,
        weights in prop::collection::vec(1u32..5, 1..6),
        demands in prop::collection::vec(0usize..10, 1..6),
        bytes in prop::collection::vec(0u64..1_000, 1..6),
        completion_choices in prop::collection::vec(any::<u16>(), 0..512),
    ) {
        let n = weights.len().min(demands.len()).min(bytes.len()).max(1);
        let names = tenant_names(n);
        let mut drf = DrfAllocator::new(cores, 1_000);
        for (name, weight) in names.iter().zip(&weights) {
            drf.set_weight(name, *weight);
        }
        for (name, b) in names.iter().zip(&bytes) {
            drf.set_bytes(name, *b);
        }
        let mut demand: Vec<usize> = demands[..n].to_vec();
        let mut in_flight: Vec<usize> = vec![0; n];
        let mut dispatched: Vec<usize> = vec![0; n];
        let mut completions = completion_choices.iter().copied();
        let mut outstanding = 0u64;
        let total_demand: usize = demand.iter().sum();
        let mut steps = 0usize;
        while demand.iter().any(|&d| d > 0) || outstanding > 0 {
            steps += 1;
            prop_assert!(steps <= 16 * (total_demand + 1), "allocation loop did not drain");
            let eligible: Vec<&str> = names
                .iter()
                .enumerate()
                .filter(|(ix, _)| demand[*ix] > 0)
                .map(|(_, name)| name.as_str())
                .collect();
            if outstanding < cores && !eligible.is_empty() {
                let picked = drf.pick(eligible.iter().copied()).expect("non-empty");
                let ix = names.iter().position(|name| name == picked).expect("known tenant");
                drf.acquire(picked);
                demand[ix] -= 1;
                in_flight[ix] += 1;
                dispatched[ix] += 1;
                outstanding += 1;
                prop_assert!(outstanding <= cores, "budget exceeded: {outstanding} > {cores}");
            } else {
                // Complete one in-flight lease, chosen by the generated
                // stream (arbitrary completion order).
                let busy: Vec<usize> =
                    (0..n).filter(|&ix| in_flight[ix] > 0).collect();
                prop_assert!(!busy.is_empty(), "nothing to complete yet nothing to dispatch");
                let choice = completions.next().unwrap_or(0) as usize % busy.len();
                let ix = busy[choice];
                drf.release(&names[ix]);
                in_flight[ix] -= 1;
                outstanding -= 1;
            }
        }
        for (ix, name) in names.iter().enumerate() {
            prop_assert_eq!(dispatched[ix], demands[ix], "tenant {} under/over-served", name);
            prop_assert_eq!(drf.cores_in_use(name), 0, "all leases returned");
        }
    }

    /// The pick is a pure function of ledger state: any permutation (or
    /// duplication) of the eligible set yields the same tenant.
    #[test]
    fn pick_is_invariant_under_permuted_arrival_order(
        cores in 1u64..8,
        acquires in prop::collection::vec(0usize..6, 0..24),
        byte_usage in prop::collection::vec(0u64..2_000, 6),
        weights in prop::collection::vec(1u32..4, 6),
        rotation in 0usize..6,
    ) {
        let names = tenant_names(6);
        let mut drf = DrfAllocator::new(cores, 1_000);
        for ((name, w), b) in names.iter().zip(&weights).zip(&byte_usage) {
            drf.set_weight(name, *w);
            drf.set_bytes(name, *b);
        }
        for ix in &acquires {
            drf.acquire(&names[*ix]);
        }
        let forward: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let mut rotated = forward.clone();
        rotated.rotate_left(rotation);
        let mut duplicated = forward.clone();
        duplicated.extend_from_slice(&rotated);
        let expected = drf.pick(forward.iter().copied());
        prop_assert_eq!(drf.pick(reversed), expected);
        prop_assert_eq!(drf.pick(rotated.iter().copied()), expected);
        prop_assert_eq!(drf.pick(duplicated), expected);
    }

    /// Starvation-freedom under the service's session shape (per-tenant
    /// concurrency 1, equal weights): a continuously backlogged tenant is
    /// picked within a bounded streak of other-tenant picks. The bound
    /// follows from the ordering: an eligible tenant holds no lease (its
    /// core share is zero), so only tenants with an equal-or-lower
    /// (share, lifetime-dispatch) key can leapfrog it, and every
    /// leapfrog raises the winner's dispatch count — the deficit
    /// Σ max(0, d_T − d_i) + n is consumed monotonically.
    #[test]
    fn every_backlogged_tenant_is_popped_within_its_deficit_bound(
        cores in 1u64..4,
        n in 2usize..6,
        demands in prop::collection::vec(1usize..12, 6),
        completion_choices in prop::collection::vec(any::<u16>(), 0..768),
    ) {
        let names = tenant_names(n);
        let mut drf = DrfAllocator::new(cores, 1_000);
        let mut demand: Vec<usize> = demands[..n].to_vec();
        let mut in_flight: Vec<bool> = vec![false; n];
        let mut dispatched: Vec<u64> = vec![0; n];
        // Per-tenant streak of picks that went elsewhere while this
        // tenant was eligible, plus the bound computed when the wait
        // started.
        let mut wait: Vec<u64> = vec![0; n];
        let mut bound: Vec<u64> = vec![0; n];
        let mut completions = completion_choices.iter().copied();
        let mut outstanding = 0u64;
        let total_demand: usize = demand.iter().sum();
        let mut steps = 0usize;
        while demand.iter().any(|&d| d > 0) || outstanding > 0 {
            steps += 1;
            prop_assert!(steps <= 32 * (total_demand + 1), "simulation did not drain");
            let eligible: Vec<usize> =
                (0..n).filter(|&ix| demand[ix] > 0 && !in_flight[ix]).collect();
            if outstanding < cores && !eligible.is_empty() {
                let picked = drf
                    .pick(eligible.iter().map(|&ix| names[ix].as_str()))
                    .expect("non-empty");
                let picked_ix =
                    names.iter().position(|name| name == picked).expect("known tenant");
                for &ix in &eligible {
                    if ix == picked_ix {
                        continue;
                    }
                    if wait[ix] == 0 {
                        // Wait starts now: the most this tenant can be
                        // leapfrogged is the dispatch deficit others can
                        // make up, plus one tie round per tenant.
                        let deficit: u64 = (0..n)
                            .filter(|&j| j != ix)
                            .map(|j| dispatched[ix].saturating_sub(dispatched[j]))
                            .sum();
                        bound[ix] = deficit + n as u64;
                    }
                    wait[ix] += 1;
                    prop_assert!(
                        wait[ix] <= bound[ix],
                        "tenant {} starved: waited {} picks (bound {})",
                        names[ix], wait[ix], bound[ix]
                    );
                }
                wait[picked_ix] = 0;
                drf.acquire(picked);
                dispatched[picked_ix] += 1;
                demand[picked_ix] -= 1;
                in_flight[picked_ix] = true;
                outstanding += 1;
            } else {
                let busy: Vec<usize> = (0..n).filter(|&ix| in_flight[ix]).collect();
                prop_assert!(!busy.is_empty(), "wedged: nothing running, nothing eligible");
                let choice = completions.next().unwrap_or(0) as usize % busy.len();
                let ix = busy[choice];
                drf.release(&names[ix]);
                in_flight[ix] = false;
                outstanding -= 1;
            }
        }
    }

    /// Dominant shares are scale-consistent: doubling both usage and
    /// capacity leaves every share (and therefore every pick) unchanged.
    #[test]
    fn shares_are_scale_invariant(
        cores in 1u64..16,
        storage in 1u64..1_000_000,
        core_use in 0u64..16,
        byte_use in 0u64..1_000_000,
    ) {
        let core_use = core_use.min(cores);
        let byte_use = byte_use.min(storage);
        let mut small = DrfAllocator::new(cores, storage);
        let mut large = DrfAllocator::new(cores * 2, storage * 2);
        for _ in 0..core_use {
            small.acquire("t");
            large.acquire("t");
        }
        for _ in 0..core_use {
            large.acquire("t");
        }
        small.set_bytes("t", byte_use);
        large.set_bytes("t", byte_use * 2);
        prop_assert_eq!(
            small.dominant_share_scaled("t"),
            large.dominant_share_scaled("t"),
            "scaled shares must agree up to integer granularity ({} parts)",
            SHARE_SCALE
        );
    }
}
