//! The micro-batch determinism contract: partition streaming is an
//! execution detail, like worker count.
//!
//! PR 9's intra-node dispatcher (`helix_core::microbatch`) slices a
//! partitionable operator's input into fixed-boundary batches and runs
//! load/compute/commit as overlapped lanes. Nothing a user can observe
//! may depend on that: outputs, catalogs, and errors must be
//! byte-identical to whole-frame execution at every batch size, worker
//! count, and scheduling policy. This suite enforces the contract
//! directly:
//!
//! * **Grid identity**: a csv-scan → tokenize → extract workflow runs
//!   whole-frame and streamed at batch sizes {1, 7, 64, len, len+1} ×
//!   1/2/4/8 workers, solo and through the multi-tenant service under
//!   both `HELIX_SCHEDULING` policies (strict priority and DRF fair
//!   share). Encoded outputs and final catalog signatures must match
//!   byte-for-byte.
//! * **Property identity**: proptest draws (rows, batch, workers, seed)
//!   and replays the same comparison.
//! * **Failure identity**: a mid-stream parse failure must surface the
//!   same error `Display` as the serial run (the earliest failing row in
//!   row order, from the earliest failing node in topo order) and leave
//!   the catalog in the same state as the serial failure.
//!
//! Materialization runs under `MatStrategy::Always` so elective (wall-
//! timing-coupled) Opt decisions can't masquerade as batching effects.

use helix::core::{MatStrategy, Session, SessionConfig, Workflow};
use helix::data::{FieldValue, Record, RecordBatch, Schema, Value};
use helix::serve::{HelixService, SchedulingPolicy, ServiceConfig, TenantSpec};
use helix::storage::encode_value;
use proptest::prelude::*;
use std::collections::BTreeMap;

const SEED: u64 = 42;

/// Output name → encoded bytes, plus the catalog's final signature list:
/// everything an iteration leaves behind.
type Fingerprint = (BTreeMap<String, Vec<u8>>, Vec<String>);

/// csv scan → tokenize → field extract over `rows` synthetic lines; all
/// three bulk operators are partitionable, the source is not.
fn workflow(rows: usize, ragged_at: Option<usize>) -> Workflow {
    let mut wf = Workflow::new("microbatch-grid");
    // The closure's content isn't hashed into the source signature, so
    // the version must change whenever the generated data does (else the
    // catalog would legitimately reuse the other variant's bytes).
    let version = rows as u64 * 2 + ragged_at.is_some() as u64;
    let raw = wf.source("raw", version, move |_| {
        let schema = Schema::new(["line"]);
        let rows = (0..rows)
            .map(|i| {
                let line = if ragged_at == Some(i) {
                    format!("{i},stray,extra")
                } else {
                    format!("{i},token{} token{}", i % 13, i % 7)
                };
                Record::train(vec![FieldValue::Text(line)])
            })
            .collect();
        Ok(Value::records(RecordBatch::new(schema, rows)?))
    });
    let parsed = wf.csv_scan("parsed", raw, &["id", "text"]);
    let tokens = wf.tokenize("tokens", parsed, "text");
    let ids = wf.field_extractor("ids", parsed, "id");
    wf.output(tokens);
    wf.output(ids);
    wf
}

fn config(workers: usize, microbatch: usize) -> SessionConfig {
    SessionConfig::in_memory()
        .with_strategy(MatStrategy::Always)
        .with_workers(workers)
        .with_seed(SEED)
        .with_microbatch(microbatch)
}

/// Run the workflow twice (build + identical rerun — compute and reuse
/// paths) in a fresh session and fingerprint the second report.
fn solo_fingerprint(rows: usize, workers: usize, microbatch: usize) -> Fingerprint {
    let mut session = Session::new(config(workers, microbatch)).expect("session opens");
    let wf = workflow(rows, None);
    session.run(&wf).expect("first iteration");
    let report = session.run(&wf).expect("rerun");
    let outputs =
        report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect();
    let sigs = session.catalog().entries().iter().map(|e| e.signature.clone()).collect();
    (outputs, sigs)
}

/// The same fingerprint taken through the multi-tenant service, so the
/// scheduler and its admission path sit between us and the engine.
fn service_fingerprint(
    rows: usize,
    workers: usize,
    microbatch: usize,
    policy: SchedulingPolicy,
) -> Vec<Fingerprint> {
    let tenants = 2;
    let service = HelixService::new(
        ServiceConfig::new(workers)
            .with_seed(SEED)
            .with_max_concurrent_iterations(tenants)
            .with_scheduling(policy),
    )
    .expect("service starts");
    for ix in 0..tenants {
        service.register_tenant(&format!("t{ix}"), TenantSpec::default()).expect("tenant");
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|ix| {
                let service = &service;
                scope.spawn(move || {
                    let session = service
                        .open_session(&format!("t{ix}"), config(workers, microbatch))
                        .expect("session opens");
                    // Tenants differ in row count so cross-tenant reuse
                    // can't hide a divergence.
                    let reports: Vec<_> = (0..2)
                        .map(|_| {
                            let wf = workflow(rows + ix * 11, None);
                            session.submit(wf).expect("submit").wait().expect("runs")
                        })
                        .collect();
                    let last = reports.last().expect("two iterations");
                    let outputs = last
                        .outputs
                        .iter()
                        .map(|(name, value)| (name.clone(), encode_value(value)))
                        .collect::<BTreeMap<_, _>>();
                    (outputs, Vec::new())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    })
}

#[test]
fn streamed_is_byte_identical_across_batch_and_worker_grid() {
    let rows = 120usize;
    for workers in [1usize, 2, 4, 8] {
        let whole = solo_fingerprint(rows, workers, 0);
        for batch in [1usize, 7, 64, rows, rows + 1] {
            let streamed = solo_fingerprint(rows, workers, batch);
            assert_eq!(whole, streamed, "solo diverged at batch={batch} workers={workers}");
        }
    }
}

#[test]
fn streamed_is_byte_identical_under_both_scheduling_policies() {
    let rows = 60usize;
    for policy in [SchedulingPolicy::Priority, SchedulingPolicy::fair()] {
        for workers in [1usize, 2, 4, 8] {
            let whole = service_fingerprint(rows, workers, 0, policy.clone());
            for batch in [1usize, 7, 64, rows, rows + 1] {
                let streamed = service_fingerprint(rows, workers, batch, policy.clone());
                assert_eq!(
                    whole, streamed,
                    "service diverged at batch={batch} workers={workers} {policy:?}"
                );
            }
        }
    }
}

#[test]
fn mid_stream_failure_matches_serial_error_and_catalog() {
    let rows = 90usize;
    let run_failing = |microbatch: usize, workers: usize| -> (String, Vec<String>) {
        let mut session = Session::new(config(workers, microbatch)).expect("session opens");
        // A clean iteration first, so the failing run has prior catalog
        // state that the failure must not corrupt.
        session.run(&workflow(rows, None)).expect("clean iteration");
        let err = match session.run(&workflow(rows, Some(37))) {
            Ok(_) => panic!("ragged row must fail"),
            Err(e) => e,
        };
        let sigs = session.catalog().entries().iter().map(|e| e.signature.clone()).collect();
        (format!("{err}"), sigs)
    };
    let (serial_err, serial_sigs) = run_failing(0, 1);
    for workers in [2usize, 4] {
        for batch in [1usize, 7, 64, rows, rows + 1] {
            let (err, sigs) = run_failing(batch, workers);
            assert_eq!(err, serial_err, "error diverged at batch={batch} workers={workers}");
            assert_eq!(sigs, serial_sigs, "catalog diverged at batch={batch} workers={workers}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (rows, batch, workers) combination is byte-identical to the
    /// whole-frame run of the same shape.
    #[test]
    fn streamed_matches_whole_frame_for_any_shape(
        rows in 1usize..160,
        batch in 1usize..170,
        workers in 1usize..5,
    ) {
        let whole = solo_fingerprint(rows, workers, 0);
        let streamed = solo_fingerprint(rows, workers, batch);
        prop_assert_eq!(whole, streamed);
    }
}
