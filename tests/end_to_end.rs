//! Integration tests spanning the whole stack: DSL → compiler → tracker →
//! OEP → engine → OMP → catalog, through real ML workloads.

use helix_core::prelude::*;
use helix_core::MatStrategy;
use helix_flow::oep::State;
use helix_storage::DiskProfile;
use helix_workloads::{
    run_iterations, CensusWorkload, ChangeKind, GenomicsWorkload, IeWorkload, MnistWorkload,
    Workload,
};
use std::collections::HashMap;

fn state_map(report: &helix_core::IterationReport) -> HashMap<String, State> {
    report.states.iter().cloned().collect()
}

#[test]
fn census_full_scripted_schedule_is_correct_and_faster() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wl = CensusWorkload::small();
    let schedule = wl.scripted_sequence();
    let reports = run_iterations(&mut session, &mut wl, &schedule).unwrap();
    assert_eq!(reports.len(), 10);

    // Every iteration produces a valid accuracy from the same planted data.
    for report in &reports {
        let acc = report
            .output_scalar("checked")
            .and_then(|s| s.metric("accuracy"))
            .expect("accuracy output present");
        assert!(acc > 0.6, "accuracy collapsed: {acc}");
    }
    // PPR iterations (indices with Ppr in schedule) must be far cheaper
    // than iteration 0.
    let init = reports[0].metrics.total_nanos();
    for (i, kind) in schedule.iter().enumerate() {
        if *kind == ChangeKind::Ppr {
            let t = reports[i + 1].metrics.total_nanos();
            assert!(t < init / 3, "PPR iteration {} took {t} vs init {init}", i + 1);
        }
    }
}

#[test]
fn census_reuse_gives_identical_results_to_recompute() {
    // The same workload under never-reuse and full-reuse sessions must
    // produce identical model outputs (Theorem 1: correctness of reuse).
    let mut fresh = Session::new(SessionConfig::keystoneml_like()).unwrap();
    let mut reusing = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wl_a = CensusWorkload::small();
    let mut wl_b = CensusWorkload::small();
    let changes = [ChangeKind::Ppr, ChangeKind::LI, ChangeKind::Ppr];
    let fresh_reports = run_iterations(&mut fresh, &mut wl_a, &changes).unwrap();
    let reuse_reports = run_iterations(&mut reusing, &mut wl_b, &changes).unwrap();
    for (f, r) in fresh_reports.iter().zip(&reuse_reports) {
        let fa = f.output_scalar("checked").unwrap().metric("accuracy").unwrap();
        let ra = r.output_scalar("checked").unwrap().metric("accuracy").unwrap();
        assert_eq!(fa, ra, "iteration {}: reuse changed the result", f.iteration);
    }
}

#[test]
fn genomics_scripted_schedule_reuses_embeddings_across_li_changes() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wl = GenomicsWorkload::small();
    let schedule = wl.scripted_sequence();
    let reports = run_iterations(&mut session, &mut wl, &schedule).unwrap();

    // The expensive word2vec node retrains only when the embedding dim
    // changes (every second L/I change), never on PPR iterations.
    for (i, kind) in schedule.iter().enumerate() {
        let states = state_map(&reports[i + 1]);
        if *kind == ChangeKind::Ppr {
            assert_ne!(
                states["word2vec"],
                State::Compute,
                "iteration {}: PPR must not retrain embeddings",
                i + 1
            );
        }
    }
    // Quality stays sane throughout.
    let nmi =
        reports.last().unwrap().output_scalar("clusterQuality").unwrap().metric("nmi").unwrap();
    assert!(nmi > 0.3, "final nmi {nmi}");
}

#[test]
fn ie_parse_is_never_recomputed_after_iteration_zero() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wl = IeWorkload::small();
    let schedule = wl.scripted_sequence();
    let reports = run_iterations(&mut session, &mut wl, &schedule).unwrap();
    for report in reports.iter().skip(1) {
        let states = state_map(report);
        assert_ne!(states["sentences"], State::Compute);
        assert_ne!(states["candidates"], State::Compute);
    }
    let f1 = reports.last().unwrap().output_scalar("extractionF1").unwrap().metric("f1").unwrap();
    assert!(f1 > 0.5, "f1 {f1}");
}

#[test]
fn mnist_volatile_chain_full_schedule() {
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let mut wl = MnistWorkload::small();
    let schedule = wl.scripted_sequence();
    let reports = run_iterations(&mut session, &mut wl, &schedule).unwrap();
    // PPR iterations never recompute the volatile featurization.
    for (i, kind) in schedule.iter().enumerate() {
        if *kind == ChangeKind::Ppr {
            let states = state_map(&reports[i + 1]);
            assert_ne!(states["randomFFT"], State::Compute, "iteration {}", i + 1);
        }
    }
}

#[test]
fn storage_budget_is_respected_across_iterations() {
    let budget: u64 = 64 * 1024; // tiny: forces selectivity
    let config = SessionConfig::in_memory().with_budget(budget).with_strategy(MatStrategy::Opt);
    let mut session = Session::new(config).unwrap();
    let mut wl = CensusWorkload::small();
    let schedule = wl.scripted_sequence();
    run_iterations(&mut session, &mut wl, &schedule).unwrap();
    // Elective materializations respect the cap; mandatory outputs are
    // scalars (bytes, not KiB), so total stays within budget + slack.
    assert!(
        session.catalog().total_bytes() <= budget + 8 * 1024,
        "catalog {} exceeds budget {budget}",
        session.catalog().total_bytes()
    );
}

#[test]
fn catalog_survives_session_restart() {
    let dir = std::env::temp_dir().join(format!("helix-it-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || SessionConfig { catalog_dir: Some(dir.clone()), ..SessionConfig::in_memory() };
    let wl = CensusWorkload::small();
    {
        let mut session = Session::new(config()).unwrap();
        session.run(&wl.build()).unwrap();
    }
    // New process/session: the unchanged workflow reuses on-disk artifacts.
    let mut session = Session::new(config()).unwrap();
    let report = session.run(&wl.build()).unwrap();
    assert_eq!(
        report.metrics.computed, 0,
        "restarted session must reuse the previous session's artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn throttled_disk_changes_plans_not_results() {
    let fast = SessionConfig::in_memory();
    let slow = SessionConfig::in_memory().with_disk(DiskProfile::scaled(2_000_000, 3_000_000));
    let mut fast_session = Session::new(fast).unwrap();
    let mut slow_session = Session::new(slow).unwrap();
    let wl = CensusWorkload::small();
    let fast_report = fast_session.run(&wl.build()).unwrap();
    let slow_report = slow_session.run(&wl.build()).unwrap();
    assert_eq!(
        fast_report.output_scalar("checked").unwrap().metric("accuracy"),
        slow_report.output_scalar("checked").unwrap().metric("accuracy"),
        "disk profile must never affect results"
    );
}

#[test]
fn data_driven_pruning_identifies_dead_extractor() {
    // Train the census model, then use feature provenance to ask which
    // extractors carry no weight (paper §5.4 data-driven pruning).
    use helix_core::prune::{owner_weight_mass, zero_weight_owners};
    let mut session = Session::new(SessionConfig::in_memory()).unwrap();
    let wl = CensusWorkload::small();
    let mut wf = wl.build();
    // Expose the intermediates the analysis needs.
    wf.mark_output("income").unwrap();
    wf.mark_output("incPred").unwrap();
    let report = session.run(&wf).unwrap();

    let income_value = report.output("income").unwrap();
    let model_value = report.output("incPred").unwrap();
    let binding = income_value.as_collection().unwrap();
    let batch = binding.as_examples().unwrap();
    let helix_data::Model::Linear(linear) = model_value.as_model().unwrap() else {
        panic!("expected linear model");
    };
    let mass = owner_weight_mass(linear, &batch.space);
    assert!(!mass.is_empty());
    // The census features are all informative, so no extractor should be
    // fully dead at a strict threshold...
    let dead = zero_weight_owners(linear, &batch.space, 1e-12);
    assert!(dead.is_empty(), "unexpectedly dead extractors: {dead:?}");
    // ...but at an absurdly permissive threshold every extractor is
    // "prunable", which sanity-checks the provenance plumbing.
    let all = zero_weight_owners(linear, &batch.space, f64::INFINITY);
    assert_eq!(all.len(), mass.len());
}
