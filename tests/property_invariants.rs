//! Property-based tests on the core invariants of the reproduction:
//!
//! * OPT-EXEC-PLAN optimality (max-flow == brute force) on random DAGs;
//! * storage-codec round-trips over arbitrary values;
//! * signature chaining sensitivity and stability;
//! * feature-vector algebra across layouts.

use helix_common::hash::Signature;
use helix_data::{
    Example, ExampleBatch, FeatureVector, FieldValue, Record, RecordBatch, Scalar, Schema, Split,
    Value,
};
use helix_flow::oep::{NodeCosts, OepProblem};
use helix_flow::{Dag, NodeId};
use helix_storage::{decode_value, encode_value};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        Just(FieldValue::Null),
        any::<i64>().prop_map(FieldValue::Int),
        // Finite floats only: the record model (like SQL) treats NaN as
        // data, but PartialEq-based roundtrip assertions need comparability.
        (-1e15f64..1e15).prop_map(FieldValue::Float),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(FieldValue::Text),
    ]
}

fn arb_records() -> impl Strategy<Value = Value> {
    (1usize..6).prop_flat_map(|arity| {
        let columns: Vec<String> = (0..arity).map(|i| format!("col{i}")).collect();
        prop::collection::vec(
            (prop::collection::vec(arb_field_value(), arity), prop::bool::ANY),
            0..30,
        )
        .prop_map(move |rows| {
            let schema = Schema::new(columns.clone());
            let rows = rows
                .into_iter()
                .map(|(values, train)| Record {
                    values,
                    split: if train { Split::Train } else { Split::Test },
                })
                .collect();
            Value::records(RecordBatch::new(schema, rows).unwrap())
        })
    })
}

fn arb_sparse_vector() -> impl Strategy<Value = FeatureVector> {
    (1u32..256, prop::collection::vec((0u32..256, -100.0f64..100.0), 0..20)).prop_map(
        |(dim_extra, pairs)| {
            let dim = 256 + dim_extra;
            let pairs = pairs.into_iter().filter(|(i, _)| *i < dim).collect();
            FeatureVector::sparse_from_pairs(dim, pairs)
        },
    )
}

fn arb_examples() -> impl Strategy<Value = Value> {
    prop::collection::vec(
        (arb_sparse_vector(), prop::option::of(0.0f64..10.0), prop::bool::ANY),
        0..20,
    )
    .prop_map(|rows| {
        let examples = rows
            .into_iter()
            .map(|(features, label, train)| {
                Example::new(features, label, if train { Split::Train } else { Split::Test })
            })
            .collect();
        Value::examples(ExampleBatch::dense(examples))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any record batch survives an encode/decode round trip bit-exactly.
    #[test]
    fn codec_roundtrips_records(value in arb_records()) {
        let decoded = decode_value(&encode_value(&value)).unwrap();
        let (a, b) = (value.as_collection().unwrap(), decoded.as_collection().unwrap());
        prop_assert_eq!(a.as_records().unwrap(), b.as_records().unwrap());
    }

    /// Any example batch survives a round trip.
    #[test]
    fn codec_roundtrips_examples(value in arb_examples()) {
        let decoded = decode_value(&encode_value(&value)).unwrap();
        let a = value.as_collection().unwrap().as_examples().unwrap().examples.clone();
        let b = decoded.as_collection().unwrap().as_examples().unwrap().examples.clone();
        prop_assert_eq!(a, b);
    }

    /// Scalars (including metric bundles) round trip.
    #[test]
    fn codec_roundtrips_scalars(
        metrics in prop::collection::vec(("[a-z]{1,8}", -1e9f64..1e9), 0..8)
    ) {
        let value = Value::Scalar(Scalar::Metrics(
            metrics.into_iter().collect(),
        ));
        let decoded = decode_value(&encode_value(&value)).unwrap();
        prop_assert_eq!(value.as_scalar().unwrap(), decoded.as_scalar().unwrap());
    }

    /// Corrupting any single byte of a frame is always detected.
    #[test]
    fn codec_detects_any_single_byte_corruption(
        value in arb_records(),
        position_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_value(&value);
        let pos = (position_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        prop_assert!(decode_value(&bytes).is_err(), "corruption at {pos} undetected");
    }

    /// The max-flow OEP solution always matches the exhaustive optimum.
    #[test]
    fn oep_maxflow_matches_brute_force(
        n in 2usize..8,
        edge_bits in any::<u64>(),
        cost_seed in any::<u64>(),
    ) {
        let mut dag: Dag<()> = Dag::new();
        let ids: Vec<NodeId> = (0..n).map(|_| dag.add_node(())).collect();
        let mut bit = 0;
        for i in 1..n {
            for j in 0..i {
                if (edge_bits >> (bit % 64)) & 1 == 1 {
                    dag.add_edge(ids[j], ids[i]).unwrap();
                }
                bit += 1;
            }
        }
        let mut rng = helix_common::SplitMix64::new(cost_seed);
        let costs: Vec<NodeCosts> = (0..n)
            .map(|i| {
                let compute = 1 + rng.next_below(40);
                let load = rng.chance(0.6).then(|| 1 + rng.next_below(40));
                let mut c = NodeCosts::new(compute, load);
                if rng.chance(0.25) {
                    c = c.forced();
                } else if i == n - 1 {
                    c = c.required();
                }
                c
            })
            .collect();
        let problem = OepProblem::new(&dag, &costs);
        let fast = problem.solve();
        let slow = problem.solve_brute_force();
        prop_assert!(problem.is_feasible(&fast.states));
        prop_assert_eq!(fast.total_cost, slow.total_cost);
    }

    /// Signature chaining: equal inputs → equal signature; any parent
    /// change propagates.
    #[test]
    fn signature_chain_props(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let base = Signature::of_str("decl");
        let s1 = base.chain_u64(a).chain_u64(b);
        let s2 = base.chain_u64(a).chain_u64(b);
        prop_assert_eq!(s1, s2);
        if b != c {
            prop_assert_ne!(s1, base.chain_u64(a).chain_u64(c));
            prop_assert_ne!(s1, base.chain_u64(c).chain_u64(b));
        }
        if a != b {
            prop_assert_ne!(
                base.chain_u64(a).chain_u64(b),
                base.chain_u64(b).chain_u64(a),
                "chaining must be order-dependent"
            );
        }
    }

    /// Sparse and dense vector algebra agree.
    #[test]
    fn vector_layouts_agree(v in arb_sparse_vector(), weights_seed in any::<u64>()) {
        let dim = v.dim();
        let mut rng = helix_common::SplitMix64::new(weights_seed);
        let weights: Vec<f64> = (0..dim).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let dense = FeatureVector::Dense(v.to_dense());
        prop_assert!((v.dot_dense(&weights) - dense.dot_dense(&weights)).abs() < 1e-9);
        prop_assert!((v.l2_norm() - dense.l2_norm()).abs() < 1e-9);
        prop_assert!((v.sq_dist_dense(&weights) - dense.sq_dist_dense(&weights)).abs() < 1e-6);
    }

    /// Example batches keep their feature space through the codec,
    /// including provenance owners.
    #[test]
    fn codec_preserves_feature_space(names in prop::collection::hash_set("[a-z]{1,10}", 1..10)) {
        let mut space = helix_data::FeatureSpace::new();
        for (i, name) in names.iter().enumerate() {
            space.intern(name, (i % 3) as u32);
        }
        let sig_before = space.signature();
        let batch = ExampleBatch::new(
            Arc::new(space),
            vec![Example::new(FeatureVector::zeros(names.len()), None, Split::Train)],
        );
        let decoded = decode_value(&encode_value(&Value::examples(batch))).unwrap();
        let decoded_space =
            decoded.as_collection().unwrap().as_examples().unwrap().space.clone();
        prop_assert_eq!(decoded_space.signature(), sig_before);
    }
}
