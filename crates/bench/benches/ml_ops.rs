//! ML-operator kernel benches: the compute side (`c_i`) of the OEP/OMP
//! trade-offs, per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use helix_common::SplitMix64;
use helix_data::{Example, FeatureVector, Split};
use helix_ml::{KMeans, LogisticRegression, RandomFourierFeatures, Word2Vec};
use std::hint::black_box;

fn blobs(n: usize, dim: usize, seed: u64) -> Vec<Example> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let label = (i % 2) as f64;
            let center = if label > 0.5 { 1.5 } else { -1.5 };
            let x: Vec<f64> = (0..dim).map(|_| center + rng.next_gaussian() * 0.5).collect();
            Example::new(FeatureVector::Dense(x), Some(label), Split::Train)
        })
        .collect()
}

fn bench_logistic(c: &mut Criterion) {
    let data = blobs(2_000, 32, 5);
    c.bench_function("lr_fit_2k_x32", |b| {
        b.iter(|| black_box(LogisticRegression::default().fit(&data, 32).unwrap()))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let points: Vec<FeatureVector> = blobs(2_000, 16, 9).into_iter().map(|e| e.features).collect();
    c.bench_function("kmeans_fit_2k_x16_k8", |b| {
        b.iter(|| black_box(KMeans::with_k(8).fit(&points).unwrap()))
    });
}

fn bench_word2vec(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let vocab: Vec<String> = (0..200).map(|i| format!("w{i}")).collect();
    let corpus: Vec<Vec<String>> = (0..200)
        .map(|_| (0..20).map(|_| vocab[rng.index(vocab.len())].clone()).collect())
        .collect();
    c.bench_function("word2vec_200sent_dim16", |b| {
        b.iter(|| {
            black_box(Word2Vec { dim: 16, epochs: 1, ..Default::default() }.fit(&corpus).unwrap())
        })
    });
}

fn bench_rff(c: &mut Criterion) {
    let model = RandomFourierFeatures { dim_out: 256, ..Default::default() }.fit(256).unwrap();
    let x = FeatureVector::Dense(vec![0.5; 256]);
    c.bench_function("rff_transform_256to256", |b| {
        b.iter(|| black_box(RandomFourierFeatures::transform(&model, &x).unwrap()))
    });
}

fn bench_tokenize(c: &mut Criterion) {
    let text = "The quick brown fox jumps over the lazy dog. ".repeat(100);
    c.bench_function("tokenize_1k_words", |b| {
        b.iter(|| black_box(helix_ml::text::tokenize(&text).len()))
    });
}

criterion_group!(benches, bench_logistic, bench_kmeans, bench_word2vec, bench_rff, bench_tokenize);
criterion_main!(benches);
