//! The tentpole benchmark: frontier-scheduled parallel execution of OEP
//! plans at 1/2/4/8 workers (the paper's Figure 7b "cluster size" sweep,
//! now running against our own engine instead of Spark).
//!
//! Three subjects:
//!
//! * `branchy/*` — a synthetic workflow with eight independent branches of
//!   *blocking* work (sleeps modeling throttled I/O / external calls). The
//!   frontier scheduler overlaps the branches, so wall-clock speedup shows
//!   even on a single-core machine; this is the acceptance benchmark for
//!   "speedup over serial on a workload with ≥ 2 independent branches".
//! * `census/*` and `genomics/*` — full paper workloads through the
//!   session lifecycle (plan → execute → materialize). These are
//!   CPU-bound, so expect scaling on multi-core hardware and roughly flat
//!   numbers (scheduler overhead only) on one core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_core::{MatStrategy, Session, SessionConfig, Workflow};
use helix_data::{Scalar, Value};
use helix_workloads::{CensusWorkload, GenomicsWorkload, Workload};
use std::hint::black_box;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Eight independent blocking branches joined at a sink — the minimal
/// shape where node-level parallelism, not data-parallel operators, is
/// the only speedup source.
fn branchy_workflow(branch_millis: u64) -> Workflow {
    let mut wf = Workflow::new("branchy");
    let src = wf.source("src", 1, |_| Ok(Value::Scalar(Scalar::F64(1.0))));
    let branches: Vec<_> = (0..8)
        .map(|i| {
            wf.reduce(&format!("branch{i}"), src, 1, move |v, _| {
                std::thread::sleep(std::time::Duration::from_millis(branch_millis));
                let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
                Ok(Value::Scalar(Scalar::F64(x * (i + 1) as f64)))
            })
        })
        .collect();
    let join = wf.reduce_many(
        "join",
        [
            branches[0],
            branches[1],
            branches[2],
            branches[3],
            branches[4],
            branches[5],
            branches[6],
            branches[7],
        ],
        1,
        |vs, _| {
            let total: f64 =
                vs.iter().filter_map(|v| v.as_scalar().ok().and_then(|s| s.as_f64())).sum();
            Ok(Value::Scalar(Scalar::F64(total)))
        },
    );
    wf.output(join);
    wf
}

fn run_once(wf: &Workflow, workers: usize) -> u64 {
    let config = SessionConfig::in_memory().with_workers(workers).with_strategy(MatStrategy::Never);
    let mut session = Session::new(config).expect("session opens");
    session.run(wf).expect("iteration runs").metrics.total_nanos()
}

fn bench_branchy(c: &mut Criterion) {
    let wf = branchy_workflow(10);
    let mut group = c.benchmark_group("branchy");
    group.sample_size(10);
    for workers in WORKER_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(run_once(&wf, w)))
        });
    }
    group.finish();
}

fn bench_census(c: &mut Criterion) {
    let wl = CensusWorkload::small();
    let mut group = c.benchmark_group("census");
    group.sample_size(10);
    for workers in WORKER_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(run_once(&wl.build(), w)))
        });
    }
    group.finish();
}

fn bench_genomics(c: &mut Criterion) {
    let wl = GenomicsWorkload::small();
    let mut group = c.benchmark_group("genomics");
    group.sample_size(10);
    for workers in WORKER_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(run_once(&wl.build(), w)))
        });
    }
    group.finish();
}

/// Not a statistical benchmark but a hard assertion, kept here so `cargo
/// bench` fails loudly if the scheduler ever loses its overlap: 8 workers
/// must beat serial on the branchy workflow by at least 2×.
fn assert_speedup(_c: &mut Criterion) {
    let wf = branchy_workflow(20);
    let serial = {
        let t = std::time::Instant::now();
        run_once(&wf, 1);
        t.elapsed()
    };
    let parallel = {
        let t = std::time::Instant::now();
        run_once(&wf, 8);
        t.elapsed()
    };
    println!(
        "branchy speedup check: serial {serial:?}, 8 workers {parallel:?} ({:.1}x)",
        serial.as_secs_f64() / parallel.as_secs_f64()
    );
    assert!(
        parallel * 2 < serial,
        "8 workers ({parallel:?}) must be at least 2x faster than serial ({serial:?})"
    );
}

criterion_group!(benches, bench_branchy, bench_census, bench_genomics, assert_speedup);
criterion_main!(benches);
