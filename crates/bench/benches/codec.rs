//! Micro-benchmarks for the storage codec and catalog: the cost of
//! materializing and reloading intermediates is the `l_i` side of every
//! OEP/OMP trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use helix_common::hash::Signature;
use helix_common::SplitMix64;
use helix_data::{Example, ExampleBatch, FeatureVector, Split, Value};
use helix_storage::{decode_value, encode_value, DiskProfile, MaterializationCatalog};
use std::hint::black_box;

fn example_batch(n: usize, dim: u32, nnz: usize) -> Value {
    let mut rng = SplitMix64::new(11);
    let examples: Vec<Example> = (0..n)
        .map(|i| {
            let pairs: Vec<(u32, f64)> =
                (0..nnz).map(|_| (rng.next_below(dim as u64) as u32, rng.next_f64())).collect();
            Example::new(
                FeatureVector::sparse_from_pairs(dim, pairs),
                Some((i % 2) as f64),
                Split::Train,
            )
        })
        .collect();
    Value::examples(ExampleBatch::dense(examples))
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for n in [100usize, 1_000, 10_000] {
        let value = example_batch(n, 1_000, 20);
        let encoded = encode_value(&value);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| black_box(encode_value(&value).len()))
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &n, |b, _| {
            b.iter(|| black_box(decode_value(&encoded).unwrap()))
        });
    }
    group.finish();
}

fn bench_catalog(c: &mut Criterion) {
    let catalog = MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap();
    let value = example_batch(1_000, 1_000, 20);
    c.bench_function("catalog_store_1k_examples", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let sig = Signature::of_str(&format!("bench-{i}"));
            i += 1;
            black_box(catalog.store(sig, "bench", 0, &value).unwrap())
        })
    });
    let sig = Signature::of_str("bench-load");
    catalog.store(sig, "bench", 0, &value).unwrap();
    c.bench_function("catalog_load_1k_examples", |b| {
        b.iter(|| black_box(catalog.load(sig).unwrap().1))
    });
}

criterion_group!(benches, bench_encode_decode, bench_catalog);
criterion_main!(benches);
