//! Micro-benchmarks for the compile-time optimizer: the max-flow OEP
//! solver (paper Algorithm 1), the PSP reduction, and signature chaining.
//! Establishes that optimization overhead is negligible next to operator
//! run times (the paper's compile phase is "milliseconds").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_common::SplitMix64;
use helix_flow::oep::{NodeCosts, OepProblem};
use helix_flow::{Dag, NodeId, ProjectSelection};
use std::hint::black_box;

/// Layered random DAG shaped like a real workflow (sources → features →
/// learner → reducers).
fn random_workflow_dag(n: usize, seed: u64) -> (Dag<()>, Vec<NodeCosts>) {
    let mut rng = SplitMix64::new(seed);
    let mut dag: Dag<()> = Dag::new();
    let ids: Vec<NodeId> = (0..n).map(|_| dag.add_node(())).collect();
    for i in 1..n {
        // 1-3 parents among the previous nodes, biased to recent ones.
        let parents = 1 + rng.index(3.min(i));
        for _ in 0..parents {
            let lookback = 1 + rng.index(8.min(i));
            dag.add_edge(ids[i - lookback], ids[i]).unwrap();
        }
    }
    let costs: Vec<NodeCosts> = (0..n)
        .map(|i| {
            let compute = 1_000_000 + rng.next_below(50_000_000);
            let load = rng.chance(0.6).then(|| 100_000 + rng.next_below(5_000_000));
            let mut c = NodeCosts::new(compute, load);
            if i == n - 1 {
                c = c.required();
            } else if rng.chance(0.1) {
                c = c.forced();
            }
            c
        })
        .collect();
    (dag, costs)
}

fn bench_oep(c: &mut Criterion) {
    let mut group = c.benchmark_group("oep_maxflow");
    for n in [20usize, 100, 400] {
        let (dag, costs) = random_workflow_dag(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let sol = OepProblem::new(&dag, &costs).solve();
                black_box(sol.total_cost)
            })
        });
    }
    group.finish();
}

fn bench_psp(c: &mut Criterion) {
    c.bench_function("psp_mincut_200", |b| {
        let mut rng = SplitMix64::new(3);
        let mut psp = ProjectSelection::new();
        for _ in 0..200 {
            psp.add_project(rng.next_below(2_001) as i128 - 1_000);
        }
        for i in 1..200 {
            for _ in 0..2 {
                psp.add_prerequisite(i, rng.index(i));
            }
        }
        b.iter(|| black_box(psp.solve().profit))
    });
}

fn bench_signatures(c: &mut Criterion) {
    c.bench_function("signature_chain_1k", |b| {
        let base = helix_common::Signature::of_str("operator-declaration");
        b.iter(|| {
            let mut sig = base;
            for i in 0..1_000u64 {
                sig = sig.chain_u64(i);
            }
            black_box(sig)
        })
    });
}

criterion_group!(benches, bench_oep, bench_psp, bench_signatures);
criterion_main!(benches);
