//! Engine infrastructure benches: cache policies (HELIX eager vs LRU,
//! paper §5.4) and worker-pool scaling (the substrate of Figure 7b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_data::{Scalar, Value};
use helix_exec::{CachePolicy, ValueCache, WorkerPool};
use std::hint::black_box;
use std::sync::Arc;

fn bench_cache_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let payload: Arc<Value> = Arc::new(Value::Scalar(Scalar::Text("x".repeat(10_000))));
    group.bench_function("eager_put_evict", |b| {
        b.iter(|| {
            let mut cache = ValueCache::new(CachePolicy::Eager);
            for i in 0..100u32 {
                cache.put(i, Arc::clone(&payload));
                if i >= 2 {
                    cache.evict(i - 2);
                }
            }
            black_box(cache.resident_bytes())
        })
    });
    group.bench_function("lru_put_under_budget", |b| {
        b.iter(|| {
            let mut cache = ValueCache::new(CachePolicy::Lru { budget_bytes: 50_000 });
            for i in 0..100u32 {
                cache.put(i, Arc::clone(&payload));
            }
            black_box(cache.resident_bytes())
        })
    });
    group.finish();
}

fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_map");
    let items: Vec<u64> = (0..10_000).collect();
    let work = |x: &u64| -> u64 {
        let mut acc = *x;
        for i in 0..500u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let pool = WorkerPool::new(w);
            b.iter(|| black_box(pool.map(&items, work).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_policies, bench_pool_scaling);
criterion_main!(benches);
