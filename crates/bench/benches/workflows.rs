//! End-to-end workflow benches: the cost of an initial census iteration vs
//! a PPR-change iteration under each materialization policy — the
//! per-iteration contrast behind Figures 5/9 — plus the OMP-heuristic
//! ablation (Algorithm 2 vs the exact exponential solver on a small DAG).

use criterion::{criterion_group, criterion_main, Criterion};
use helix_core::{MatStrategy, Session, SessionConfig};
use helix_workloads::{CensusWorkload, ChangeKind, Workload};
use std::hint::black_box;

fn bench_census_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("census_iteration");
    group.sample_size(10);

    group.bench_function("initial_opt", |b| {
        b.iter(|| {
            let mut session = Session::new(SessionConfig::in_memory()).unwrap();
            let wl = CensusWorkload::small();
            black_box(session.run(&wl.build()).unwrap().metrics.total_nanos())
        })
    });

    for (label, strategy) in [
        ("ppr_rerun_opt", MatStrategy::Opt),
        ("ppr_rerun_am", MatStrategy::Always),
        ("ppr_rerun_nm", MatStrategy::Never),
    ] {
        group.bench_function(label, |b| {
            // Setup outside the timing loop: iteration 0 populates the
            // catalog; we measure the PPR-change iteration only.
            b.iter_batched(
                || {
                    let mut session =
                        Session::new(SessionConfig::in_memory().with_strategy(strategy)).unwrap();
                    let mut wl = CensusWorkload::small();
                    session.run(&wl.build()).unwrap();
                    wl.apply_change(ChangeKind::Ppr);
                    (session, wl)
                },
                |(mut session, wl)| {
                    black_box(session.run(&wl.build()).unwrap().metrics.total_nanos())
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_omp_heuristic_vs_exact(c: &mut Criterion) {
    use helix_core::materialize::{exact_omp, streaming_omp_choices};
    use helix_flow::{Dag, NodeId};

    // The paper's §5.3 pathological chain at n = 10.
    let n = 10usize;
    let mut dag: Dag<()> = Dag::new();
    let ids: Vec<NodeId> = (0..n).map(|_| dag.add_node(())).collect();
    for w in ids.windows(2) {
        dag.add_edge(w[0], w[1]).unwrap();
    }
    let compute: Vec<u64> = vec![3_000; n];
    let loads: Vec<u64> = (1..=n as u64).map(|i| i * 1_000).collect();
    let sizes: Vec<u64> = (1..=n as u64).collect();
    let executed = vec![true; n];
    let outputs: Vec<bool> = (0..n).map(|i| i == n - 1).collect();

    c.bench_function("omp_streaming_chain10", |b| {
        b.iter(|| {
            black_box(streaming_omp_choices(
                &dag,
                MatStrategy::Opt,
                &compute,
                &loads,
                &sizes,
                &executed,
                u64::MAX,
            ))
        })
    });
    c.bench_function("omp_exact_chain10", |b| {
        b.iter(|| black_box(exact_omp(&dag, &compute, &loads, &sizes, &outputs, u64::MAX)))
    });
}

criterion_group!(benches, bench_census_iterations, bench_omp_heuristic_vs_exact);
criterion_main!(benches);
