//! Experiment implementations, one per paper table/figure.

use helix_common::timing::Nanos;
use helix_common::Result;
use helix_core::{IterationReport, MatStrategy, Session, SessionConfig};
use helix_exec::IterationMetrics;
use helix_storage::DiskProfile;
use helix_workloads::{
    run_iterations, CensusWorkload, ChangeKind, GenomicsWorkload, IeWorkload, MnistWorkload,
    Workload,
};
use serde::Serialize;

/// The systems compared in Figure 5 (paper §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SystemKind {
    /// HELIX OPT: max-flow reuse + Algorithm 2 materialization.
    HelixOpt,
    /// HELIX AM: always materialize.
    HelixAm,
    /// HELIX NM: never materialize.
    HelixNm,
    /// KeystoneML-like: one-shot, no cross-iteration reuse.
    KeystoneMl,
    /// DeepDive-like: materialize everything, reuse DPR only.
    DeepDive,
}

impl SystemKind {
    /// Display label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::HelixOpt => "Helix Opt",
            SystemKind::HelixAm => "Helix AM",
            SystemKind::HelixNm => "Helix NM",
            SystemKind::KeystoneMl => "KeystoneML",
            SystemKind::DeepDive => "DeepDive",
        }
    }

    fn session_config(self, base: &ExperimentConfig) -> SessionConfig {
        let cfg = match self {
            SystemKind::HelixOpt => SessionConfig::in_memory(),
            SystemKind::HelixAm => SessionConfig::in_memory().with_strategy(MatStrategy::Always),
            SystemKind::HelixNm => SessionConfig::in_memory().with_strategy(MatStrategy::Never),
            SystemKind::KeystoneMl => SessionConfig::keystoneml_like(),
            SystemKind::DeepDive => SessionConfig::deepdive_like(),
        };
        cfg.with_disk(base.disk)
            .with_budget(base.storage_budget_bytes)
            .with_workers(base.workers)
            .with_seed(base.seed)
    }
}

/// Shared experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Emulated disk. Default: the paper's evaluation hardware (§6.3,
    /// 170 MB/s HDD + seek). Workload defaults are sized so compute
    /// dominates I/O at this bandwidth, matching the paper's regime (see
    /// DESIGN.md §3.4).
    pub disk: DiskProfile,
    /// Storage budget (paper: 10 GB for their data scale).
    pub storage_budget_bytes: u64,
    /// Worker-pool width.
    pub workers: usize,
    /// Master seed.
    pub seed: u64,
    /// Scale factor ≤ 1.0 shrinks workloads for quick smoke runs.
    pub quick: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            disk: DiskProfile::paper_hdd(),
            storage_budget_bytes: 512 << 20,
            workers: 1,
            seed: 42,
            quick: false,
        }
    }
}

impl ExperimentConfig {
    /// Small workloads for CI / smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig { quick: true, ..Default::default() }
    }
}

/// One system's trajectory over a workload's iterations.
#[derive(Clone, Debug, Serialize)]
pub struct SystemRun {
    /// Which system.
    pub system: SystemKind,
    /// Per-iteration total nanoseconds.
    pub iteration_nanos: Vec<Nanos>,
    /// Cumulative nanoseconds (the Fig 5 y-axis).
    pub cumulative_nanos: Vec<Nanos>,
    /// Per-iteration `(DPR, L/I, PPR, materialization)` nanoseconds (Fig 6).
    pub breakdown: Vec<(Nanos, Nanos, Nanos, Nanos)>,
    /// Per-iteration `(computed, loaded, pruned)` node counts (Fig 8).
    pub states: Vec<(usize, usize, usize)>,
    /// Per-iteration catalog footprint in bytes (Fig 9c/d).
    pub storage_bytes: Vec<u64>,
    /// Per-iteration `(peak, avg)` memory in bytes (Fig 10).
    pub memory_bytes: Vec<(u64, u64)>,
}

fn record_run(system: SystemKind, history: &[IterationMetrics]) -> SystemRun {
    let iteration_nanos: Vec<Nanos> = history.iter().map(|m| m.total_nanos()).collect();
    let mut acc = 0;
    let cumulative_nanos = iteration_nanos
        .iter()
        .map(|n| {
            acc += n;
            acc
        })
        .collect();
    SystemRun {
        system,
        iteration_nanos,
        cumulative_nanos,
        breakdown: history
            .iter()
            .map(|m| (m.dpr_nanos, m.li_nanos, m.ppr_nanos, m.materialize_nanos))
            .collect(),
        states: history.iter().map(|m| (m.computed, m.loaded, m.pruned)).collect(),
        storage_bytes: history.iter().map(|m| m.storage_bytes).collect(),
        memory_bytes: history.iter().map(|m| (m.peak_memory_bytes, m.avg_memory_bytes)).collect(),
    }
}

/// A workload factory the harness can instantiate fresh per system (every
/// system must see the identical modification sequence).
pub enum AnyWorkload {
    /// Census (social sciences).
    Census(CensusWorkload),
    /// Genomics (natural sciences).
    Genomics(GenomicsWorkload),
    /// Information extraction (NLP).
    Ie(IeWorkload),
    /// MNIST (computer vision).
    Mnist(MnistWorkload),
}

impl AnyWorkload {
    /// Workflow name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyWorkload::Census(w) => w.name(),
            AnyWorkload::Genomics(w) => w.name(),
            AnyWorkload::Ie(w) => w.name(),
            AnyWorkload::Mnist(w) => w.name(),
        }
    }

    /// Frozen change schedule.
    pub fn sequence(&self) -> Vec<ChangeKind> {
        match self {
            AnyWorkload::Census(w) => w.scripted_sequence(),
            AnyWorkload::Genomics(w) => w.scripted_sequence(),
            AnyWorkload::Ie(w) => w.scripted_sequence(),
            AnyWorkload::Mnist(w) => w.scripted_sequence(),
        }
    }

    fn run(
        &mut self,
        session: &mut Session,
        changes: &[ChangeKind],
    ) -> Result<Vec<IterationReport>> {
        match self {
            AnyWorkload::Census(w) => run_iterations(session, w, changes),
            AnyWorkload::Genomics(w) => run_iterations(session, w, changes),
            AnyWorkload::Ie(w) => run_iterations(session, w, changes),
            AnyWorkload::Mnist(w) => run_iterations(session, w, changes),
        }
    }
}

/// The four paper workloads at experiment scale.
pub fn paper_workloads(cfg: &ExperimentConfig) -> Vec<AnyWorkload> {
    if cfg.quick {
        vec![
            AnyWorkload::Census(CensusWorkload::small()),
            AnyWorkload::Genomics(GenomicsWorkload::small()),
            AnyWorkload::Ie(IeWorkload::small()),
            AnyWorkload::Mnist(MnistWorkload::small()),
        ]
    } else {
        vec![
            AnyWorkload::Census(CensusWorkload::default()),
            AnyWorkload::Genomics(GenomicsWorkload::default()),
            AnyWorkload::Ie(IeWorkload::default()),
            AnyWorkload::Mnist(MnistWorkload::default()),
        ]
    }
}

/// Which systems support which workload (paper Table 2: grey cells).
pub fn supported(system: SystemKind, workload: &str) -> bool {
    match system {
        SystemKind::KeystoneMl => workload != "ie",
        // DeepDive cannot express custom models (genomics, mnist).
        SystemKind::DeepDive => workload == "census" || workload == "ie",
        _ => true,
    }
}

/// Execute one (workload, system) pair over the scripted sequence.
pub fn run_system(
    make: impl Fn() -> AnyWorkload,
    system: SystemKind,
    cfg: &ExperimentConfig,
) -> Result<SystemRun> {
    let mut workload = make();
    let changes = workload.sequence();
    let mut session = Session::new(system.session_config(cfg))?;
    workload.run(&mut session, &changes)?;
    Ok(record_run(system, session.history()))
}

/// Figure 5 + Figure 6: all workloads × all applicable systems.
#[derive(Serialize)]
pub struct Fig5 {
    /// Per-workload: name, change schedule labels, system trajectories.
    pub workloads: Vec<(String, Vec<&'static str>, Vec<SystemRun>)>,
}

/// Run Figures 5/6's underlying experiment.
pub fn fig5_fig6(cfg: &ExperimentConfig) -> Result<Fig5> {
    let mut out = Vec::new();
    for idx in 0..4 {
        let make = || {
            let mut v = paper_workloads(cfg);
            v.swap_remove(idx)
        };
        let probe = make();
        let name = probe.name().to_string();
        let schedule: Vec<&'static str> = probe.sequence().iter().map(|c| c.label()).collect();
        let mut runs = Vec::new();
        for system in [SystemKind::HelixOpt, SystemKind::KeystoneMl, SystemKind::DeepDive] {
            if !supported(system, &name) {
                continue;
            }
            runs.push(run_system(make, system, cfg)?);
        }
        out.push((name, schedule, runs));
    }
    Ok(Fig5 { workloads: out })
}

/// Figure 7(a): Census vs Census 10× on a single node, HELIX vs
/// KeystoneML-like.
#[derive(Serialize)]
pub struct Fig7a {
    /// (label, system runs) for 1× and 10×.
    pub runs: Vec<(String, Vec<SystemRun>)>,
}

/// Run Figure 7(a).
pub fn fig7a(cfg: &ExperimentConfig) -> Result<Fig7a> {
    let factor = if cfg.quick { 3 } else { 10 };
    let mut out = Vec::new();
    for (label, scale) in
        [("census", 1), (if cfg.quick { "census 3x" } else { "census 10x" }, factor)]
    {
        let make = || {
            let base = if cfg.quick { CensusWorkload::small() } else { CensusWorkload::default() };
            AnyWorkload::Census(base.scaled(scale))
        };
        let mut runs = Vec::new();
        for system in [SystemKind::HelixOpt, SystemKind::KeystoneMl] {
            runs.push(run_system(make, system, cfg)?);
        }
        out.push((label.to_string(), runs));
    }
    Ok(Fig7a { runs: out })
}

/// Figure 7(b): Census 10× across worker counts.
#[derive(Serialize)]
pub struct Fig7b {
    /// (workers, system runs).
    pub runs: Vec<(usize, Vec<SystemRun>)>,
}

/// Run Figure 7(b).
pub fn fig7b(cfg: &ExperimentConfig) -> Result<Fig7b> {
    let factor = if cfg.quick { 3 } else { 10 };
    let mut out = Vec::new();
    for workers in [2usize, 4, 8] {
        let cfg = ExperimentConfig { workers, ..*cfg };
        let make = || {
            let base = if cfg.quick { CensusWorkload::small() } else { CensusWorkload::default() };
            AnyWorkload::Census(base.scaled(factor))
        };
        let mut runs = Vec::new();
        for system in [SystemKind::HelixOpt, SystemKind::KeystoneMl] {
            runs.push(run_system(make, system, &cfg)?);
        }
        out.push((workers, runs));
    }
    Ok(Fig7b { runs: out })
}

/// Figure 8: state fractions for Census and Genomics, OPT vs AM.
#[derive(Serialize)]
pub struct Fig8 {
    /// (workload, system runs with per-iteration state counts).
    pub runs: Vec<(String, Vec<SystemRun>)>,
}

/// Run Figure 8.
pub fn fig8(cfg: &ExperimentConfig) -> Result<Fig8> {
    let mut out = Vec::new();
    for idx in [0usize, 1] {
        let make = || {
            let mut v = paper_workloads(cfg);
            v.swap_remove(idx)
        };
        let name = make().name().to_string();
        let mut runs = Vec::new();
        for system in [SystemKind::HelixOpt, SystemKind::HelixAm] {
            runs.push(run_system(make, system, cfg)?);
        }
        out.push((name, runs));
    }
    Ok(Fig8 { runs: out })
}

/// Figure 9: OPT vs AM vs NM (cumulative time for all workloads; storage
/// for census + genomics).
#[derive(Serialize)]
pub struct Fig9 {
    /// (workload, system runs).
    pub runs: Vec<(String, Vec<SystemRun>)>,
}

/// Run Figure 9. AM is skipped for NLP/MNIST in the paper because it never
/// finished ("did not complete within 50× the time"); we *do* run it and
/// let the numbers show the blowup.
pub fn fig9(cfg: &ExperimentConfig) -> Result<Fig9> {
    let mut out = Vec::new();
    for idx in 0..4 {
        let make = || {
            let mut v = paper_workloads(cfg);
            v.swap_remove(idx)
        };
        let name = make().name().to_string();
        let mut runs = Vec::new();
        for system in [SystemKind::HelixOpt, SystemKind::HelixAm, SystemKind::HelixNm] {
            runs.push(run_system(make, system, cfg)?);
        }
        out.push((name, runs));
    }
    Ok(Fig9 { runs: out })
}

/// Figure 10: per-iteration peak/average memory under HELIX OPT.
#[derive(Serialize)]
pub struct Fig10 {
    /// (workload, OPT run with memory series).
    pub runs: Vec<(String, SystemRun)>,
}

/// Run Figure 10.
pub fn fig10(cfg: &ExperimentConfig) -> Result<Fig10> {
    let mut out = Vec::new();
    for idx in 0..4 {
        let make = || {
            let mut v = paper_workloads(cfg);
            v.swap_remove(idx)
        };
        let name = make().name().to_string();
        out.push((name, run_system(make, SystemKind::HelixOpt, cfg)?));
    }
    Ok(Fig10 { runs: out })
}

/// Table 1: the scikit-learn operation → basis function mapping (static
/// documentation table; the DSL-level equivalence is asserted by
/// `tests/table1_coverage.rs`).
pub fn table1() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fit(X[, y])", "learning (D -> f)"),
        ("predict_proba(X)", "inference ((D, f) -> Y)"),
        ("predict(X)", "inference, optionally followed by transformation"),
        ("fit_predict(X[, y])", "learning, then inference"),
        ("transform(X)", "transformation or inference (learned via prior fit)"),
        ("fit_transform(X)", "learning, then inference"),
        ("eval: score(y_true, y_pred)", "join truth and predictions, then reduce"),
        ("eval: score(op, X, y)", "inference, then join, then reduce"),
        ("selection: fit(p1..pn)", "reduce over learning + inference + reduce"),
    ]
}

/// Table 2 rows: workflow characteristics + support matrix.
pub fn table2() -> Vec<[&'static str; 5]> {
    vec![
        ["", "Census", "Genomics", "IE", "MNIST"],
        ["Num. data sources", "Single", "Multiple", "Multiple", "Single"],
        ["Input to example", "One-to-One", "One-to-Many", "One-to-Many", "One-to-One"],
        ["Feature granularity", "Fine", "N/A", "Fine", "Coarse"],
        ["Learning task", "Classification", "Unsupervised", "Structured pred.", "Classification"],
        ["Domain", "Social sci.", "Natural sci.", "NLP", "Computer vision"],
        ["Helix", "yes", "yes", "yes", "yes"],
        ["KeystoneML-like", "yes", "yes", "no", "yes"],
        ["DeepDive-like", "yes", "no", "yes", "no"],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        // Unthrottled disk keeps the smoke tests fast; figure shapes are
        // asserted loosely.
        ExperimentConfig { disk: DiskProfile::unthrottled(), ..ExperimentConfig::quick() }
    }

    #[test]
    fn support_matrix_matches_table2() {
        assert!(supported(SystemKind::HelixOpt, "ie"));
        assert!(!supported(SystemKind::KeystoneMl, "ie"));
        assert!(!supported(SystemKind::DeepDive, "mnist"));
        assert!(!supported(SystemKind::DeepDive, "genomics"));
        assert!(supported(SystemKind::DeepDive, "census"));
    }

    #[test]
    fn census_helix_beats_keystoneml_cumulatively() {
        let cfg = quick_cfg();
        let make = || AnyWorkload::Census(CensusWorkload::small());
        let helix = run_system(make, SystemKind::HelixOpt, &cfg).unwrap();
        let keystone = run_system(make, SystemKind::KeystoneMl, &cfg).unwrap();
        assert_eq!(helix.cumulative_nanos.len(), 10);
        let h = *helix.cumulative_nanos.last().unwrap();
        let k = *keystone.cumulative_nanos.last().unwrap();
        assert!(h < k, "Helix ({h}) must beat no-reuse KeystoneML ({k}) over ten iterations");
    }

    #[test]
    fn ie_helix_reuses_after_iteration_zero() {
        let cfg = quick_cfg();
        let make = || AnyWorkload::Ie(IeWorkload::small());
        let run = run_system(make, SystemKind::HelixOpt, &cfg).unwrap();
        // Later DPR-only iterations must be cheaper than iteration 0
        // because the parse is reused (Fig 5c shape).
        let first = run.iteration_nanos[0];
        for (i, n) in run.iteration_nanos.iter().enumerate().skip(1) {
            assert!(n < &first, "iteration {i} ({n}) should undercut iteration 0 ({first})");
        }
    }

    #[test]
    fn table_shapes() {
        assert_eq!(table1().len(), 9);
        assert_eq!(table2()[0].len(), 5);
        assert_eq!(table2().len(), 9);
    }
}
