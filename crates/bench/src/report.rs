//! ASCII rendering of experiment results in the paper's figure layouts.

use crate::experiments::{Fig10, Fig5, Fig7a, Fig7b, Fig8, Fig9, SystemRun};
use helix_common::fmt::{human_bytes, human_nanos, pad_left, pad_right};

fn cumulative_table(title: &str, schedule: &[&'static str], runs: &[SystemRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} — cumulative run time ==\n"));
    out.push_str(&pad_right("iter", 6));
    out.push_str(&pad_right("change", 8));
    for run in runs {
        out.push_str(&pad_left(run.system.label(), 14));
    }
    out.push('\n');
    let iterations = runs.first().map_or(0, |r| r.cumulative_nanos.len());
    for i in 0..iterations {
        out.push_str(&pad_right(&i.to_string(), 6));
        let change = if i == 0 { "init" } else { schedule.get(i - 1).copied().unwrap_or("?") };
        out.push_str(&pad_right(change, 8));
        for run in runs {
            out.push_str(&pad_left(&human_nanos(run.cumulative_nanos[i]), 14));
        }
        out.push('\n');
    }
    if let Some(helix) = runs.first() {
        for other in &runs[1..] {
            let h = *helix.cumulative_nanos.last().unwrap_or(&1) as f64;
            let o = *other.cumulative_nanos.last().unwrap_or(&1) as f64;
            out.push_str(&format!(
                "   {} / {} = {:.1}x\n",
                other.system.label(),
                helix.system.label(),
                o / h.max(1.0)
            ));
        }
    }
    out
}

/// Render Figure 5 (cumulative run time, all systems).
pub fn render_fig5(fig: &Fig5) -> String {
    let mut out =
        String::from("\n################ Figure 5: cumulative run time ################\n");
    for (name, schedule, runs) in &fig.workloads {
        out.push_str(&cumulative_table(name, schedule, runs));
    }
    out
}

/// Render Figure 6 (per-iteration component breakdown for HELIX OPT).
pub fn render_fig6(fig: &Fig5) -> String {
    let mut out = String::from(
        "\n################ Figure 6: Helix per-iteration breakdown ################\n",
    );
    for (name, schedule, runs) in &fig.workloads {
        let Some(helix) =
            runs.iter().find(|r| matches!(r.system, crate::experiments::SystemKind::HelixOpt))
        else {
            continue;
        };
        out.push_str(&format!("\n== {name} ==\n"));
        out.push_str(&format!(
            "{}{}{}{}{}{}\n",
            pad_right("iter", 6),
            pad_right("change", 8),
            pad_left("DPR", 12),
            pad_left("L/I", 12),
            pad_left("PPR", 12),
            pad_left("Mat.", 12),
        ));
        for (i, (dpr, li, ppr, mat)) in helix.breakdown.iter().enumerate() {
            let change = if i == 0 { "init" } else { schedule.get(i - 1).copied().unwrap_or("?") };
            out.push_str(&format!(
                "{}{}{}{}{}{}\n",
                pad_right(&i.to_string(), 6),
                pad_right(change, 8),
                pad_left(&human_nanos(*dpr), 12),
                pad_left(&human_nanos(*li), 12),
                pad_left(&human_nanos(*ppr), 12),
                pad_left(&human_nanos(*mat), 12),
            ));
        }
    }
    out
}

/// Render Figure 7(a): dataset-size scaling.
pub fn render_fig7a(fig: &Fig7a) -> String {
    let mut out =
        String::from("\n################ Figure 7a: dataset-size scaling ################\n");
    for (label, runs) in &fig.runs {
        out.push_str(&format!("\n-- {label} --\n"));
        for run in runs {
            out.push_str(&format!(
                "  {}: total {}\n",
                run.system.label(),
                human_nanos(*run.cumulative_nanos.last().unwrap_or(&0))
            ));
        }
    }
    out
}

/// Render Figure 7(b): worker scaling.
pub fn render_fig7b(fig: &Fig7b) -> String {
    let mut out =
        String::from("\n################ Figure 7b: cluster-size scaling ################\n");
    for (workers, runs) in &fig.runs {
        out.push_str(&format!("\n-- {workers} workers --\n"));
        for run in runs {
            out.push_str(&format!(
                "  {}: total {}\n",
                run.system.label(),
                human_nanos(*run.cumulative_nanos.last().unwrap_or(&0))
            ));
        }
    }
    out
}

/// Render Figure 8: S_c/S_l/S_p fractions per iteration.
pub fn render_fig8(fig: &Fig8) -> String {
    let mut out = String::from(
        "\n################ Figure 8: node-state fractions (Sc/Sl/Sp) ################\n",
    );
    for (name, runs) in &fig.runs {
        for run in runs {
            out.push_str(&format!("\n-- {name} / {} --\n", run.system.label()));
            for (i, (c, l, p)) in run.states.iter().enumerate() {
                let total = (c + l + p).max(1) as f64;
                out.push_str(&format!(
                    "  iter {i}: Sc {:.2}  Sl {:.2}  Sp {:.2}\n",
                    *c as f64 / total,
                    *l as f64 / total,
                    *p as f64 / total,
                ));
            }
        }
    }
    out
}

/// Render Figure 9: OPT vs AM vs NM, with storage for census/genomics.
pub fn render_fig9(fig: &Fig9) -> String {
    let mut out =
        String::from("\n################ Figure 9: materialization policies ################\n");
    for (name, runs) in &fig.runs {
        out.push_str(&format!("\n== {name} — cumulative time ==\n"));
        for run in runs {
            out.push_str(&format!(
                "  {}: total {}\n",
                run.system.label(),
                human_nanos(*run.cumulative_nanos.last().unwrap_or(&0))
            ));
        }
        if name == "census" || name == "genomics" {
            out.push_str("  storage per iteration:\n");
            for run in runs {
                let series: Vec<String> =
                    run.storage_bytes.iter().map(|b| human_bytes(*b)).collect();
                out.push_str(&format!("    {}: [{}]\n", run.system.label(), series.join(", ")));
            }
        }
    }
    out
}

/// Render Figure 10: memory per iteration.
pub fn render_fig10(fig: &Fig10) -> String {
    let mut out = String::from("\n################ Figure 10: peak/avg memory ################\n");
    for (name, run) in &fig.runs {
        out.push_str(&format!("\n-- {name} --\n"));
        for (i, (peak, avg)) in run.memory_bytes.iter().enumerate() {
            out.push_str(&format!(
                "  iter {i}: peak {} avg {}\n",
                human_bytes(*peak),
                human_bytes(*avg)
            ));
        }
    }
    out
}

/// Render Table 1.
pub fn render_table1() -> String {
    let mut out = String::from(
        "\n################ Table 1: scikit-learn coverage by basis functions F ################\n",
    );
    for (sk, basis) in crate::experiments::table1() {
        out.push_str(&format!("  {}  ->  {}\n", pad_right(sk, 28), basis));
    }
    out
}

/// Render Table 2.
pub fn render_table2() -> String {
    let mut out = String::from(
        "\n################ Table 2: workflow characteristics & support ################\n",
    );
    for row in crate::experiments::table2() {
        for cell in row {
            out.push_str(&pad_right(cell, 20));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SystemKind;

    fn dummy_run() -> SystemRun {
        SystemRun {
            system: SystemKind::HelixOpt,
            iteration_nanos: vec![100, 50],
            cumulative_nanos: vec![100, 150],
            breakdown: vec![(50, 30, 20, 0), (10, 20, 20, 0)],
            states: vec![(3, 0, 0), (1, 1, 1)],
            storage_bytes: vec![1024, 2048],
            memory_bytes: vec![(4096, 2048), (1024, 512)],
        }
    }

    #[test]
    fn renderers_produce_output() {
        let fig5 = Fig5 { workloads: vec![("census".into(), vec!["PPR"], vec![dummy_run()])] };
        let text = render_fig5(&fig5);
        assert!(text.contains("census"));
        assert!(text.contains("Helix Opt"));
        let text6 = render_fig6(&fig5);
        assert!(text6.contains("DPR"));
        assert!(render_table1().contains("fit_transform"));
        assert!(render_table2().contains("KeystoneML"));
    }

    #[test]
    fn fig8_fractions_render() {
        let fig = Fig8 { runs: vec![("census".into(), vec![dummy_run()])] };
        let text = render_fig8(&fig);
        assert!(text.contains("Sc 0.33"), "{text}");
    }
}
