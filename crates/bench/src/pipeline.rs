//! The cross-iteration pipelining bench: serial engine vs the pipelined
//! iteration runtime (speculative planning + prefetched loads +
//! background materialization writes) on the census and genomics iterate
//! workloads.
//!
//! Each workload runs the same scripted sequence twice — a fresh session
//! with `pipeline(false)` (the strictly serial reference) and a fresh
//! session driven through `Session::run_pipelined` — on a throttled disk
//! profile so the load/write I/O the lanes are supposed to hide is
//! actually there to hide (unthrottled NVMe would mask the effect, same
//! reason the paper's experiments model a 170 MB/s disk). The driver
//! asserts byte-identical outputs and identical final catalogs, and
//! reports per-workload speedup plus the **overlap ratio**: the fraction
//! of the serial run's I/O time (Σ load + Σ materialize) that pipelining
//! removed from the wall clock,
//! `(serial_wall − pipelined_wall) / serial_io`.
//!
//! The `pipeline` binary emits `BENCH_pipeline.json`; CI smokes it with
//! `--check` alongside `multi_tenant`.

use helix_common::timing::Nanos;
use helix_common::{HelixError, Result};
use helix_core::{Session, SessionConfig, Workflow};
use helix_obs::{layer, now_nanos, span_at, Registry, RegistrySnapshot};
use helix_storage::{encode_value, DiskProfile};
use helix_workloads::{CensusWorkload, GenomicsWorkload, Workload};
use serde::Serialize;
use std::time::Instant;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct PipelineBenchConfig {
    /// Iterations per workload (initial + alternating rerun/change).
    pub iterations: usize,
    /// Worker ceiling per session.
    pub workers: usize,
    /// Disk profile (throttled by default so I/O overlap is visible).
    pub disk: DiskProfile,
    /// Session seed.
    pub seed: u64,
}

impl PipelineBenchConfig {
    /// The default configuration: 6 iterations, 4 workers, and a disk
    /// scaled so I/O is a first-class fraction of iteration time on our
    /// small synthetic datasets — the same reason the paper's evaluation
    /// models a 170 MB/s HDD instead of trusting NVMe to keep the
    /// load/compute trade-off visible (§6.3).
    pub fn default_run() -> PipelineBenchConfig {
        PipelineBenchConfig {
            iterations: 6,
            workers: 4,
            disk: DiskProfile::scaled(2_000_000, 400_000),
            seed: 42,
        }
    }

    /// A smaller configuration for CI smoke runs.
    pub fn smoke() -> PipelineBenchConfig {
        PipelineBenchConfig { iterations: 4, ..Self::default_run() }
    }
}

/// One workload's measured comparison.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadComparison {
    /// Workload label.
    pub workload: &'static str,
    /// Iterations run.
    pub iterations: usize,
    /// Serial-reference wall clock (ms).
    pub serial_ms: f64,
    /// Pipelined wall clock, including the final write drain (ms).
    pub pipelined_ms: f64,
    /// serial / pipelined.
    pub speedup: f64,
    /// Serial run's total I/O (Σ per-load time + Σ materialize time, ms).
    pub serial_io_ms: f64,
    /// Fraction of that I/O the pipelined run hid (clamped to [0, 1]).
    pub overlap_ratio: f64,
    /// Speculative plans adopted / discarded by the pipelined session.
    pub spec_hits: u64,
    /// Discarded speculative plans.
    pub spec_misses: u64,
}

/// The whole bench report (serialized to `BENCH_pipeline.json`).
#[derive(Clone, Debug, Serialize)]
pub struct PipelineBenchReport {
    /// Per-workload comparisons.
    pub workloads: Vec<WorkloadComparison>,
    /// Wall-clock speedup over both workloads combined.
    pub combined_speedup: f64,
    /// Worker ceiling used.
    pub workers: usize,
    /// Iterations per workload.
    pub iterations: usize,
    /// Timing aggregation: per-iteration serial latencies, per-workload
    /// walls, and speculation counters, with log-bucketed p50/p95/p99
    /// summaries (`helix_obs::Registry`).
    pub metrics: RegistrySnapshot,
}

impl PipelineBenchReport {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipelined iteration runtime: {} iterations/workload, {} workers\n",
            self.iterations, self.workers
        ));
        for w in &self.workloads {
            out.push_str(&format!(
                "  {:>9}  serial {:>9.2} ms  pipelined {:>9.2} ms  speedup {:>5.2}x  \
                 io {:>9.2} ms  overlap {:>5.1}%  spec {}/{}\n",
                w.workload,
                w.serial_ms,
                w.pipelined_ms,
                w.speedup,
                w.serial_io_ms,
                w.overlap_ratio * 100.0,
                w.spec_hits,
                w.spec_hits + w.spec_misses,
            ));
        }
        out.push_str(&format!("  combined speedup {:.2}x\n", self.combined_speedup));
        out
    }
}

/// The scripted workflow sequence: initial build, then alternating
/// identical reruns (reuse-heavy: the prefetch lane's terrain) and
/// scripted changes (compute + materialize: the write lane's terrain).
fn sequence(mut workload: Box<dyn Workload>, iterations: usize) -> Vec<Workflow> {
    let changes = workload.scripted_sequence();
    let mut wfs = vec![workload.build()];
    let mut change_ix = 0;
    for t in 1..iterations {
        if t % 2 == 0 {
            workload.apply_change(changes[change_ix % changes.len()]);
            change_ix += 1;
        }
        wfs.push(workload.build());
    }
    wfs
}

/// Encoded outputs of one iteration, name-ordered — the byte-identity
/// fingerprint.
fn fingerprint(report: &helix_core::IterationReport) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> =
        report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn compare_one(
    label: &'static str,
    make: &dyn Fn() -> Box<dyn Workload>,
    config: &PipelineBenchConfig,
    registry: &Registry,
) -> Result<WorkloadComparison> {
    let session_config = SessionConfig::in_memory()
        .with_workers(config.workers)
        .with_disk(config.disk)
        .with_seed(config.seed);

    // Serial reference.
    let wfs = sequence(make(), config.iterations);
    let mut serial = Session::new(session_config.clone().with_pipeline(false))?;
    let serial_iter_hist = registry.histogram("pipeline.serial_iteration_nanos");
    let serial_begin = now_nanos();
    let serial_started = Instant::now();
    let mut serial_fps = Vec::new();
    for wf in &wfs {
        let iter_started = Instant::now();
        serial_fps.push(fingerprint(&serial.run(wf)?));
        serial_iter_hist.record(iter_started.elapsed().as_nanos() as u64);
    }
    let serial_wall = serial_started.elapsed().as_nanos() as Nanos;
    let serial_io: Nanos =
        serial.history().iter().map(|m| m.load_cpu_nanos + m.materialize_nanos).sum();

    // Pipelined run (fresh session, fresh catalog, same seed/sequence).
    let wfs = sequence(make(), config.iterations);
    let mut pipelined = Session::new(session_config)?;
    let pipelined_begin = now_nanos();
    let pipelined_started = Instant::now();
    let reports = pipelined.run_pipelined(&wfs)?;
    pipelined.sync()?; // durability before the clock stops — fair vs inline writes
    let pipelined_wall = pipelined_started.elapsed().as_nanos() as Nanos;

    // Byte-identity is part of the bench contract, not a separate test.
    for (t, (serial_fp, report)) in serial_fps.iter().zip(&reports).enumerate() {
        if *serial_fp != fingerprint(report) {
            return Err(HelixError::exec(
                "pipeline-bench",
                format!("{label}: pipelined outputs diverged from serial at iteration {t}"),
            ));
        }
    }
    // Catalogs are compared modulo Algorithm 2's *elective* decisions:
    // those weigh measured node times against the disk model, so two
    // correct runs can legitimately disagree on them. Everything else
    // (mandatory materializations, evictions) must match exactly.
    let elective: std::collections::HashSet<String> = serial
        .elective_signatures()
        .into_iter()
        .chain(pipelined.elective_signatures())
        .map(|s| s.to_hex())
        .collect();
    let sigs_of = |session: &Session| -> Vec<String> {
        session
            .catalog()
            .entries()
            .iter()
            .map(|e| e.signature.clone())
            .filter(|s| !elective.contains(s))
            .collect()
    };
    let serial_sigs = sigs_of(&serial);
    let pipelined_sigs = sigs_of(&pipelined);
    if serial_sigs != pipelined_sigs {
        return Err(HelixError::exec(
            "pipeline-bench",
            format!("{label}: pipelined catalog diverged from serial"),
        ));
    }

    let (spec_hits, spec_misses) = pipelined.speculation_stats();
    let speedup = serial_wall as f64 / pipelined_wall.max(1) as f64;
    let hidden = serial_wall.saturating_sub(pipelined_wall) as f64;
    let overlap_ratio = (hidden / (serial_io.max(1) as f64)).clamp(0.0, 1.0);

    // Timing aggregation onto the shared registry...
    registry.histogram("pipeline.serial_wall_nanos").record(serial_wall);
    registry.histogram("pipeline.pipelined_wall_nanos").record(pipelined_wall);
    registry.counter("pipeline.spec_hits").add(spec_hits);
    registry.counter("pipeline.spec_misses").add(spec_misses);

    // ...and retrospective trace spans carrying the *exact* measured
    // nanos, so a trace consumer can re-derive the overlap ratio
    // `(serial.wall − pipelined.wall) / serial.io` from the exported
    // JSON alone (the inertness suite asserts this matches the report).
    let track = format!("bench-{label}");
    let _ = span_at(layer::BENCH, "serial.wall", serial_begin, serial_wall)
        .track(track.as_str())
        .amount(config.iterations as u64);
    let _ = span_at(layer::BENCH, "serial.io", serial_begin, serial_io).track(track.as_str());
    let _ = span_at(layer::BENCH, "pipelined.wall", pipelined_begin, pipelined_wall)
        .track(track.as_str())
        .amount(config.iterations as u64);

    Ok(WorkloadComparison {
        workload: label,
        iterations: config.iterations,
        serial_ms: serial_wall as f64 / 1e6,
        pipelined_ms: pipelined_wall as f64 / 1e6,
        speedup,
        serial_io_ms: serial_io as f64 / 1e6,
        overlap_ratio,
        spec_hits,
        spec_misses,
    })
}

/// Run the full comparison (census + genomics).
#[allow(clippy::type_complexity)]
pub fn run_pipeline_bench(config: &PipelineBenchConfig) -> Result<PipelineBenchReport> {
    let workloads: Vec<(&'static str, Box<dyn Fn() -> Box<dyn Workload>>)> = vec![
        ("census", Box::new(|| Box::new(CensusWorkload::small()) as Box<dyn Workload>)),
        ("genomics", Box::new(|| Box::new(GenomicsWorkload::small()) as Box<dyn Workload>)),
    ];
    let registry = Registry::new();
    let mut comparisons = Vec::new();
    for (label, make) in &workloads {
        comparisons.push(compare_one(label, make.as_ref(), config, &registry)?);
    }
    let serial_total: f64 = comparisons.iter().map(|c| c.serial_ms).sum();
    let pipelined_total: f64 = comparisons.iter().map(|c| c.pipelined_ms).sum();
    Ok(PipelineBenchReport {
        combined_speedup: serial_total / pipelined_total.max(f64::MIN_POSITIVE),
        workers: config.workers,
        iterations: config.iterations,
        workloads: comparisons,
        metrics: registry.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_byte_identical_and_reports_overlap() {
        // Byte-identity failures surface as Err from the driver itself.
        let config = PipelineBenchConfig {
            iterations: 3,
            workers: 2,
            disk: DiskProfile::scaled(20_000_000, 50_000),
            seed: 42,
        };
        let report = run_pipeline_bench(&config).unwrap();
        assert_eq!(report.workloads.len(), 2);
        for w in &report.workloads {
            assert!(w.serial_ms > 0.0 && w.pipelined_ms > 0.0);
            assert!((0.0..=1.0).contains(&w.overlap_ratio));
        }
        assert!(report.render().contains("combined speedup"));

        // The registry block rides along in the report: one serial
        // iteration sample per (workload, iteration) and one wall sample
        // per workload, each with quantile summaries.
        let iters = &report.metrics.histograms["pipeline.serial_iteration_nanos"];
        assert_eq!(iters.count, 2 * 3);
        assert!(iters.p50 >= iters.min && iters.p99 <= iters.max);
        assert_eq!(report.metrics.histograms["pipeline.serial_wall_nanos"].count, 2);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"histograms\"") && json.contains("pipeline.serial_wall_nanos"));
    }
}
