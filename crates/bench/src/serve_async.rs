//! Open-loop async-service stress driver.
//!
//! Replays an **open-loop** arrival process against one [`HelixService`]:
//! sessions arrive on a deterministic Poisson-like schedule (SplitMix64
//! exponential inter-arrivals, so the same seed replays the same
//! timeline), each submits its iterations through the non-blocking
//! [`JobTicket`] surface, and **no client thread ever blocks on a
//! ticket** while arrivals are still due — outcomes are swept with
//! [`JobTicket::try_outcome`] between submissions and drained with
//! [`JobTicket::wait_timeout`] at the end.
//!
//! This is the workload the pooled session runner exists for: thousands
//! of open sessions multiplexed over `min(cores, max_concurrent)` worker
//! threads plus one scheduler. The driver measures what that buys:
//!
//! * **latency distribution** (p50/p99 of admission-to-completion, split
//!   into queue wait and run time) under load the thread-per-job design
//!   could only absorb by spawning a thread per session;
//! * **SLO burn**: the fraction of iterations whose latency exceeded the
//!   target — the open-loop health metric (closed-loop drivers hide
//!   overload by slowing the clients down);
//! * **thread ceiling**: peak OS thread count sampled over the run; the
//!   service contributes pool + scheduler threads *regardless of how
//!   many sessions are in flight* (`--check` fails otherwise);
//! * **parked high-water mark**: peak of the `serve.sessions_parked`
//!   gauge — how deep the session/core wait-sets actually got.
//!
//! Used by the `serve_async` binary (CI smoke-tests it at small N; the
//! `--sessions 10000` configuration is the acceptance run) and by the
//! runner stress suite as a workload generator.

use helix_common::timing::Nanos;
use helix_common::Result;
use helix_core::{SessionConfig, Workflow};
use helix_data::{Scalar, Value};
use helix_obs::{metrics, Registry, RegistrySnapshot};
use helix_serve::{HelixService, JobTicket, ServiceConfig, TenantSpec};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct ServeAsyncConfig {
    /// Open sessions (each submits `iterations_per_session` jobs).
    pub sessions: usize,
    /// Tenants the sessions are spread over, round-robin.
    pub tenants: usize,
    /// Core tokens in the shared budget (also the worker-pool size).
    pub cores: usize,
    /// Jobs each session submits over its lifetime.
    pub iterations_per_session: usize,
    /// Open-loop arrival rate, jobs per second. Arrivals that fall
    /// behind wall-clock are submitted immediately (the open-loop
    /// property: the client never slows down to match the service).
    pub arrival_rate: f64,
    /// Seed for the arrival schedule (and the sessions).
    pub seed: u64,
    /// Latency target for the SLO-burn metric.
    pub slo: Duration,
    /// Dominant-resource fair scheduling instead of FIFO-with-priority.
    pub fair: bool,
}

impl ServeAsyncConfig {
    /// A small configuration suitable for CI smoke runs.
    pub fn smoke() -> ServeAsyncConfig {
        ServeAsyncConfig {
            sessions: 64,
            tenants: 8,
            cores: 4,
            iterations_per_session: 1,
            arrival_rate: 2000.0,
            seed: 42,
            slo: Duration::from_millis(250),
            fair: false,
        }
    }
}

/// SplitMix64 step — the deterministic arrival clock's entropy source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential inter-arrival draw: `-ln(U)/rate`, `U` uniform in (0,1).
fn exp_interarrival(state: &mut u64, rate_per_sec: f64) -> Duration {
    let u = ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    Duration::from_secs_f64(-u.ln() / rate_per_sec.max(1e-9))
}

/// Live OS threads of this process (Linux); 0 where unsupported.
pub fn os_thread_count() -> usize {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_dir("/proc/self/task").map(|dir| dir.count()).unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The per-session workflow: a tiny three-node arithmetic chain in one
/// of eight variants, so consecutive sessions share full signature
/// prefixes (the steady state is load-dominated — queue and scheduling
/// costs dominate, which is exactly what this bench stresses).
fn stress_workflow(variant: u64) -> Workflow {
    let version = (variant % 8) + 1;
    let mut wf = Workflow::new("stress");
    let a = wf.source("a", 1, |_| Ok(Value::Scalar(Scalar::I64(10))));
    let b = wf.reduce("b", a, version, move |v, _| {
        let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
        Ok(Value::Scalar(Scalar::F64(x * version as f64)))
    });
    let c = wf.reduce("c", b, 1, |v, _| {
        let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
        Ok(Value::Scalar(Scalar::F64(x + 1.0)))
    });
    wf.output(c);
    wf
}

/// What one open-loop run measured.
#[derive(Clone, Debug, Serialize)]
pub struct ServeAsyncReport {
    /// Sessions opened.
    pub sessions: usize,
    /// Tenants they were spread over.
    pub tenants: usize,
    /// Core budget.
    pub cores: usize,
    /// Worker threads in the runner pool.
    pub pool_size: usize,
    /// Jobs per session.
    pub iterations_per_session: usize,
    /// Total jobs submitted.
    pub total_jobs: usize,
    /// Configured arrival rate (jobs/second).
    pub arrival_rate_per_sec: f64,
    /// Wall-clock of the whole run (arrivals + drain).
    pub wall_nanos: Nanos,
    /// Jobs that completed with an `Ok` report.
    pub completed: usize,
    /// Jobs that completed with an error.
    pub failed: usize,
    /// Jobs whose outcome never arrived inside the drain deadline.
    pub timed_out: usize,
    /// p50 of admission-to-completion latency.
    pub p50_latency_nanos: u64,
    /// p99 of admission-to-completion latency.
    pub p99_latency_nanos: u64,
    /// p99 of the queue-wait component alone.
    pub p99_queue_wait_nanos: u64,
    /// The SLO target.
    pub slo_nanos: u64,
    /// Jobs over the SLO target.
    pub slo_violations: usize,
    /// `slo_violations / total_jobs` — the open-loop burn rate.
    pub slo_burn: f64,
    /// Core-token high-water mark.
    pub peak_cores_leased: usize,
    /// Peak of the `serve.sessions_parked` gauge over the run.
    pub peak_sessions_parked: i64,
    /// OS threads before the service existed.
    pub baseline_threads: usize,
    /// Peak OS threads sampled during the run.
    pub peak_threads: usize,
    /// Scheduling policy label.
    pub scheduling: &'static str,
    /// Full latency/queue-wait/run histograms.
    pub metrics: RegistrySnapshot,
}

impl ServeAsyncReport {
    /// Jobs per second over the whole run.
    pub fn throughput(&self) -> f64 {
        self.total_jobs as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }

    /// Threads the service itself added at peak (pool + scheduler; the
    /// stress contract is that this never scales with session count).
    pub fn service_threads(&self) -> usize {
        self.peak_threads.saturating_sub(self.baseline_threads)
    }

    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve-async open loop: {} sessions / {} tenants, {} cores (pool {}), \
             {:.0} jobs/s arrivals, {} scheduling\n",
            self.sessions,
            self.tenants,
            self.cores,
            self.pool_size,
            self.arrival_rate_per_sec,
            self.scheduling,
        ));
        out.push_str(&format!(
            "  {} jobs in {:.2} ms  ({:.0} jobs/s)  completed {}  failed {}  timed out {}\n",
            self.total_jobs,
            self.wall_nanos as f64 / 1e6,
            self.throughput(),
            self.completed,
            self.failed,
            self.timed_out,
        ));
        out.push_str(&format!(
            "  latency p50 {:.2} ms  p99 {:.2} ms  (queue-wait p99 {:.2} ms)\n",
            self.p50_latency_nanos as f64 / 1e6,
            self.p99_latency_nanos as f64 / 1e6,
            self.p99_queue_wait_nanos as f64 / 1e6,
        ));
        out.push_str(&format!(
            "  SLO {:.0} ms: {} violations ({:.2}% burn)\n",
            self.slo_nanos as f64 / 1e6,
            self.slo_violations,
            self.slo_burn * 100.0,
        ));
        out.push_str(&format!(
            "  peak cores {}/{}  peak parked sessions {}  threads {} -> peak {} \
             (service added {})\n",
            self.peak_cores_leased,
            self.cores,
            self.peak_sessions_parked,
            self.baseline_threads,
            self.peak_threads,
            self.service_threads(),
        ));
        out
    }
}

/// Run the open-loop stress workload and assemble the report.
pub fn run_serve_async(config: &ServeAsyncConfig) -> Result<ServeAsyncReport> {
    let sessions = config.sessions.max(1);
    let tenants = config.tenants.max(1).min(sessions);
    let iterations = config.iterations_per_session.max(1);
    let total_jobs = sessions * iterations;

    let baseline_threads = os_thread_count();
    let mut service_config = ServiceConfig::new(config.cores)
        .with_seed(config.seed)
        // Open loop: the bounded queue must never push back on the
        // arrival clock, so it is sized to the whole job population.
        .with_queue_capacity(total_jobs.max(config.cores))
        .with_max_concurrent_iterations(config.cores);
    if config.fair {
        service_config = service_config.with_fair_share();
    }
    // Carve the global storage budget evenly so any tenant count fits
    // (the stress artifacts are tiny scalars; quota pressure is not
    // what this bench studies).
    let quota = service_config.storage_budget_bytes / tenants as u64;
    let service = HelixService::new(service_config)?;
    let pool_size = service.worker_pool_size();
    for t in 0..tenants {
        // Generous per-tenant concurrency: admission pressure should
        // come from the core budget, not an artificial tenant cap.
        service.register_tenant(
            &format!("tenant-{t}"),
            TenantSpec::default().with_quota(quota).with_max_concurrent(config.cores.max(1)),
        )?;
    }
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            // One worker, no pipelining: a session contributes zero
            // threads of its own — concurrency comes from the pool.
            service.open_session(
                &format!("tenant-{}", s % tenants),
                SessionConfig::in_memory().with_workers(1).with_pipeline(false),
            )
        })
        .collect::<Result<_>>()?;

    // Deterministic arrival timeline, fixed before the clock starts.
    let mut rng = config.seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    let mut at = Duration::ZERO;
    let mut arrivals = Vec::with_capacity(total_jobs);
    for _ in 0..total_jobs {
        at += exp_interarrival(&mut rng, config.arrival_rate);
        arrivals.push(at);
    }

    let parked_gauge = metrics::global().gauge("serve.sessions_parked");
    let mut peak_parked = 0i64;
    let mut peak_threads = baseline_threads;
    let mut pending: Vec<JobTicket> = Vec::with_capacity(total_jobs);
    let mut outcomes = Vec::with_capacity(total_jobs);
    let started = Instant::now();
    for (job, due) in arrivals.iter().enumerate() {
        // Sleep until the arrival is due; a late clock submits
        // immediately and never amortizes the backlog (open loop).
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let session = &handles[job % sessions];
        pending.push(session.submit(stress_workflow((job % sessions) as u64))?);
        if job % 32 == 0 {
            // Sweep finished tickets without blocking, and sample the
            // run's high-water marks while arrivals are still due.
            pending.retain(|ticket| match ticket.try_outcome() {
                Some(outcome) => {
                    outcomes.push(outcome);
                    false
                }
                None => true,
            });
            peak_parked = peak_parked.max(parked_gauge.get());
            peak_threads = peak_threads.max(os_thread_count());
        }
    }
    // Drain: everything is submitted; now (and only now) block, with a
    // deadline so a wedged service fails the run instead of hanging it.
    let mut timed_out = 0usize;
    for ticket in pending {
        match ticket.wait_timeout(Duration::from_secs(120)) {
            Some(outcome) => outcomes.push(outcome),
            None => timed_out += 1,
        }
        peak_parked = peak_parked.max(parked_gauge.get());
        peak_threads = peak_threads.max(os_thread_count());
    }
    let wall_nanos = started.elapsed().as_nanos() as Nanos;

    let registry = Registry::new();
    let latency_hist = registry.histogram("serve_async.latency_nanos");
    let queue_hist = registry.histogram("serve_async.queue_wait_nanos");
    let run_hist = registry.histogram("serve_async.run_nanos");
    let slo_nanos = config.slo.as_nanos() as u64;
    let (mut completed, mut failed, mut slo_violations) = (0usize, 0usize, 0usize);
    for outcome in &outcomes {
        let latency = outcome.queue_wait_nanos + outcome.run_nanos;
        latency_hist.record(latency);
        queue_hist.record(outcome.queue_wait_nanos);
        run_hist.record(outcome.run_nanos);
        if latency > slo_nanos {
            slo_violations += 1;
        }
        match &outcome.result {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }
    }
    // A job that never came back burned its SLO by definition.
    slo_violations += timed_out;

    let stats = service.stats();
    Ok(ServeAsyncReport {
        sessions,
        tenants,
        cores: config.cores,
        pool_size,
        iterations_per_session: iterations,
        total_jobs,
        arrival_rate_per_sec: config.arrival_rate,
        wall_nanos,
        completed,
        failed,
        timed_out,
        p50_latency_nanos: latency_hist.quantile(0.5).unwrap_or(0),
        p99_latency_nanos: latency_hist.quantile(0.99).unwrap_or(0),
        p99_queue_wait_nanos: queue_hist.quantile(0.99).unwrap_or(0),
        slo_nanos,
        slo_violations,
        slo_burn: slo_violations as f64 / total_jobs.max(1) as f64,
        peak_cores_leased: stats.peak_cores_leased,
        peak_sessions_parked: peak_parked,
        baseline_threads,
        peak_threads,
        scheduling: if config.fair { "fairshare" } else { "priority" },
        metrics: registry.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_deterministic_and_positive() {
        let draw = |seed: u64| {
            let mut rng = seed;
            (0..64).map(|_| exp_interarrival(&mut rng, 1000.0)).collect::<Vec<_>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same timeline");
        assert_ne!(a, draw(8), "different seed, different timeline");
        assert!(a.iter().all(|d| *d > Duration::ZERO));
        // Mean of exp(λ=1000/s) is 1ms; 64 draws land well inside 10x.
        let mean = a.iter().sum::<Duration>() / 64;
        assert!(mean > Duration::from_micros(100) && mean < Duration::from_millis(10));
    }

    #[test]
    fn smoke_open_loop_run_completes_every_job() {
        let config = ServeAsyncConfig {
            sessions: 24,
            tenants: 4,
            cores: 2,
            arrival_rate: 5000.0,
            ..ServeAsyncConfig::smoke()
        };
        let report = run_serve_async(&config).unwrap();
        assert_eq!(report.total_jobs, 24);
        assert_eq!(report.completed, 24, "every open-loop job completes");
        assert_eq!(report.failed, 0);
        assert_eq!(report.timed_out, 0);
        assert!(report.peak_cores_leased <= report.cores);
        assert!(report.pool_size <= config.cores);
        assert!(report.p50_latency_nanos <= report.p99_latency_nanos);
        assert!(report.render().contains("SLO"));
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("slo_burn"));
        assert!(json.contains("\"histograms\""));
    }
}
