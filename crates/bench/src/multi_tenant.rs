//! The multi-tenant service driver.
//!
//! Replays `N` simultaneous clients against one [`HelixService`] — mixed
//! census/genomics/IE/MNIST workloads assigned so consecutive tenant
//! pairs share a workload (and therefore a full signature prefix) — and
//! reports what the service design is supposed to buy:
//!
//! * **aggregate throughput** (iterations/second wall-clock) versus a
//!   *serial back-to-back baseline*: the same sessions run one after the
//!   other in solo sessions with private catalogs — i.e., the
//!   pre-`helix-serve` deployment model;
//! * **per-tenant latency** split into queue wait and run time;
//! * **cross-tenant cache-hit rate**: the fraction of catalog loads
//!   served by artifacts some *other* tenant computed;
//! * **scheduling fairness** (`fair`): the service's scheduler-event
//!   audit — whether every pick was the DRF choice, and how long each
//!   tenant's eligible work waited — plus per-tenant dominant shares;
//! * **byte identity** (`verify_bytes`): every session's outputs compared
//!   against a strict-serial solo ground-truth run of the same workload
//!   and seed — the service determinism contract, asserted in-driver.
//!
//! The adversarial **heavy-tenant scenario** (`heavy`) gives tenant 0
//! `cores + 1` sessions, a deep backlog submitted up front, and maximum
//! priority: under strict-priority scheduling it starves the light
//! tenants of cores (visible in the audit's eligible-wait streaks), under
//! fair-share it cannot.
//!
//! Used by the `multi_tenant` binary (CI smoke-tests it at small N) and
//! by the service determinism suite as a workload generator.

use helix_common::timing::Nanos;
use helix_common::Result;
use helix_core::{Session, SessionConfig, Workflow};
use helix_obs::{layer, now_nanos, span_at, Registry, RegistrySnapshot};
use helix_serve::{HelixService, JobTicket, SchedulingPolicy, ServiceConfig, TenantSpec};
use helix_storage::{encode_value, DiskProfile};
use helix_workloads::{CensusWorkload, GenomicsWorkload, IeWorkload, MnistWorkload, Workload};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct MultiTenantConfig {
    /// Number of simultaneous clients.
    pub tenants: usize,
    /// Core tokens in the shared budget.
    pub cores: usize,
    /// Iterations per session (1 initial + `iterations - 1` scripted
    /// changes).
    pub iterations: usize,
    /// Worker ceiling per session (the paper's per-workflow cluster size).
    pub workers_per_session: usize,
    /// Disk profile of the shared catalog (throttled by default so the
    /// compute/load trade-off the paper studies stays visible).
    pub disk: DiskProfile,
    /// Base seed. With `distinct_seeds` off, every tenant runs under this
    /// seed (the old shared-seed ceiling); with it on, tenant `ix` runs
    /// under `seed + ix`.
    pub seed: u64,
    /// Give every tenant its own seed (`seed + ix`). Provenance-keyed
    /// signatures keep cross-tenant reuse sound: only the
    /// seed-independent workflow prefix is shared, which is exactly what
    /// this mode measures against the shared-seed ceiling.
    pub distinct_seeds: bool,
    /// Dominant-resource fair scheduling (equal weights) instead of
    /// strict FIFO-with-priority.
    pub fair: bool,
    /// Adversarial heavy tenant: tenant 0 opens `cores + 1` sessions
    /// (min 2), submits its whole backlog up front, and registers at
    /// maximum priority — the starvation shape strict priority cannot
    /// handle and DRF must.
    pub heavy: bool,
    /// Compare every session's outputs byte-for-byte against a
    /// strict-serial solo run of the same workload and seed.
    pub verify_bytes: bool,
    /// Run the serial back-to-back baseline (the throughput comparator).
    /// Comparison replays that only need the scheduler audit (the
    /// `--fair` strict-priority replay) turn this off to halve their
    /// cost; `serial_wall_nanos` reports 0 then.
    pub measure_serial_baseline: bool,
}

impl MultiTenantConfig {
    /// A small configuration suitable for CI smoke runs.
    pub fn smoke() -> MultiTenantConfig {
        MultiTenantConfig {
            tenants: 2,
            cores: 2,
            iterations: 2,
            workers_per_session: 2,
            disk: DiskProfile::unthrottled(),
            seed: 42,
            distinct_seeds: false,
            fair: false,
            heavy: false,
            verify_bytes: false,
            measure_serial_baseline: true,
        }
    }

    /// The seed tenant `ix`'s sessions run under in this configuration.
    pub fn seed_for(&self, ix: usize) -> u64 {
        if self.distinct_seeds {
            self.seed.wrapping_add(ix as u64)
        } else {
            self.seed
        }
    }

    /// How many sessions tenant `ix` opens (the heavy tenant floods the
    /// service; everyone else is an ordinary single-session client).
    pub fn sessions_for(&self, ix: usize) -> usize {
        if self.heavy && ix == 0 {
            (self.cores + 1).max(2)
        } else {
            1
        }
    }
}

/// Build tenant `ix`'s workload. Pairs share: tenants 0,1 → census,
/// 2,3 → genomics, 4,5 → IE, 6,7 → MNIST, then wrap.
pub fn workload_for(ix: usize) -> Box<dyn Workload> {
    match (ix / 2) % 4 {
        0 => Box::new(CensusWorkload::small()),
        1 => Box::new(GenomicsWorkload::small()),
        2 => Box::new(IeWorkload::small()),
        _ => Box::new(MnistWorkload::small()),
    }
}

/// Label for tenant `ix`'s workload.
pub fn workload_name_for(ix: usize) -> &'static str {
    match (ix / 2) % 4 {
        0 => "census",
        1 => "genomics",
        2 => "ie",
        _ => "mnist",
    }
}

/// The scripted iteration schedule tenant `ix`'s sessions replay:
/// initial build plus `iterations - 1` scripted changes, prebuilt so a
/// whole schedule can be submitted up front.
fn iteration_workflows(ix: usize, iterations: usize) -> Vec<Workflow> {
    let mut workload = workload_for(ix);
    let changes = workload.scripted_sequence();
    let mut wfs = Vec::with_capacity(iterations);
    wfs.push(workload.build());
    for iter in 1..iterations {
        workload.apply_change(changes[(iter - 1) % changes.len()]);
        wfs.push(workload.build());
    }
    wfs
}

/// Output name → encoded bytes: everything a user sees from an iteration.
type Outputs = BTreeMap<String, Vec<u8>>;

fn outputs_of(report: &helix_core::IterationReport) -> Outputs {
    report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect()
}

/// One tenant's measured outcome (summed over its sessions).
#[derive(Clone, Debug, Serialize)]
pub struct TenantOutcome {
    /// Tenant name (`tenant-<ix>`).
    pub tenant: String,
    /// Workload label.
    pub workload: &'static str,
    /// Sessions this tenant ran.
    pub sessions: usize,
    /// Iterations completed across its sessions.
    pub iterations: usize,
    /// Submission-to-report latency per iteration.
    pub latencies_nanos: Vec<Nanos>,
    /// Total time spent queued (admission + core-token wait).
    pub queue_wait_nanos: Nanos,
    /// Total time inside `Session::run`.
    pub run_nanos: Nanos,
    /// Catalog loads served by this tenant's own artifacts.
    pub self_hits: u64,
    /// Catalog loads served by other tenants' artifacts.
    pub cross_hits: u64,
    /// Jobs the scheduler dispatched for this tenant.
    pub dispatches: u64,
    /// Worst streak of consecutive picks that went elsewhere while this
    /// tenant had an eligible job queued (the starvation depth).
    pub max_eligible_wait: u64,
    /// Weighted dominant share at the end of the run.
    pub dominant_share: f64,
}

impl TenantOutcome {
    /// Mean submission-to-report latency.
    pub fn mean_latency_nanos(&self) -> Nanos {
        if self.latencies_nanos.is_empty() {
            return 0;
        }
        self.latencies_nanos.iter().sum::<Nanos>() / self.latencies_nanos.len() as Nanos
    }
}

/// Byte-identity verification outcome (`verify_bytes`).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ByteIdentity {
    /// Sessions whose whole output trace was compared.
    pub sessions_checked: usize,
    /// Sessions whose trace diverged from the strict-serial solo run.
    pub mismatches: usize,
}

/// What one driver run measured.
#[derive(Clone, Debug, Serialize)]
pub struct MultiTenantReport {
    /// Per-tenant outcomes, tenant-index order.
    pub tenants: Vec<TenantOutcome>,
    /// Wall-clock time of the concurrent service run.
    pub service_wall_nanos: Nanos,
    /// Wall-clock time of the serial back-to-back baseline (solo
    /// sessions, private catalogs).
    pub serial_wall_nanos: Nanos,
    /// Total iterations across tenants.
    pub total_iterations: usize,
    /// Cross-tenant hit rate across all tenants' loads.
    pub cross_hit_rate: f64,
    /// Core-token high-water mark during the service run.
    pub peak_cores_leased: usize,
    /// The core budget.
    pub cores: usize,
    /// Whether tenants ran under per-tenant seeds (`seed + ix`) instead
    /// of one shared seed.
    pub distinct_seeds: bool,
    /// Scheduling policy label (`priority` / `fairshare`).
    pub scheduling: &'static str,
    /// Whether the adversarial heavy tenant ran.
    pub heavy: bool,
    /// Scheduler picks observed.
    pub picks: u64,
    /// Picks that deviated from the DRF choice (0 under fair share).
    pub non_drf_picks: u64,
    /// Max picked-share minus min-eligible-share over all picks.
    pub max_share_gap: f64,
    /// Quota evictions across tenants.
    pub quota_evictions: u64,
    /// Global-pressure evictions across tenants.
    pub global_evictions: u64,
    /// Byte-identity verification, when `verify_bytes` was on.
    pub byte_identity: Option<ByteIdentity>,
    /// Timing aggregation: per-iteration submission-to-report latencies
    /// and per-tenant queue/run totals, with log-bucketed p50/p95/p99
    /// summaries (`helix_obs::Registry`).
    pub metrics: RegistrySnapshot,
}

impl MultiTenantReport {
    /// Iterations per second of the concurrent service run.
    pub fn service_throughput(&self) -> f64 {
        self.total_iterations as f64 / (self.service_wall_nanos.max(1) as f64 / 1e9)
    }

    /// Iterations per second of the serial baseline.
    pub fn serial_throughput(&self) -> f64 {
        self.total_iterations as f64 / (self.serial_wall_nanos.max(1) as f64 / 1e9)
    }

    /// service_throughput / serial_throughput.
    pub fn speedup(&self) -> f64 {
        self.service_throughput() / self.serial_throughput().max(f64::MIN_POSITIVE)
    }

    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "multi-tenant service: {} tenants, {} cores, {} iterations total, {}, {} scheduling{}\n",
            self.tenants.len(),
            self.cores,
            self.total_iterations,
            if self.distinct_seeds { "per-tenant seeds" } else { "shared seed" },
            self.scheduling,
            if self.heavy { ", adversarial heavy tenant" } else { "" },
        ));
        out.push_str(&format!(
            "  service wall {:>8.2} ms  ({:.2} iter/s)\n",
            self.service_wall_nanos as f64 / 1e6,
            self.service_throughput()
        ));
        out.push_str(&format!(
            "  serial  wall {:>8.2} ms  ({:.2} iter/s)  speedup {:.2}x\n",
            self.serial_wall_nanos as f64 / 1e6,
            self.serial_throughput(),
            self.speedup()
        ));
        out.push_str(&format!(
            "  cross-tenant hit rate {:.1}%   peak cores {}/{}\n",
            self.cross_hit_rate * 100.0,
            self.peak_cores_leased,
            self.cores
        ));
        out.push_str(&format!(
            "  scheduler: {} picks, {} non-DRF, max share gap {:.3}; evictions quota {} / \
             global {}\n",
            self.picks,
            self.non_drf_picks,
            self.max_share_gap,
            self.quota_evictions,
            self.global_evictions,
        ));
        if let Some(bytes) = &self.byte_identity {
            out.push_str(&format!(
                "  byte identity vs solo serial: {}/{} sessions identical\n",
                bytes.sessions_checked - bytes.mismatches,
                bytes.sessions_checked,
            ));
        }
        for t in &self.tenants {
            out.push_str(&format!(
                "  {:>10} [{:>8}] x{} sess  iters {:>2}  mean latency {:>8.2} ms  queued \
                 {:>8.2} ms  self-hits {:>3}  cross-hits {:>3}  dispatches {:>2}  max-wait \
                 {:>2}  share {:.3}\n",
                t.tenant,
                t.workload,
                t.sessions,
                t.iterations,
                t.mean_latency_nanos() as f64 / 1e6,
                t.queue_wait_nanos as f64 / 1e6,
                t.self_hits,
                t.cross_hits,
                t.dispatches,
                t.max_eligible_wait,
                t.dominant_share,
            ));
        }
        out
    }
}

/// What one session thread brought back from the concurrent run.
struct SessionTrace {
    tenant_ix: usize,
    latencies: Vec<Nanos>,
    outputs: Vec<Outputs>,
}

/// Run the concurrent service workload and the serial baseline, and
/// assemble the comparison report.
pub fn run_multi_tenant(config: &MultiTenantConfig) -> Result<MultiTenantReport> {
    let tenants = config.tenants.max(1);
    let iterations = config.iterations.max(1);
    let total_sessions: usize = (0..tenants).map(|ix| config.sessions_for(ix)).sum();

    // --- concurrent service run -----------------------------------------
    let service = HelixService::new(
        ServiceConfig::new(config.cores)
            .with_disk(config.disk)
            .with_seed(config.seed)
            .with_max_concurrent_iterations(total_sessions.max(config.cores))
            .with_scheduling(if config.fair {
                SchedulingPolicy::fair()
            } else {
                SchedulingPolicy::Priority
            }),
    )?;
    for ix in 0..tenants {
        let spec = if config.heavy && ix == 0 {
            // The adversary: a priority that would dominate under the
            // strict policy, and enough concurrency headroom to occupy
            // every core with its own sessions.
            TenantSpec::default().with_priority(3).with_max_concurrent(config.sessions_for(ix))
        } else {
            TenantSpec::default()
        };
        service.register_tenant(&format!("tenant-{ix}"), spec)?;
    }

    let registry = Registry::new();
    let service_begin = now_nanos();
    let started = Instant::now();
    let mut traces: Vec<SessionTrace> = Vec::new();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for ix in 0..tenants {
            for _ in 0..config.sessions_for(ix) {
                let service = &service;
                let session_config = SessionConfig::in_memory()
                    .with_workers(config.workers_per_session)
                    .with_seed(config.seed_for(ix));
                handles.push(scope.spawn(move || -> Result<SessionTrace> {
                    let session = service.open_session(&format!("tenant-{ix}"), session_config)?;
                    // Submit the whole schedule up front: this is what
                    // creates real backlog pressure (and exercises the
                    // planning/execution overlap of successor jobs).
                    let submitted = Instant::now();
                    let tickets: Vec<JobTicket> = iteration_workflows(ix, iterations)
                        .into_iter()
                        .map(|wf| session.submit(wf))
                        .collect::<Result<_>>()?;
                    let mut latencies = Vec::with_capacity(iterations);
                    let mut outputs = Vec::with_capacity(iterations);
                    for ticket in tickets {
                        let report = ticket.wait()?;
                        latencies.push(submitted.elapsed().as_nanos() as Nanos);
                        outputs.push(outputs_of(&report));
                    }
                    Ok(SessionTrace { tenant_ix: ix, latencies, outputs })
                }));
            }
        }
        for handle in handles {
            traces.push(handle.join().expect("session thread panicked")?);
        }
        Ok(())
    })?;
    let service_wall_nanos = started.elapsed().as_nanos() as Nanos;
    let stats = service.stats();
    let _ = span_at(layer::BENCH, "service.wall", service_begin, service_wall_nanos)
        .track("bench-service")
        .amount((total_sessions * iterations) as u64);
    let latency_hist = registry.histogram("multi_tenant.latency_nanos");
    for trace in &traces {
        for latency in &trace.latencies {
            latency_hist.record(*latency);
        }
    }
    for t in stats.tenants.values() {
        registry.histogram("multi_tenant.tenant_queue_wait_nanos").record(t.queue_wait_nanos);
        registry.histogram("multi_tenant.tenant_run_nanos").record(t.run_nanos);
        registry.counter("multi_tenant.self_hits").add(t.self_hits);
        registry.counter("multi_tenant.cross_hits").add(t.cross_hits);
    }

    // --- byte-identity ground truth ---------------------------------------
    // Strict-serial solo runs (one worker, pipeline off, private catalog),
    // one per distinct (tenant workload, seed); every session of that
    // tenant must reproduce the trace byte-for-byte.
    let byte_identity = if config.verify_bytes {
        let mut ground_truth: BTreeMap<usize, Vec<Outputs>> = BTreeMap::new();
        for ix in 0..tenants {
            let mut session = Session::new(
                SessionConfig {
                    disk: config.disk,
                    ..SessionConfig::in_memory().with_workers(1).with_pipeline(false)
                }
                .with_seed(config.seed_for(ix)),
            )?;
            let trace = iteration_workflows(ix, iterations)
                .iter()
                .map(|wf| session.run(wf).map(|r| outputs_of(&r)))
                .collect::<Result<Vec<Outputs>>>()?;
            ground_truth.insert(ix, trace);
        }
        let mismatches = traces.iter().filter(|t| t.outputs != ground_truth[&t.tenant_ix]).count();
        Some(ByteIdentity { sessions_checked: traces.len(), mismatches })
    } else {
        None
    };

    let mut outcomes = Vec::with_capacity(tenants);
    for ix in 0..tenants {
        let name = format!("tenant-{ix}");
        let t = &stats.tenants[&name];
        let audit = stats.fairness.per_tenant.get(&name);
        let mut latencies: Vec<Nanos> = traces
            .iter()
            .filter(|trace| trace.tenant_ix == ix)
            .flat_map(|trace| trace.latencies.iter().copied())
            .collect();
        latencies.sort_unstable();
        outcomes.push(TenantOutcome {
            tenant: name,
            workload: workload_name_for(ix),
            sessions: config.sessions_for(ix),
            iterations: config.sessions_for(ix) * iterations,
            latencies_nanos: latencies,
            queue_wait_nanos: t.queue_wait_nanos,
            run_nanos: t.run_nanos,
            self_hits: t.self_hits,
            cross_hits: t.cross_hits,
            dispatches: audit.map_or(0, |a| a.dispatches),
            max_eligible_wait: audit.map_or(0, |a| a.max_eligible_wait),
            dominant_share: t.dominant_share,
        });
    }

    // --- serial back-to-back baseline ------------------------------------
    // The pre-service deployment model: each session is a solo session
    // with a private catalog; sessions run strictly one after another.
    let serial_wall_nanos = if config.measure_serial_baseline {
        let serial_started = Instant::now();
        for ix in 0..tenants {
            for _ in 0..config.sessions_for(ix) {
                let mut session = Session::new(SessionConfig {
                    disk: config.disk,
                    seed: Some(config.seed_for(ix)),
                    ..SessionConfig::in_memory().with_workers(config.workers_per_session)
                })?;
                for wf in iteration_workflows(ix, iterations) {
                    session.run(&wf)?;
                }
            }
        }
        serial_started.elapsed().as_nanos() as Nanos
    } else {
        0
    };

    Ok(MultiTenantReport {
        tenants: outcomes,
        service_wall_nanos,
        serial_wall_nanos,
        total_iterations: total_sessions * iterations,
        cross_hit_rate: stats.cross_hit_rate(),
        peak_cores_leased: stats.peak_cores_leased,
        cores: stats.cores_total,
        distinct_seeds: config.distinct_seeds,
        scheduling: if config.fair { "fairshare" } else { "priority" },
        heavy: config.heavy,
        picks: stats.fairness.picks,
        non_drf_picks: stats.fairness.non_drf_picks,
        max_share_gap: stats.fairness.max_share_gap,
        quota_evictions: stats.tenants.values().map(|t| t.quota_evictions).sum(),
        global_evictions: stats.tenants.values().map(|t| t.global_evictions).sum(),
        byte_identity,
        metrics: registry.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_cross_tenant_hits() {
        // Tenants 0 and 1 share the census workload end-to-end. With one
        // core, whole iterations (plan + execute, both under the base
        // token) serialize on the core budget, so whichever tenant's
        // identical iteration runs later *deterministically* loads
        // artifacts the earlier one computed (both apply the same
        // scripted change schedule).
        let config = MultiTenantConfig { cores: 1, ..MultiTenantConfig::smoke() };
        let report = run_multi_tenant(&config).unwrap();
        assert_eq!(report.total_iterations, 4);
        assert_eq!(report.tenants.len(), 2);
        assert!(
            report.cross_hit_rate > 0.0,
            "workload pair sharing a prefix must produce cross-tenant hits"
        );
        assert!(report.peak_cores_leased <= report.cores);
        assert!(
            report.tenants.iter().any(|t| t.cross_hits > 0),
            "the follower rides the leader's artifacts"
        );
        assert!(report.render().contains("cross-tenant hit rate"));
        assert_eq!(report.scheduling, "priority");
    }

    #[test]
    fn distinct_seeds_still_share_the_seed_independent_prefix() {
        // Same shape as the shared-seed smoke, but every tenant runs its
        // own seed. Provenance-keyed signatures keep the census prefix
        // (parsing, extraction, example assembly) shareable — only the
        // stochastic model and its descendants key apart — so
        // cross-tenant hits must still appear.
        let config =
            MultiTenantConfig { cores: 1, distinct_seeds: true, ..MultiTenantConfig::smoke() };
        let report = run_multi_tenant(&config).unwrap();
        assert!(report.distinct_seeds);
        assert!(report.cross_hit_rate > 0.0, "per-tenant seeds must not kill prefix sharing");
        assert!(report.peak_cores_leased <= report.cores);
        assert!(report.render().contains("per-tenant seeds"));
    }

    #[test]
    fn fair_heavy_run_is_byte_identical_and_audit_clean() {
        let config = MultiTenantConfig {
            tenants: 3,
            cores: 2,
            fair: true,
            heavy: true,
            verify_bytes: true,
            ..MultiTenantConfig::smoke()
        };
        let report = run_multi_tenant(&config).unwrap();
        assert_eq!(report.scheduling, "fairshare");
        assert_eq!(report.non_drf_picks, 0, "fair-share picks are the DRF choice");
        assert_eq!(report.max_share_gap, 0.0);
        let bytes = report.byte_identity.expect("verification ran");
        assert_eq!(bytes.mismatches, 0, "every session byte-identical to its solo run");
        assert_eq!(bytes.sessions_checked, 3 + 2, "heavy opened cores + 1 sessions");
        assert!(report.peak_cores_leased <= report.cores);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        assert!(json.contains("non_drf_picks"));
        // The registry summary block rides along: one latency sample per
        // (session, iteration).
        let lat = &report.metrics.histograms["multi_tenant.latency_nanos"];
        assert_eq!(lat.count, (3 + 2) as u64 * 2, "5 sessions x 2 iterations");
        assert!(lat.min <= lat.p50 && lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
        assert!(json.contains("\"histograms\""));
    }
}
