//! The multi-tenant service driver.
//!
//! Replays `N` simultaneous clients against one [`HelixService`] — mixed
//! census/genomics/IE/MNIST workloads assigned so consecutive tenant
//! pairs share a workload (and therefore a full signature prefix) — and
//! reports what the service design is supposed to buy:
//!
//! * **aggregate throughput** (iterations/second wall-clock) versus a
//!   *serial back-to-back baseline*: the same tenants run one after the
//!   other in solo sessions with private catalogs — i.e., the
//!   pre-`helix-serve` deployment model;
//! * **per-tenant latency** split into queue wait and run time;
//! * **cross-tenant cache-hit rate**: the fraction of catalog loads
//!   served by artifacts some *other* tenant computed.
//!
//! Used by the `multi_tenant` binary (CI smoke-tests it at small N) and
//! by the service determinism suite as a workload generator.

use helix_common::timing::Nanos;
use helix_common::Result;
use helix_core::SessionConfig;
use helix_serve::{HelixService, ServiceConfig, TenantSpec};
use helix_storage::DiskProfile;
use helix_workloads::{CensusWorkload, GenomicsWorkload, IeWorkload, MnistWorkload, Workload};
use std::time::Instant;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct MultiTenantConfig {
    /// Number of simultaneous clients.
    pub tenants: usize,
    /// Core tokens in the shared budget.
    pub cores: usize,
    /// Iterations per tenant (1 initial + `iterations - 1` scripted
    /// changes).
    pub iterations: usize,
    /// Worker ceiling per session (the paper's per-workflow cluster size).
    pub workers_per_session: usize,
    /// Disk profile of the shared catalog (throttled by default so the
    /// compute/load trade-off the paper studies stays visible).
    pub disk: DiskProfile,
    /// Base seed. With `distinct_seeds` off, every tenant runs under this
    /// seed (the old shared-seed ceiling); with it on, tenant `ix` runs
    /// under `seed + ix`.
    pub seed: u64,
    /// Give every tenant its own seed (`seed + ix`). Provenance-keyed
    /// signatures keep cross-tenant reuse sound: only the
    /// seed-independent workflow prefix is shared, which is exactly what
    /// this mode measures against the shared-seed ceiling.
    pub distinct_seeds: bool,
}

impl MultiTenantConfig {
    /// A small configuration suitable for CI smoke runs.
    pub fn smoke() -> MultiTenantConfig {
        MultiTenantConfig {
            tenants: 2,
            cores: 2,
            iterations: 2,
            workers_per_session: 2,
            disk: DiskProfile::unthrottled(),
            seed: 42,
            distinct_seeds: false,
        }
    }

    /// The seed tenant `ix`'s session runs under in this configuration.
    pub fn seed_for(&self, ix: usize) -> u64 {
        if self.distinct_seeds {
            self.seed.wrapping_add(ix as u64)
        } else {
            self.seed
        }
    }
}

/// Build tenant `ix`'s workload. Pairs share: tenants 0,1 → census,
/// 2,3 → genomics, 4,5 → IE, 6,7 → MNIST, then wrap.
pub fn workload_for(ix: usize) -> Box<dyn Workload> {
    match (ix / 2) % 4 {
        0 => Box::new(CensusWorkload::small()),
        1 => Box::new(GenomicsWorkload::small()),
        2 => Box::new(IeWorkload::small()),
        _ => Box::new(MnistWorkload::small()),
    }
}

/// Label for tenant `ix`'s workload.
pub fn workload_name_for(ix: usize) -> &'static str {
    match (ix / 2) % 4 {
        0 => "census",
        1 => "genomics",
        2 => "ie",
        _ => "mnist",
    }
}

/// One tenant's measured outcome.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant name (`tenant-<ix>`).
    pub tenant: String,
    /// Workload label.
    pub workload: &'static str,
    /// Iterations completed.
    pub iterations: usize,
    /// Submission-to-report latency per iteration.
    pub latencies_nanos: Vec<Nanos>,
    /// Total time spent queued (admission + core-token wait).
    pub queue_wait_nanos: Nanos,
    /// Total time inside `Session::run`.
    pub run_nanos: Nanos,
    /// Catalog loads served by this tenant's own artifacts.
    pub self_hits: u64,
    /// Catalog loads served by other tenants' artifacts.
    pub cross_hits: u64,
}

impl TenantOutcome {
    /// Mean submission-to-report latency.
    pub fn mean_latency_nanos(&self) -> Nanos {
        if self.latencies_nanos.is_empty() {
            return 0;
        }
        self.latencies_nanos.iter().sum::<Nanos>() / self.latencies_nanos.len() as Nanos
    }
}

/// What one driver run measured.
#[derive(Clone, Debug)]
pub struct MultiTenantReport {
    /// Per-tenant outcomes, tenant-index order.
    pub tenants: Vec<TenantOutcome>,
    /// Wall-clock time of the concurrent service run.
    pub service_wall_nanos: Nanos,
    /// Wall-clock time of the serial back-to-back baseline (solo
    /// sessions, private catalogs).
    pub serial_wall_nanos: Nanos,
    /// Total iterations across tenants.
    pub total_iterations: usize,
    /// Cross-tenant hit rate across all tenants' loads.
    pub cross_hit_rate: f64,
    /// Core-token high-water mark during the service run.
    pub peak_cores_leased: usize,
    /// The core budget.
    pub cores: usize,
    /// Whether tenants ran under per-tenant seeds (`seed + ix`) instead
    /// of one shared seed.
    pub distinct_seeds: bool,
}

impl MultiTenantReport {
    /// Iterations per second of the concurrent service run.
    pub fn service_throughput(&self) -> f64 {
        self.total_iterations as f64 / (self.service_wall_nanos.max(1) as f64 / 1e9)
    }

    /// Iterations per second of the serial baseline.
    pub fn serial_throughput(&self) -> f64 {
        self.total_iterations as f64 / (self.serial_wall_nanos.max(1) as f64 / 1e9)
    }

    /// service_throughput / serial_throughput.
    pub fn speedup(&self) -> f64 {
        self.service_throughput() / self.serial_throughput().max(f64::MIN_POSITIVE)
    }

    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "multi-tenant service: {} tenants, {} cores, {} iterations total, {}\n",
            self.tenants.len(),
            self.cores,
            self.total_iterations,
            if self.distinct_seeds { "per-tenant seeds" } else { "shared seed" },
        ));
        out.push_str(&format!(
            "  service wall {:>8.2} ms  ({:.2} iter/s)\n",
            self.service_wall_nanos as f64 / 1e6,
            self.service_throughput()
        ));
        out.push_str(&format!(
            "  serial  wall {:>8.2} ms  ({:.2} iter/s)  speedup {:.2}x\n",
            self.serial_wall_nanos as f64 / 1e6,
            self.serial_throughput(),
            self.speedup()
        ));
        out.push_str(&format!(
            "  cross-tenant hit rate {:.1}%   peak cores {}/{}\n",
            self.cross_hit_rate * 100.0,
            self.peak_cores_leased,
            self.cores
        ));
        for t in &self.tenants {
            out.push_str(&format!(
                "  {:>10} [{:>8}]  iters {:>2}  mean latency {:>8.2} ms  queued {:>8.2} ms  \
                 self-hits {:>3}  cross-hits {:>3}\n",
                t.tenant,
                t.workload,
                t.iterations,
                t.mean_latency_nanos() as f64 / 1e6,
                t.queue_wait_nanos as f64 / 1e6,
                t.self_hits,
                t.cross_hits,
            ));
        }
        out
    }
}

/// Run the concurrent service workload and the serial baseline, and
/// assemble the comparison report.
pub fn run_multi_tenant(config: &MultiTenantConfig) -> Result<MultiTenantReport> {
    let tenants = config.tenants.max(1);
    let iterations = config.iterations.max(1);

    // --- concurrent service run -----------------------------------------
    let service = HelixService::new(
        ServiceConfig::new(config.cores)
            .with_disk(config.disk)
            .with_seed(config.seed)
            .with_max_concurrent_iterations(tenants.max(config.cores)),
    )?;
    for ix in 0..tenants {
        service.register_tenant(&format!("tenant-{ix}"), TenantSpec::default())?;
    }

    let started = Instant::now();
    let mut latency_lists: Vec<Vec<Nanos>> = Vec::new();
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for ix in 0..tenants {
            let service = &service;
            let session_config = SessionConfig::in_memory()
                .with_workers(config.workers_per_session)
                .with_seed(config.seed_for(ix));
            handles.push(scope.spawn(move || -> Result<Vec<Nanos>> {
                let session = service.open_session(&format!("tenant-{ix}"), session_config)?;
                let mut workload = workload_for(ix);
                let changes = workload.scripted_sequence();
                let mut latencies = Vec::with_capacity(iterations);
                for iter in 0..iterations {
                    if iter > 0 {
                        workload.apply_change(changes[(iter - 1) % changes.len()]);
                    }
                    let submitted = Instant::now();
                    session.run_iteration(workload.build())?;
                    latencies.push(submitted.elapsed().as_nanos() as Nanos);
                }
                Ok(latencies)
            }));
        }
        for handle in handles {
            latency_lists.push(handle.join().expect("tenant thread panicked")?);
        }
        Ok(())
    })?;
    let service_wall_nanos = started.elapsed().as_nanos() as Nanos;
    let stats = service.stats();

    let mut outcomes = Vec::with_capacity(tenants);
    for (ix, latencies) in latency_lists.into_iter().enumerate() {
        let name = format!("tenant-{ix}");
        let t = &stats.tenants[&name];
        outcomes.push(TenantOutcome {
            tenant: name,
            workload: workload_name_for(ix),
            iterations,
            latencies_nanos: latencies,
            queue_wait_nanos: t.queue_wait_nanos,
            run_nanos: t.run_nanos,
            self_hits: t.self_hits,
            cross_hits: t.cross_hits,
        });
    }

    // --- serial back-to-back baseline ------------------------------------
    // The pre-service deployment model: each tenant is a solo session with
    // a private catalog; tenants run strictly one after another.
    let serial_started = Instant::now();
    for ix in 0..tenants {
        let mut session = helix_core::Session::new(SessionConfig {
            disk: config.disk,
            seed: Some(config.seed_for(ix)),
            ..SessionConfig::in_memory().with_workers(config.workers_per_session)
        })?;
        let mut workload = workload_for(ix);
        let changes = workload.scripted_sequence();
        for iter in 0..iterations {
            if iter > 0 {
                workload.apply_change(changes[(iter - 1) % changes.len()]);
            }
            session.run(&workload.build())?;
        }
    }
    let serial_wall_nanos = serial_started.elapsed().as_nanos() as Nanos;

    Ok(MultiTenantReport {
        tenants: outcomes,
        service_wall_nanos,
        serial_wall_nanos,
        total_iterations: tenants * iterations,
        cross_hit_rate: stats.cross_hit_rate(),
        peak_cores_leased: stats.peak_cores_leased,
        cores: stats.cores_total,
        distinct_seeds: config.distinct_seeds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_cross_tenant_hits() {
        // Tenants 0 and 1 share the census workload end-to-end. With one
        // core, iterations serialize on the core budget, so whichever
        // tenant runs second *deterministically* loads artifacts the
        // first computed (both apply the same scripted change schedule).
        // With more cores the hits are still reported, but two tenants
        // computing the same node simultaneously can legitimately both
        // own it — so the deterministic assertion pins cores to 1.
        let config = MultiTenantConfig { cores: 1, ..MultiTenantConfig::smoke() };
        let report = run_multi_tenant(&config).unwrap();
        assert_eq!(report.total_iterations, 4);
        assert_eq!(report.tenants.len(), 2);
        assert!(
            report.cross_hit_rate > 0.0,
            "workload pair sharing a prefix must produce cross-tenant hits"
        );
        assert!(report.peak_cores_leased <= report.cores);
        assert!(
            report.tenants.iter().any(|t| t.cross_hits > 0),
            "the follower rides the leader's artifacts"
        );
        assert!(report.render().contains("cross-tenant hit rate"));
    }

    #[test]
    fn distinct_seeds_still_share_the_seed_independent_prefix() {
        // Same shape as the shared-seed smoke, but every tenant runs its
        // own seed. Provenance-keyed signatures keep the census prefix
        // (parsing, extraction, example assembly) shareable — only the
        // stochastic model and its descendants key apart — so
        // cross-tenant hits must still appear.
        let config =
            MultiTenantConfig { cores: 1, distinct_seeds: true, ..MultiTenantConfig::smoke() };
        let report = run_multi_tenant(&config).unwrap();
        assert!(report.distinct_seeds);
        assert!(report.cross_hit_rate > 0.0, "per-tenant seeds must not kill prefix sharing");
        assert!(report.peak_cores_leased <= report.cores);
        assert!(report.render().contains("per-tenant seeds"));
    }
}
