//! # helix-bench
//!
//! The experiment harness: every table and figure of the paper's
//! evaluation (§6) has a function here that regenerates it, plus the
//! `paper-figures` binary that prints them in the paper's layout. Criterion
//! micro-benchmarks for the optimizer, codec, engine and ML kernels live
//! under `benches/`.
//!
//! Experiment-to-paper mapping (see DESIGN.md §5 and EXPERIMENTS.md):
//!
//! * [`experiments::fig5_fig6`] — cumulative run time (Fig 5a–d) and the
//!   per-iteration component breakdown (Fig 6a–d).
//! * [`experiments::fig7a`] / [`experiments::fig7b`] — dataset-size and
//!   worker-count scaling on Census/Census 10×.
//! * [`experiments::fig8`] — fraction of nodes in `S_p`/`S_l`/`S_c`,
//!   HELIX OPT vs HELIX AM.
//! * [`experiments::fig9`] — OPT vs AM vs NM cumulative time (Fig 9a,b,e,f)
//!   and storage (Fig 9c,d).
//! * [`experiments::fig10`] — per-iteration peak/average memory.
//! * [`experiments::table1`] / [`experiments::table2`] — the static
//!   coverage/characteristics tables.

//! * [`multi_tenant`] — the `helix-serve` driver: N simultaneous clients
//!   on one service vs the serial back-to-back baseline (throughput,
//!   per-tenant latency, cross-tenant cache-hit rate).
//! * [`pipeline`] — the pipelined iteration runtime vs the serial
//!   engine (speedup, overlap ratio, speculation hit rate); emits
//!   `BENCH_pipeline.json`.
//! * [`microbatch`] — intra-node micro-batch co-execution vs whole-frame
//!   operator execution (load/compute overlap, O(batch) residency);
//!   emits `BENCH_microbatch.json`.
//! * [`serve_async`] — open-loop stress of the pooled session runner:
//!   deterministic Poisson-like arrivals, non-blocking ticket
//!   collection, latency p50/p99 + SLO burn, and the OS-thread ceiling;
//!   emits `BENCH_serve_async.json`.

pub mod experiments;
pub mod microbatch;
pub mod multi_tenant;
pub mod pipeline;
pub mod report;
pub mod serve_async;

pub use experiments::{ExperimentConfig, SystemKind};
pub use microbatch::{run_microbatch_bench, MicrobatchBenchConfig, MicrobatchBenchReport};
pub use multi_tenant::{run_multi_tenant, MultiTenantConfig, MultiTenantReport};
pub use pipeline::{run_pipeline_bench, PipelineBenchConfig, PipelineBenchReport};
pub use serve_async::{run_serve_async, ServeAsyncConfig, ServeAsyncReport};
