//! Open-loop async-service stress bench: deterministic Poisson-like
//! arrivals of many sessions against one `HelixService`, collected
//! entirely through the non-blocking `JobTicket` surface.
//!
//! ```text
//! serve_async [--sessions N] [--tenants T] [--cores C] [--iterations K]
//!             [--rate JOBS_PER_SEC] [--seed S] [--slo-ms MS]
//!             [--fair] [--json PATH] [--check]
//! ```
//!
//! The CI smoke runs a few hundred sessions; `--sessions 10000` is the
//! acceptance configuration — ten thousand sessions multiplexed over a
//! worker pool of `min(cores, max_concurrent)` threads plus one
//! scheduler, with the OS thread count asserted flat.
//!
//! `--json PATH` writes the machine-readable report (the CI artifact;
//! default name `BENCH_serve_async.json`).
//! `--check` exits non-zero unless every job completed (no failures, no
//! drain timeouts), the core budget held (`peak_leased <= cores`), and —
//! on Linux — the service added at most `pool + 2` OS threads at peak
//! (pool workers + scheduler + sampling slack): the thread ceiling that
//! separates the pooled runner from thread-per-job.

use helix_bench::serve_async::{run_serve_async, ServeAsyncConfig};
use std::time::Duration;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ServeAsyncConfig::smoke();
    if let Some(n) = parse_flag(&args, "--sessions") {
        config.sessions = n as usize;
    }
    if let Some(t) = parse_flag(&args, "--tenants") {
        config.tenants = t as usize;
    }
    if let Some(c) = parse_flag(&args, "--cores") {
        config.cores = c as usize;
    }
    if let Some(k) = parse_flag(&args, "--iterations") {
        config.iterations_per_session = k as usize;
    }
    if let Some(r) = parse_flag(&args, "--rate") {
        config.arrival_rate = r as f64;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        config.seed = s;
    }
    if let Some(ms) = parse_flag(&args, "--slo-ms") {
        config.slo = Duration::from_millis(ms);
    }
    config.fair = args.iter().any(|a| a == "--fair");
    let check = args.iter().any(|a| a == "--check");

    let report = match run_serve_async(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve-async bench failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());

    if let Some(ix) = args.iter().position(|a| a == "--json") {
        let path = args.get(ix + 1).cloned().unwrap_or_else(|| "BENCH_serve_async.json".into());
        match serde_json::to_string_pretty(&report) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("warning: cannot write {path}: {e}");
                } else {
                    println!("wrote {path}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize report: {e}"),
        }
    }

    // With HELIX_TRACE=<path> in the environment, print the compact
    // per-track timeline and export the run's spans as Chrome
    // trace_event JSON (Perfetto-loadable) — this run's park/resume
    // spans are the interesting ones.
    if helix_obs::tracing_enabled() {
        let (events, dropped) = helix_obs::drain_spans();
        print!("{}", helix_obs::render_timeline(&events, dropped));
        if let Some(path) = helix_obs::trace_env_path() {
            match helix_obs::write_trace(&path, &events, dropped) {
                Ok(()) => println!("wrote trace {}", path.display()),
                Err(e) => eprintln!("warning: cannot write HELIX_TRACE file: {e}"),
            }
        }
    }

    if check {
        let mut failures = Vec::new();
        if report.completed != report.total_jobs {
            failures.push(format!(
                "{} of {} jobs did not complete cleanly ({} failed, {} timed out)",
                report.total_jobs - report.completed,
                report.total_jobs,
                report.failed,
                report.timed_out,
            ));
        }
        if report.peak_cores_leased > report.cores {
            failures.push(format!(
                "core budget violated: peak {} > {}",
                report.peak_cores_leased, report.cores
            ));
        }
        // Thread ceiling: pool workers + the scheduler, with slack for a
        // transient (lazy writer spin-up, sampling race). Only
        // measurable where /proc/self/task exists.
        if report.peak_threads > 0 && report.service_threads() > report.pool_size + 2 {
            failures.push(format!(
                "thread ceiling violated: service added {} threads at peak \
                 (pool {} + scheduler + slack allows {})",
                report.service_threads(),
                report.pool_size,
                report.pool_size + 2,
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "checks passed: {} jobs completed on {} service threads (pool {}), \
             core budget respected",
            report.total_jobs,
            report.service_threads(),
            report.pool_size,
        );
    }
}
