//! Multi-tenant service bench: replay N simultaneous clients against one
//! `HelixService` and compare with the serial back-to-back baseline.
//!
//! ```text
//! multi_tenant [--tenants N] [--cores C] [--iterations K] [--workers W]
//!              [--throttled] [--seed S] [--distinct-seeds] [--check]
//! ```
//!
//! `--throttled` uses a scaled disk profile so the compute/load trade-off
//! (and I/O overlap across tenants) is visible even on fast hardware.
//! `--distinct-seeds` gives tenant `ix` seed `S + ix` instead of the
//! shared seed, then *also* replays the shared-seed configuration and
//! prints both cross-tenant hit rates side by side: per-tenant seeds
//! share only the seed-independent workflow prefix, the shared seed is
//! the reuse ceiling.
//! `--check` exits non-zero unless the run observed cross-tenant hits and
//! respected the core budget — the CI smoke contract (with
//! `--distinct-seeds` this asserts prefix sharing survives per-tenant
//! seeds).

use helix_bench::multi_tenant::{run_multi_tenant, MultiTenantConfig};
use helix_storage::DiskProfile;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = MultiTenantConfig::smoke();
    if let Some(n) = parse_flag(&args, "--tenants") {
        config.tenants = n as usize;
    }
    if let Some(c) = parse_flag(&args, "--cores") {
        config.cores = c as usize;
    }
    if let Some(k) = parse_flag(&args, "--iterations") {
        config.iterations = k as usize;
    }
    if let Some(w) = parse_flag(&args, "--workers") {
        config.workers_per_session = w as usize;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        config.seed = s;
    }
    if args.iter().any(|a| a == "--throttled") {
        // Scaled to our small synthetic datasets, as the experiments use.
        config.disk = DiskProfile::scaled(5_000_000, 200_000);
    }
    config.distinct_seeds = args.iter().any(|a| a == "--distinct-seeds");

    let run = |config: &MultiTenantConfig| match run_multi_tenant(config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("multi-tenant bench failed: {e}");
            std::process::exit(1);
        }
    };
    let report = run(&config);
    print!("{}", report.render());
    if config.distinct_seeds {
        // The old shared-seed configuration is the reuse ceiling: every
        // node signature collides, not just the seed-independent prefix.
        let ceiling = run(&MultiTenantConfig { distinct_seeds: false, ..config.clone() });
        println!(
            "cross-tenant hit rate: {:.1}% with per-tenant seeds vs {:.1}% shared-seed ceiling",
            report.cross_hit_rate * 100.0,
            ceiling.cross_hit_rate * 100.0,
        );
    }

    if args.iter().any(|a| a == "--check") {
        let mut failures = Vec::new();
        if report.cross_hit_rate <= 0.0 {
            failures.push("no cross-tenant cache hits observed".to_string());
        }
        if report.peak_cores_leased > report.cores {
            failures.push(format!(
                "core budget violated: peak {} > {}",
                report.peak_cores_leased, report.cores
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("checks passed: cross-tenant reuse observed, core budget respected");
    }
}
