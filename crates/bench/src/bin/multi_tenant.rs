//! Multi-tenant service bench: replay N simultaneous clients against one
//! `HelixService` and compare with the serial back-to-back baseline.
//!
//! ```text
//! multi_tenant [--tenants N] [--cores C] [--iterations K] [--workers W]
//!              [--throttled] [--seed S] [--distinct-seeds]
//!              [--fair] [--heavy] [--json PATH] [--check]
//! ```
//!
//! `--throttled` uses a scaled disk profile so the compute/load trade-off
//! (and I/O overlap across tenants) is visible even on fast hardware.
//! `--distinct-seeds` gives tenant `ix` seed `S + ix` instead of the
//! shared seed, then *also* replays the shared-seed configuration and
//! prints both cross-tenant hit rates side by side: per-tenant seeds
//! share only the seed-independent workflow prefix, the shared seed is
//! the reuse ceiling.
//! `--fair` switches the service to dominant-resource fair scheduling
//! (equal weights), then *also* replays the same load under strict
//! priority and prints both fairness audits side by side — the
//! starvation the strict policy allows is the number fair share exists
//! to fix.
//! `--heavy` arms the adversarial heavy tenant: tenant 0 opens
//! `cores + 1` sessions at maximum priority and floods the queue up
//! front.
//! `--json PATH` writes the machine-readable report (the CI artifact).
//! `--check` exits non-zero unless the core budget held, every session's
//! outputs were byte-identical to its strict-serial solo run, and —
//! without `--heavy` — cross-tenant hits were observed (at one core the
//! assertion is deterministic). With `--fair` it additionally fails
//! unless the fairness audit is clean: zero non-DRF picks, zero share
//! gap (every pick went to the lowest-dominant-share eligible tenant —
//! the DRF bound), and no light tenant's eligible work ever waited more
//! than `tenants + cores` consecutive picks (the no-starvation bound a
//! strict-priority heavy run demonstrably violates).

use helix_bench::multi_tenant::{run_multi_tenant, MultiTenantConfig, MultiTenantReport};
use helix_storage::DiskProfile;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = MultiTenantConfig::smoke();
    if let Some(n) = parse_flag(&args, "--tenants") {
        config.tenants = n as usize;
    }
    if let Some(c) = parse_flag(&args, "--cores") {
        config.cores = c as usize;
    }
    if let Some(k) = parse_flag(&args, "--iterations") {
        config.iterations = k as usize;
    }
    if let Some(w) = parse_flag(&args, "--workers") {
        config.workers_per_session = w as usize;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        config.seed = s;
    }
    if args.iter().any(|a| a == "--throttled") {
        // Scaled to our small synthetic datasets, as the experiments use.
        config.disk = DiskProfile::scaled(5_000_000, 200_000);
    }
    config.distinct_seeds = args.iter().any(|a| a == "--distinct-seeds");
    config.fair = args.iter().any(|a| a == "--fair");
    config.heavy = args.iter().any(|a| a == "--heavy");
    let check = args.iter().any(|a| a == "--check");
    config.verify_bytes = check;

    let run = |config: &MultiTenantConfig| match run_multi_tenant(config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("multi-tenant bench failed: {e}");
            std::process::exit(1);
        }
    };
    let report = run(&config);
    print!("{}", report.render());
    if config.distinct_seeds {
        // The old shared-seed configuration is the reuse ceiling: every
        // node signature collides, not just the seed-independent prefix.
        let ceiling = run(&MultiTenantConfig { distinct_seeds: false, ..config.clone() });
        println!(
            "cross-tenant hit rate: {:.1}% with per-tenant seeds vs {:.1}% shared-seed ceiling",
            report.cross_hit_rate * 100.0,
            ceiling.cross_hit_rate * 100.0,
        );
    }
    if config.fair {
        // The strict-priority replay of the same load is the starvation
        // the fair policy exists to prevent — print both audits. Only
        // the scheduler audit is needed, so the replay skips the
        // byte-identity pass and the serial timing baseline.
        let strict = run(&MultiTenantConfig {
            fair: false,
            verify_bytes: false,
            measure_serial_baseline: false,
            ..config.clone()
        });
        // "Light tenants" = everyone but the heavy adversary; without
        // --heavy, tenant 0 is an ordinary light tenant and counts too.
        let light_from = usize::from(config.heavy);
        let worst_wait = |r: &MultiTenantReport| {
            r.tenants.iter().skip(light_from).map(|t| t.max_eligible_wait).max().unwrap_or(0)
        };
        println!(
            "fairness: fair-share {} non-DRF picks, light tenants' worst eligible-wait {} \
             picks; strict priority {} non-DRF picks, worst eligible-wait {} picks",
            report.non_drf_picks,
            worst_wait(&report),
            strict.non_drf_picks,
            worst_wait(&strict),
        );
    }

    if let Some(ix) = args.iter().position(|a| a == "--json") {
        let path = args.get(ix + 1).cloned().unwrap_or_else(|| "BENCH_multi_tenant.json".into());
        match serde_json::to_string_pretty(&report) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("warning: cannot write {path}: {e}");
                } else {
                    println!("wrote {path}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize report: {e}"),
        }
    }

    // With HELIX_TRACE=<path> in the environment, print the compact
    // per-track timeline and export the run's spans as Chrome
    // trace_event JSON (Perfetto-loadable).
    if helix_obs::tracing_enabled() {
        let (events, dropped) = helix_obs::drain_spans();
        print!("{}", helix_obs::render_timeline(&events, dropped));
        if let Some(path) = helix_obs::trace_env_path() {
            match helix_obs::write_trace(&path, &events, dropped) {
                Ok(()) => println!("wrote trace {}", path.display()),
                Err(e) => eprintln!("warning: cannot write HELIX_TRACE file: {e}"),
            }
        }
    }

    if check {
        let mut failures = Vec::new();
        if !config.heavy && report.cross_hit_rate <= 0.0 {
            failures.push("no cross-tenant cache hits observed".to_string());
        }
        if report.peak_cores_leased > report.cores {
            failures.push(format!(
                "core budget violated: peak {} > {}",
                report.peak_cores_leased, report.cores
            ));
        }
        match &report.byte_identity {
            Some(bytes) if bytes.mismatches > 0 => failures.push(format!(
                "{}/{} sessions diverged from their solo serial runs",
                bytes.mismatches, bytes.sessions_checked
            )),
            Some(_) => {}
            None => failures.push("byte-identity verification did not run".to_string()),
        }
        if config.fair {
            if report.non_drf_picks > 0 {
                failures.push(format!(
                    "{} of {} picks were not the DRF choice",
                    report.non_drf_picks, report.picks
                ));
            }
            if report.max_share_gap > 0.0 {
                failures.push(format!(
                    "dominant-share gap {} above the DRF bound",
                    report.max_share_gap
                ));
            }
            // No-starvation bound: a light (non-heavy) tenant may be
            // passed over by the other momentarily-lower-share tenants,
            // but never for a whole heavy backlog. `tenants + cores` is
            // generous; strict priority with a heavy tenant exceeds it.
            let bound = (config.tenants + config.cores) as u64;
            for t in report.tenants.iter().skip(if config.heavy { 1 } else { 0 }) {
                if t.max_eligible_wait > bound {
                    failures.push(format!(
                        "{} starved: eligible work waited {} consecutive picks (bound {})",
                        t.tenant, t.max_eligible_wait, bound
                    ));
                }
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "checks passed: outputs byte-identical to solo runs, core budget respected{}{}",
            if config.fair { ", DRF bound held, no starvation" } else { "" },
            if config.heavy { "" } else { ", cross-tenant reuse observed" },
        );
    }
}
