//! Intra-node micro-batch co-execution bench: whole-frame operator
//! execution vs the partition-streaming dispatcher.
//!
//! ```text
//! microbatch [--rows N] [--row-bytes B] [--batch K] [--lanes L] [--seed S]
//!            [--json PATH] [--check] [--min-overlap X]
//! ```
//!
//! Writes machine-readable results to `BENCH_microbatch.json` (or
//! `--json PATH`). The driver itself errors unless the streamed output
//! is byte-identical to whole-frame, some load/compute overlap was
//! measured, and peak resident slice bytes stayed under a quarter of the
//! dataset. `--check` switches to the CI smoke configuration and gates
//! only on those structural properties — the overlap-*floor* timing gate
//! (`--min-overlap`, default 0.05 outside `--check`) is disabled so a
//! 1-core runner can't flake on scheduling luck.

use helix_bench::microbatch::{run_microbatch_bench, MicrobatchBenchConfig};

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn parse_f64(args: &[String], name: &str) -> Option<f64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let mut config =
        if check { MicrobatchBenchConfig::smoke() } else { MicrobatchBenchConfig::default_run() };
    if let Some(n) = parse_flag(&args, "--rows") {
        config.rows = n as usize;
    }
    if let Some(b) = parse_flag(&args, "--row-bytes") {
        config.row_bytes = (b as usize).max(8);
    }
    if let Some(k) = parse_flag(&args, "--batch") {
        config.batch_rows = (k as usize).max(1);
    }
    if let Some(l) = parse_flag(&args, "--lanes") {
        config.lanes = (l as usize).max(1);
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        config.seed = s;
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|ix| args.get(ix + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_microbatch.json".to_string());

    let report = match run_microbatch_bench(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("microbatch bench failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());

    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&json_path, text) {
                eprintln!("warning: cannot write {json_path}: {e}");
            } else {
                println!("wrote {json_path}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize report: {e}"),
    }

    // With HELIX_TRACE=<path> in the environment, print the compact
    // per-track timeline and export the run's spans as Chrome
    // trace_event JSON (Perfetto-loadable).
    if helix_obs::tracing_enabled() {
        let (events, dropped) = helix_obs::drain_spans();
        print!("{}", helix_obs::render_timeline(&events, dropped));
        if let Some(path) = helix_obs::trace_env_path() {
            match helix_obs::write_trace(&path, &events, dropped) {
                Ok(()) => println!("wrote trace {}", path.display()),
                Err(e) => eprintln!("warning: cannot write HELIX_TRACE file: {e}"),
            }
        }
    }

    if check {
        println!(
            "checks passed: byte-identical streamed output, overlap {:.2} ms, \
             peak resident {:.1} KB on a {:.1} MB dataset",
            report.overlap_ms,
            report.peak_inflight_bytes as f64 / 1e3,
            report.dataset_bytes as f64 / 1e6
        );
    } else {
        let min_overlap = parse_f64(&args, "--min-overlap").unwrap_or(0.05);
        if report.overlap_ratio < min_overlap {
            eprintln!(
                "CHECK FAILED: overlap ratio {:.3} below the {min_overlap:.3} floor",
                report.overlap_ratio
            );
            std::process::exit(1);
        }
    }
}
