//! Storage crash-recovery exercise: build a catalog, injure it the way
//! crashes and bit rot do, and report what `Catalog::open` repairs.
//!
//! ```text
//! storage_recovery [--entries N] [--json PATH] [--check]
//! ```
//!
//! Scenarios: a clean reopen, a torn journal tail (crash mid-append), a
//! mid-journal bit flip (rot inside the chain), a lost journal with the
//! format marker intact (salvage-by-scan), and stranded temp files. Each
//! scenario records the full [`RecoveryStats`] plus open latency to
//! `BENCH_recovery_stats.json` (or `--json PATH`) for CI artifact upload.
//! `--check` exits non-zero unless every scenario recovers to a clean,
//! consistent catalog on the second open.

use helix_common::hash::Signature;
use helix_data::{Scalar, Value};
use helix_storage::{MaterializationCatalog, RecoveryStats};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use helix_storage::DiskProfile;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

#[derive(Serialize)]
struct ScenarioReport {
    scenario: String,
    entries_before: u64,
    entries_after: u64,
    open_nanos: u64,
    second_open_clean: bool,
    stats: RecoveryStats,
}

#[derive(Serialize)]
struct RecoveryBenchReport {
    entries: u64,
    scenarios: Vec<ScenarioReport>,
}

impl RecoveryBenchReport {
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("storage recovery exercise ({} seeded entries)\n", self.entries));
        for s in &self.scenarios {
            out.push_str(&format!(
                "  {:<18} {:>4} -> {:>4} entries  open {:>9} ns  tail {:>5} B  stop {:<24} swept {:>2}  clean-reopen {}\n",
                s.scenario,
                s.entries_before,
                s.entries_after,
                s.open_nanos,
                s.stats.journal_tail_bytes,
                s.stats.journal_stop.as_deref().unwrap_or("-"),
                s.stats.swept_files,
                s.second_open_clean,
            ));
        }
        out
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "helix-recovery-bench-{}-{}-{}",
        std::process::id(),
        tag,
        UNIQUE.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&root).expect("temp dir");
    root
}

/// Seed a catalog with `n` entries (plus a few churn removes) and close
/// it cleanly.
fn seed_catalog(root: &Path, n: u64) -> u64 {
    let cat = MaterializationCatalog::open(root, DiskProfile::unthrottled()).expect("seed open");
    for i in 0..n {
        let sig = Signature::of_str(&format!("bench-entry-{i}"));
        let value = Value::Scalar(Scalar::F64(i as f64 * 0.5 + 0.25));
        cat.store_owned(sig, "bench", &format!("node-{i}"), i, &value).expect("seed store");
    }
    // Churn: deprecate every seventh entry so the journal carries Remove
    // frames too.
    for i in (0..n).step_by(7) {
        let sig = Signature::of_str(&format!("bench-entry-{i}"));
        cat.release(sig, "bench").expect("seed release");
    }
    cat.len() as u64
}

fn injure(root: &Path, scenario: &str) {
    let journal = root.join("catalog.journal");
    match scenario {
        "clean" => {}
        "torn-tail" => {
            let mut bytes = std::fs::read(&journal).expect("journal");
            bytes.extend_from_slice(b"HXF3\x03half-a-frame-then-nothing");
            std::fs::write(&journal, &bytes).expect("tear");
        }
        "mid-journal-flip" => {
            let mut bytes = std::fs::read(&journal).expect("journal");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&journal, &bytes).expect("flip");
        }
        "lost-journal" => {
            std::fs::remove_file(&journal).expect("unlink journal");
        }
        "stranded-temps" => {
            std::fs::write(root.join("deadbeef.hxm.tmp-3"), b"stranded").expect("temp");
            std::fs::write(root.join("catalog.journal.tmp-9"), b"stranded").expect("temp");
        }
        other => panic!("unknown scenario {other}"),
    }
}

fn run_scenario(scenario: &str, entries: u64) -> ScenarioReport {
    let root = temp_root(scenario);
    let entries_before = seed_catalog(&root, entries);
    injure(&root, scenario);

    let start = Instant::now();
    let cat = MaterializationCatalog::open(&root, DiskProfile::unthrottled())
        .expect("recovery open must succeed");
    let open_nanos = start.elapsed().as_nanos() as u64;
    let entries_after = cat.len() as u64;
    let stats = cat.recovery_stats().clone();
    drop(cat);

    let again = MaterializationCatalog::open(&root, DiskProfile::unthrottled())
        .expect("second open must succeed");
    let second = again.recovery_stats();
    let second_open_clean = second.journal_stop.is_none()
        && second.journal_tail_bytes == 0
        && second.sweep_failures.is_empty()
        && again.len() as u64 == entries_after;

    ScenarioReport {
        scenario: scenario.to_string(),
        entries_before,
        entries_after,
        open_nanos,
        second_open_clean,
        stats,
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let entries = parse_flag(&args, "--entries").unwrap_or(64);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|ix| args.get(ix + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_recovery_stats.json".to_string());

    let scenarios = ["clean", "torn-tail", "mid-journal-flip", "lost-journal", "stranded-temps"];
    let report = RecoveryBenchReport {
        entries,
        scenarios: scenarios.iter().map(|s| run_scenario(s, entries)).collect(),
    };
    print!("{}", report.render());

    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&json_path, text) {
                eprintln!("warning: cannot write {json_path}: {e}");
            } else {
                println!("wrote {json_path}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize report: {e}"),
    }

    if args.iter().any(|a| a == "--check") {
        let mut failed = false;
        for s in &report.scenarios {
            if !s.second_open_clean {
                eprintln!(
                    "CHECK FAILED: scenario {} did not converge to a clean catalog",
                    s.scenario
                );
                failed = true;
            }
            let expect_full = matches!(s.scenario.as_str(), "clean" | "stranded-temps");
            if expect_full && s.entries_after != s.entries_before {
                eprintln!(
                    "CHECK FAILED: scenario {} lost entries without journal damage ({} -> {})",
                    s.scenario, s.entries_before, s.entries_after
                );
                failed = true;
            }
            if s.scenario == "lost-journal" && !s.stats.salvaged_by_scan {
                eprintln!("CHECK FAILED: lost-journal must salvage by artifact scan");
                failed = true;
            }
            if s.scenario == "torn-tail" && s.stats.journal_tail_bytes == 0 {
                eprintln!("CHECK FAILED: torn-tail must report the dropped tail");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: all scenarios recover to a clean catalog");
    }
}
