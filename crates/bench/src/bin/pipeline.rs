//! Cross-iteration pipelining bench: serial engine vs the pipelined
//! iteration runtime on the census + genomics iterate workloads.
//!
//! ```text
//! pipeline [--iterations K] [--workers W] [--seed S] [--unthrottled]
//!          [--json PATH] [--check] [--min-speedup X]
//! ```
//!
//! Writes machine-readable results to `BENCH_pipeline.json` (or `--json
//! PATH`). `--check` exits non-zero unless byte-identity held (the driver
//! errors on divergence) and the combined speedup reaches `--min-speedup`
//! (default 1.05 under `--check` — conservative enough for a 1-core CI
//! runner; the ≥1.3× acceptance number is measured at 4 workers on the
//! default configuration).

use helix_bench::pipeline::{run_pipeline_bench, PipelineBenchConfig};
use helix_storage::DiskProfile;

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn parse_f64(args: &[String], name: &str) -> Option<f64> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1)).and_then(|v| {
        v.parse()
            .map_err(|_| {
                eprintln!("invalid value for {name}: {v}");
                std::process::exit(2);
            })
            .ok()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = PipelineBenchConfig::default_run();
    if let Some(k) = parse_flag(&args, "--iterations") {
        config.iterations = (k as usize).max(2);
    }
    if let Some(w) = parse_flag(&args, "--workers") {
        config.workers = w as usize;
    }
    if let Some(s) = parse_flag(&args, "--seed") {
        config.seed = s;
    }
    if args.iter().any(|a| a == "--unthrottled") {
        config.disk = DiskProfile::unthrottled();
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|ix| args.get(ix + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let report = match run_pipeline_bench(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pipeline bench failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());

    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&json_path, text) {
                eprintln!("warning: cannot write {json_path}: {e}");
            } else {
                println!("wrote {json_path}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize report: {e}"),
    }

    // With HELIX_TRACE=<path> in the environment, print the compact
    // per-track timeline and export the run's spans as Chrome
    // trace_event JSON (Perfetto-loadable).
    if helix_obs::tracing_enabled() {
        let (events, dropped) = helix_obs::drain_spans();
        print!("{}", helix_obs::render_timeline(&events, dropped));
        if let Some(path) = helix_obs::trace_env_path() {
            match helix_obs::write_trace(&path, &events, dropped) {
                Ok(()) => println!("wrote trace {}", path.display()),
                Err(e) => eprintln!("warning: cannot write HELIX_TRACE file: {e}"),
            }
        }
    }

    if args.iter().any(|a| a == "--check") {
        let min_speedup = parse_f64(&args, "--min-speedup").unwrap_or(1.05);
        if report.combined_speedup < min_speedup {
            eprintln!(
                "CHECK FAILED: combined speedup {:.2}x below the {min_speedup:.2}x floor",
                report.combined_speedup
            );
            std::process::exit(1);
        }
        println!(
            "checks passed: byte-identical outputs/catalogs, combined speedup {:.2}x >= {min_speedup:.2}x",
            report.combined_speedup
        );
    }
}
