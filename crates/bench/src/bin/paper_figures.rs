//! Regenerate every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! paper-figures [--quick] [--json DIR] [exp ...]
//!   exp ∈ {table1, table2, fig5, fig6, fig7a, fig7b, fig8, fig9, fig10, all}
//! ```
//!
//! `--quick` runs the small workload configurations (CI-sized);
//! `--json DIR` additionally writes machine-readable results per figure.

use helix_bench::experiments::{self, ExperimentConfig};
use helix_bench::report;
use std::io::Write;

fn write_json<T: serde::Serialize>(dir: Option<&str>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/{name}.json");
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: cannot write {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir: Option<String> =
        args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let mut requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != json_dir.as_deref())
        .cloned()
        .collect();
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = ["table1", "table2", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::default() };

    // Warm up the process (page cache, allocator) with a throwaway run at
    // full workload scale so the first measured iteration is not inflated
    // by cold-start effects.
    {
        let make = || {
            let mut v = experiments::paper_workloads(&cfg);
            v.swap_remove(0)
        };
        let _ = experiments::run_system(make, experiments::SystemKind::HelixNm, &cfg);
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "HELIX reproduction — paper figure harness ({} mode, {} workers, disk {:?})",
        if quick { "quick" } else { "full" },
        cfg.workers,
        cfg.disk
    )
    .ok();

    // fig5/fig6 share the same underlying runs.
    let needs_fig5 = requested.iter().any(|r| r == "fig5" || r == "fig6");
    let fig5 = if needs_fig5 {
        match experiments::fig5_fig6(&cfg) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("fig5/fig6 failed: {e}");
                None
            }
        }
    } else {
        None
    };

    for exp in &requested {
        let result: Result<String, helix_common::HelixError> = match exp.as_str() {
            "table1" => Ok(report::render_table1()),
            "table2" => Ok(report::render_table2()),
            "fig5" => Ok(fig5.as_ref().map(report::render_fig5).unwrap_or_default()),
            "fig6" => Ok(fig5.as_ref().map(report::render_fig6).unwrap_or_default()),
            "fig7a" => experiments::fig7a(&cfg).map(|f| {
                write_json(json_dir.as_deref(), "fig7a", &f);
                report::render_fig7a(&f)
            }),
            "fig7b" => experiments::fig7b(&cfg).map(|f| {
                write_json(json_dir.as_deref(), "fig7b", &f);
                report::render_fig7b(&f)
            }),
            "fig8" => experiments::fig8(&cfg).map(|f| {
                write_json(json_dir.as_deref(), "fig8", &f);
                report::render_fig8(&f)
            }),
            "fig9" => experiments::fig9(&cfg).map(|f| {
                write_json(json_dir.as_deref(), "fig9", &f);
                report::render_fig9(&f)
            }),
            "fig10" => experiments::fig10(&cfg).map(|f| {
                write_json(json_dir.as_deref(), "fig10", &f);
                report::render_fig10(&f)
            }),
            other => {
                eprintln!("unknown experiment `{other}` (skipping)");
                continue;
            }
        };
        match result {
            Ok(text) => {
                writeln!(out, "{text}").ok();
            }
            Err(e) => eprintln!("{exp} failed: {e}"),
        }
    }
    if let Some(f) = &fig5 {
        write_json(json_dir.as_deref(), "fig5", f);
    }
}
