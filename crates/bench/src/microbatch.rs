//! The intra-node micro-batch co-execution bench: whole-frame operator
//! execution vs the partition-streaming dispatcher
//! (`helix_core::execute_streamed`) on a synthetic text workload sized
//! well past the dispatcher's batch budget.
//!
//! Two passes, both with byte-identity as a driver error (not a separate
//! test):
//!
//! 1. **Dispatcher pass** — tokenization over a fat text column, run
//!    whole-frame and then streamed. From the stream's per-partition
//!    load/compute intervals the driver derives the **overlap**: wall
//!    time where a load lane and a compute lane were busy at once,
//!    `union(load) + union(compute) − union(load ∪ compute)`. It also
//!    checks the memory story: `peak_inflight_bytes` (loaded-but-unmerged
//!    slices, the dispatcher working set) must stay a small fraction of
//!    the dataset — `O(window × batch)`, not `O(dataset)` — on a dataset
//!    at least 4× the batch budget.
//! 2. **Engine pass** — the same data driven through a full
//!    `Session` workflow (csv scan → tokenize) with micro-batching off
//!    and on; outputs and final catalogs must match byte-for-byte,
//!    because batching is an execution detail like worker count.
//!
//! The `microbatch` binary emits `BENCH_microbatch.json`; CI smokes it
//! with `--check` (identity + memory-bound gates; the overlap-*floor*
//! timing gate is disabled there, though overlap must still be nonzero).

use helix_common::timing::Nanos;
use helix_common::{HelixError, Result};
use helix_core::{
    execute_streamed, MatStrategy, Operator, Session, SessionConfig, StreamLabels, Workflow,
};
use helix_data::{ByteSized, FieldValue, Record, RecordBatch, Schema, Value};
use helix_exec::interval_union_nanos;
use helix_obs::{layer, now_nanos, span_at, Registry, RegistrySnapshot};
use helix_storage::encode_value;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct MicrobatchBenchConfig {
    /// Dataset rows.
    pub rows: usize,
    /// Approximate text payload per row (bytes).
    pub row_bytes: usize,
    /// Partition size (rows per micro-batch).
    pub batch_rows: usize,
    /// Compute-lane ceiling for the streamed run.
    pub lanes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl MicrobatchBenchConfig {
    /// The default configuration: 64k rows of ~240-byte text at 1k-row
    /// batches — 64 partitions against a `window = lanes·2 + 2` credit
    /// window, so the dataset is ~6× the dispatcher's batch budget.
    pub fn default_run() -> MicrobatchBenchConfig {
        MicrobatchBenchConfig {
            rows: 64_000,
            row_bytes: 240,
            batch_rows: 1_000,
            lanes: 4,
            seed: 42,
        }
    }

    /// A smaller configuration for CI smoke runs (32 partitions over a
    /// 6-slot window — still ≥ 4× the batch budget).
    pub fn smoke() -> MicrobatchBenchConfig {
        MicrobatchBenchConfig { rows: 16_000, row_bytes: 160, batch_rows: 500, lanes: 2, seed: 42 }
    }

    /// Bytes the dispatcher may hold at peak: a full credit window of
    /// batch slices. The dataset must be ≥ 4× this for the residency
    /// claim to mean anything.
    fn batch_budget_rows(&self) -> usize {
        (self.lanes * 2 + 2) * self.batch_rows
    }
}

/// The whole bench report (serialized to `BENCH_microbatch.json`).
#[derive(Clone, Debug, Serialize)]
pub struct MicrobatchBenchReport {
    /// Dataset rows.
    pub rows: usize,
    /// Dataset bytes (the tokenized column's input batch).
    pub dataset_bytes: u64,
    /// Partition size used.
    pub batch_rows: usize,
    /// Partitions streamed.
    pub partitions: usize,
    /// Compute lanes actually used.
    pub lanes: usize,
    /// In-flight credit window (partitions).
    pub window: usize,
    /// Whole-frame wall clock (ms).
    pub whole_ms: f64,
    /// Streamed wall clock (ms).
    pub streamed_ms: f64,
    /// whole / streamed.
    pub speedup: f64,
    /// Load-lane busy time (ms).
    pub load_busy_ms: f64,
    /// Compute-lane busy time, summed over lanes (ms).
    pub compute_busy_ms: f64,
    /// Wall time where load and compute were simultaneously busy (ms).
    pub overlap_ms: f64,
    /// Fraction of load-lane busy time hidden under compute, in [0, 1].
    pub overlap_ratio: f64,
    /// Peak bytes of loaded-but-unmerged slices in the dispatcher.
    pub peak_inflight_bytes: u64,
    /// dataset_bytes / peak_inflight_bytes — how far below O(dataset)
    /// the dispatcher's working set stayed.
    pub residency_factor: f64,
    /// Engine pass: iterations compared with micro-batching off vs on.
    pub engine_iterations: usize,
    /// Per-partition load/compute latency histograms.
    pub metrics: RegistrySnapshot,
}

impl MicrobatchBenchReport {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "micro-batch co-execution: {} rows ({:.1} MB), {} partitions of {} rows, \
             {} lanes, window {}\n  whole {:>8.2} ms  streamed {:>8.2} ms  speedup {:>5.2}x\n  \
             load busy {:>8.2} ms  compute busy {:>8.2} ms  overlap {:>8.2} ms ({:.1}% of load)\n  \
             peak resident {:.1} KB of {:.1} MB dataset ({:.0}x below whole-frame residency)\n",
            self.rows,
            self.dataset_bytes as f64 / 1e6,
            self.partitions,
            self.batch_rows,
            self.lanes,
            self.window,
            self.whole_ms,
            self.streamed_ms,
            self.speedup,
            self.load_busy_ms,
            self.compute_busy_ms,
            self.overlap_ms,
            self.overlap_ratio * 100.0,
            self.peak_inflight_bytes as f64 / 1e3,
            self.dataset_bytes as f64 / 1e6,
            self.residency_factor,
        )
    }
}

/// Deterministic synthetic text: `words` space-separated tokens drawn
/// from a small vocabulary by a seeded LCG. Pure in (seed, row).
fn synth_text(seed: u64, row: usize, words: usize) -> String {
    const VOCAB: [&str; 12] = [
        "census", "income", "earner", "district", "survey", "cohort", "sample", "region",
        "bracket", "payroll", "tenure", "sector",
    ];
    let mut state = seed ^ ((row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut out = String::new();
    for i in 0..words {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if i > 0 {
            out.push(' ');
        }
        out.push_str(VOCAB[(state >> 33) as usize % VOCAB.len()]);
    }
    out
}

fn synth_batch(config: &MicrobatchBenchConfig) -> Result<RecordBatch> {
    // ~8 bytes per vocabulary word incl. separator.
    let words = (config.row_bytes / 8).max(1);
    let schema = Schema::new(["text"]);
    let rows = (0..config.rows)
        .map(|i| Record::train(vec![FieldValue::Text(synth_text(config.seed, i, words))]))
        .collect();
    RecordBatch::new(schema, rows)
}

/// Encoded outputs of one iteration, name-ordered — the byte-identity
/// fingerprint (same idiom as the pipeline bench).
fn fingerprint(report: &helix_core::IterationReport) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> =
        report.outputs.iter().map(|(name, value)| (name.clone(), encode_value(value))).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// The engine pass: one workflow, two fresh sessions (micro-batching off
/// vs on), byte-identical outputs and catalogs required.
fn engine_pass(config: &MicrobatchBenchConfig) -> Result<usize> {
    let build = |rows: usize, seed: u64| {
        let mut wf = Workflow::new("microbatch-bench");
        let raw = wf.source("raw", 1, move |_| {
            let schema = Schema::new(["line"]);
            let rows = (0..rows)
                .map(|i| {
                    Record::train(vec![FieldValue::Text(format!("{i},{}", synth_text(seed, i, 6)))])
                })
                .collect();
            Ok(Value::records(RecordBatch::new(schema, rows)?))
        });
        let parsed = wf.csv_scan("parsed", raw, &["id", "text"]);
        let tokens = wf.tokenize("tokens", parsed, "text");
        let field = wf.field_extractor("id_units", parsed, "id");
        wf.output(tokens);
        wf.output(field);
        wf
    };
    // Always-materialize keeps the comparison free of wall-timing-coupled
    // elective Opt decisions; micro-batching must not change either side.
    let session_config = SessionConfig::in_memory()
        .with_strategy(MatStrategy::Always)
        .with_workers(config.lanes)
        .with_seed(config.seed);
    let rows = (config.rows / 8).max(256);
    let wf = build(rows, config.seed);

    let mut base = Session::new(session_config.clone().with_microbatch(0))?;
    let mut streamed = Session::new(session_config.with_microbatch(config.batch_rows.max(1) / 4))?;
    let iterations = 2; // initial build + rerun (reuse path)
    for t in 0..iterations {
        let base_fp = fingerprint(&base.run(&wf)?);
        let streamed_fp = fingerprint(&streamed.run(&wf)?);
        if base_fp != streamed_fp {
            return Err(HelixError::exec(
                "microbatch-bench",
                format!("engine outputs diverged with micro-batching on at iteration {t}"),
            ));
        }
    }
    let base_sigs: Vec<String> =
        base.catalog().entries().iter().map(|e| e.signature.clone()).collect();
    let streamed_sigs: Vec<String> =
        streamed.catalog().entries().iter().map(|e| e.signature.clone()).collect();
    if base_sigs != streamed_sigs {
        return Err(HelixError::exec(
            "microbatch-bench",
            "engine catalogs diverged with micro-batching on",
        ));
    }
    Ok(iterations)
}

/// Run the full comparison.
pub fn run_microbatch_bench(config: &MicrobatchBenchConfig) -> Result<MicrobatchBenchReport> {
    if config.rows < 4 * config.batch_budget_rows() {
        return Err(HelixError::exec(
            "microbatch-bench",
            format!(
                "dataset ({} rows) must be >= 4x the batch budget ({} rows) for the \
                 residency claim to be meaningful",
                config.rows,
                config.batch_budget_rows()
            ),
        ));
    }
    let registry = Registry::new();
    let batch = synth_batch(config)?;
    let dataset_bytes = batch.byte_size();
    let inputs = [Arc::new(Value::records(batch))];
    let op = helix_core::ops::extract::TokenizeColumn::new("text");
    let spec = op
        .partitionable()
        .ok_or_else(|| HelixError::exec("microbatch-bench", "tokenize is not partitionable"))?;
    let ctx = helix_core::operator::ExecContext::serial(config.seed);

    // Whole-frame reference.
    let whole_begin = now_nanos();
    let whole_started = Instant::now();
    let whole = op.execute(&inputs, &ctx)?;
    let whole_wall = whole_started.elapsed().as_nanos() as Nanos;

    // Streamed run.
    let streamed_begin = now_nanos();
    let streamed_started = Instant::now();
    let (streamed, stream) = execute_streamed(
        &op,
        &spec,
        &inputs,
        &ctx,
        config.batch_rows,
        config.lanes,
        None,
        &StreamLabels::anonymous(),
    )?;
    let streamed_wall = streamed_started.elapsed().as_nanos() as Nanos;

    // Byte-identity is the bench contract, not a separate test.
    if encode_value(&whole) != encode_value(&streamed) {
        return Err(HelixError::exec(
            "microbatch-bench",
            "streamed output diverged from whole-frame",
        ));
    }

    // Overlap: wall time covered by both a load interval and a compute
    // interval. union(L) + union(C) − union(L ∪ C) is exactly the
    // length of their intersection.
    let load_union = interval_union_nanos(&stream.load_spans);
    let compute_union = interval_union_nanos(&stream.compute_spans);
    let mut all = stream.load_spans.clone();
    all.extend_from_slice(&stream.compute_spans);
    let overlap = (load_union + compute_union).saturating_sub(interval_union_nanos(&all));
    if overlap == 0 {
        return Err(HelixError::exec(
            "microbatch-bench",
            "no load/compute overlap measured — streaming ran serially",
        ));
    }
    // The memory bound is structural (credit window), so it is asserted
    // unconditionally: the dispatcher never held more than a quarter of
    // the dataset (it holds ~window × batch in practice).
    if stream.peak_inflight_bytes.saturating_mul(4) > dataset_bytes {
        return Err(HelixError::exec(
            "microbatch-bench",
            format!(
                "peak resident slice bytes {} not O(batch): more than 1/4 of the {} byte dataset",
                stream.peak_inflight_bytes, dataset_bytes
            ),
        ));
    }

    let engine_iterations = engine_pass(config)?;

    // Per-partition latency histograms ride along in the report.
    let load_hist = registry.histogram("microbatch.partition_load_nanos");
    for (b, e) in &stream.load_spans {
        load_hist.record(e - b);
    }
    let compute_hist = registry.histogram("microbatch.partition_compute_nanos");
    for (b, e) in &stream.compute_spans {
        compute_hist.record(e - b);
    }
    registry.counter("microbatch.partitions").add(stream.partitions as u64);

    // Retrospective spans with the exact measured nanos, so a trace
    // consumer can re-derive the speedup from the exported JSON alone.
    let _ = span_at(layer::BENCH, "whole.wall", whole_begin, whole_wall)
        .track("bench-microbatch")
        .amount(config.rows as u64);
    let _ = span_at(layer::BENCH, "streamed.wall", streamed_begin, streamed_wall)
        .track("bench-microbatch")
        .amount(config.rows as u64);

    Ok(MicrobatchBenchReport {
        rows: config.rows,
        dataset_bytes,
        batch_rows: config.batch_rows,
        partitions: stream.partitions,
        lanes: stream.lanes,
        window: stream.window,
        whole_ms: whole_wall as f64 / 1e6,
        streamed_ms: streamed_wall as f64 / 1e6,
        speedup: whole_wall as f64 / streamed_wall.max(1) as f64,
        load_busy_ms: stream.load_busy_nanos as f64 / 1e6,
        compute_busy_ms: stream.compute_busy_nanos as f64 / 1e6,
        overlap_ms: overlap as f64 / 1e6,
        overlap_ratio: (overlap as f64 / load_union.max(1) as f64).clamp(0.0, 1.0),
        peak_inflight_bytes: stream.peak_inflight_bytes,
        residency_factor: dataset_bytes as f64 / stream.peak_inflight_bytes.max(1) as f64,
        engine_iterations,
        metrics: registry.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_asserts_identity_overlap_and_residency() {
        // Identity, overlap > 0, and the O(batch) residency bound all
        // surface as Err from the driver itself.
        let report = run_microbatch_bench(&MicrobatchBenchConfig::smoke()).unwrap();
        assert_eq!(report.partitions, 32);
        assert!(report.overlap_ms > 0.0);
        assert!((0.0..=1.0).contains(&report.overlap_ratio));
        assert!(report.peak_inflight_bytes * 4 <= report.dataset_bytes);
        assert!(report.residency_factor >= 4.0);
        assert_eq!(report.engine_iterations, 2);
        assert!(report.render().contains("peak resident"));
        let hist = &report.metrics.histograms["microbatch.partition_compute_nanos"];
        assert_eq!(hist.count, 32);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"overlap_ratio\""));
    }

    #[test]
    fn undersized_dataset_is_rejected() {
        let config = MicrobatchBenchConfig { rows: 1_000, ..MicrobatchBenchConfig::smoke() };
        let err = run_microbatch_bench(&config).unwrap_err();
        assert!(format!("{err}").contains("4x the batch budget"), "{err}");
    }

    #[test]
    fn synth_text_is_deterministic() {
        assert_eq!(synth_text(42, 7, 20), synth_text(42, 7, 20));
        assert_ne!(synth_text(42, 7, 20), synth_text(42, 8, 20));
    }
}
