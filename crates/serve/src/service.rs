//! The multi-tenant session service.
//!
//! [`HelixService`] is the long-lived process owner of the shared
//! [`CoreBudget`], the shared [`MaterializationCatalog`], and the
//! admission/scheduling layer. Tenants register with a [`TenantSpec`]
//! (storage quota carved from the global budget, priority, concurrency
//! cap), open any number of [`ServiceSession`]s, and submit iterations
//! which run on background threads:
//!
//! ```text
//! submit ──▶ bounded queue ──▶ scheduler (FIFO-with-priority or
//!                      dominant-resource fair share, per-tenant +
//!                      global caps, one in flight per session)
//!                      ──▶ worker pool (`runner`): park until
//!                      the session is free and a tenant-labeled core
//!                      token grants ──▶ SessionDriver ──▶ fulfill
//!                      ticket
//! ```
//!
//! Core accounting: the runner's base token covers the engine's
//! coordinator; the engine and its data-parallel operators lease any
//! *extra* threads from the same budget non-blockingly, so
//! `CoreBudget::peak_leased() ≤ cores` holds at all times — that is the
//! "no `workers²`" invariant the determinism suite asserts.
//!
//! Storage accounting: `Σ tenant quotas ≤ storage_budget_bytes` is
//! enforced at registration; each tenant's engine checks its own quota
//! (`used_bytes_for`) and mandatory stores evict that tenant's oldest
//! sole-owned artifacts only. The same budget is installed on the shared
//! catalog as its *global* byte cap: when a store would overflow it even
//! with every tenant inside its quota, retention-scored global eviction
//! frees bytes across tenants (popular refcount > 1 artifacts last,
//! pinned in-flight loads never). Sessions carry their *own* seeds: the seed
//! is part of every signature's provenance (`helix_core::track`), so
//! signature-equal artifacts are byte-equal across tenants by
//! construction — seed-dependent nodes key apart, seed-independent
//! prefixes still collide and are shared (see the crate docs for the
//! full determinism argument).

use crate::admission::{AdmissionCaps, AdmissionQueue, Job, QueueSnapshot};
use crate::fairshare::{FairnessAudit, SchedulingPolicy};
use crate::runner::{self, Runner};
use crate::ticket::{JobOutcome, JobTicket, TicketState};
use helix_common::timing::Nanos;
use helix_common::{HelixError, Result, RingLog};
use helix_core::{
    IterationReport, Session, SessionConfig, SessionHandles, SpeculationInputs, Workflow,
};
use helix_exec::CoreBudget;
use helix_storage::EvictionRecord;
use helix_storage::{DiskProfile, MaterializationCatalog, RecoveryStats};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Per-tenant registration: the resources a tenant is entitled to.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Storage quota in bytes, carved out of the service's global budget
    /// at registration time.
    pub quota_bytes: u64,
    /// Scheduling priority (higher wins; FIFO within a priority).
    pub priority: u8,
    /// Maximum iterations this tenant may have running at once.
    pub max_concurrent: usize,
}

impl Default for TenantSpec {
    fn default() -> TenantSpec {
        TenantSpec { quota_bytes: 32 << 20, priority: 0, max_concurrent: 1 }
    }
}

impl TenantSpec {
    /// Builder: set the storage quota.
    #[must_use]
    pub fn with_quota(mut self, bytes: u64) -> TenantSpec {
        self.quota_bytes = bytes;
        self
    }

    /// Builder: set the scheduling priority.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> TenantSpec {
        self.priority = priority;
        self
    }

    /// Builder: set the tenant concurrency cap.
    #[must_use]
    pub fn with_max_concurrent(mut self, cap: usize) -> TenantSpec {
        self.max_concurrent = cap.max(1);
        self
    }
}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Core tokens in the shared budget (the machine's share given to
    /// this service; the paper's "cluster size" across all tenants).
    pub cores: usize,
    /// Global storage budget; tenant quotas are carved from it.
    pub storage_budget_bytes: u64,
    /// Emulated disk characteristics of the shared catalog.
    pub disk: DiskProfile,
    /// Catalog directory; `None` = fresh temp directory.
    pub catalog_dir: Option<PathBuf>,
    /// Bounded submission-queue capacity (submitters block beyond).
    pub queue_capacity: usize,
    /// Iterations allowed to run concurrently across all tenants.
    /// Values above `cores` let iterations queue on the core budget
    /// itself (useful when iterations are I/O-heavy).
    pub max_concurrent_iterations: usize,
    /// *Default* seed for sessions that do not set one of their own.
    ///
    /// Historically this was a service-wide override (every session's
    /// seed was forcibly replaced, because pre-provenance signatures
    /// could not tell artifacts from different seeds apart). Seeds are
    /// now folded into the signature chain, so per-session seeds are
    /// sound: a session keeps the seed its `SessionConfig` sets, and
    /// only an *unset* seed falls back to this value.
    pub seed: u64,
    /// Hysteresis dead band for Algorithm 2 (applied to all sessions).
    pub mat_hysteresis: f64,
    /// How eligible work is ordered across tenants: strict
    /// FIFO-with-priority (the default), or weighted dominant-resource
    /// fairness over cores + catalog storage
    /// ([`SchedulingPolicy::FairShare`]). Scheduling affects only *when*
    /// a tenant's iteration runs, never its bytes, so both policies pass
    /// the same determinism suite.
    pub scheduling: SchedulingPolicy,
}

impl ServiceConfig {
    /// A service over `cores` core tokens with test-friendly defaults.
    pub fn new(cores: usize) -> ServiceConfig {
        let cores = cores.max(1);
        ServiceConfig {
            cores,
            storage_budget_bytes: 256 << 20,
            disk: DiskProfile::unthrottled(),
            catalog_dir: None,
            queue_capacity: 64,
            max_concurrent_iterations: cores * 2,
            // Shared with solo sessions so an unset-seed workflow run
            // in-service and solo stays byte- and signature-identical.
            seed: helix_core::DEFAULT_SEED,
            mat_hysteresis: 0.0,
            scheduling: SchedulingPolicy::Priority,
        }
    }

    /// Builder: set the global storage budget.
    #[must_use]
    pub fn with_storage_budget(mut self, bytes: u64) -> ServiceConfig {
        self.storage_budget_bytes = bytes;
        self
    }

    /// Builder: set the disk profile.
    #[must_use]
    pub fn with_disk(mut self, disk: DiskProfile) -> ServiceConfig {
        self.disk = disk;
        self
    }

    /// Builder: set the catalog directory.
    #[must_use]
    pub fn with_catalog_dir(mut self, dir: impl Into<PathBuf>) -> ServiceConfig {
        self.catalog_dir = Some(dir.into());
        self
    }

    /// Builder: set the default seed for sessions that do not set one.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ServiceConfig {
        self.seed = seed;
        self
    }

    /// Builder: set the submission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder: set the global running-iterations cap.
    #[must_use]
    pub fn with_max_concurrent_iterations(mut self, cap: usize) -> ServiceConfig {
        self.max_concurrent_iterations = cap.max(1);
        self
    }

    /// Builder: set the elective-materialization hysteresis band.
    #[must_use]
    pub fn with_hysteresis(mut self, band: f64) -> ServiceConfig {
        self.mat_hysteresis = band;
        self
    }

    /// Builder: set the scheduling policy.
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: SchedulingPolicy) -> ServiceConfig {
        self.scheduling = scheduling;
        self
    }

    /// Builder: equal-weight dominant-resource fair scheduling.
    #[must_use]
    pub fn with_fair_share(self) -> ServiceConfig {
        self.with_scheduling(SchedulingPolicy::fair())
    }
}

pub(crate) struct TenantState {
    spec: TenantSpec,
    pub(crate) iterations: u64,
    pub(crate) queue_wait_nanos: Nanos,
    pub(crate) run_nanos: Nanos,
    /// Resolved seeds of this tenant's sessions, in open order — sessions
    /// pick their own seeds now, so observability must say which seed
    /// each one actually ran under. Bounded to the most recent
    /// [`helix_common::BOUNDED_LOG_CAP`] opens so a tenant that churns
    /// sessions for the service's lifetime cannot grow this without
    /// limit.
    session_seeds: RingLog<u64>,
}

pub(crate) struct SchedState {
    pub(crate) queue: AdmissionQueue,
    pub(crate) tenants: HashMap<String, TenantState>,
    reserved_quota: u64,
    next_session_id: u64,
}

pub(crate) struct ServiceInner {
    pub(crate) config: ServiceConfig,
    pub(crate) catalog: Arc<MaterializationCatalog>,
    pub(crate) budget: Arc<CoreBudget>,
    pub(crate) sched: Mutex<SchedState>,
    /// The worker pool's parked-state-machine bookkeeping.
    pub(crate) runner: Runner,
    /// Scheduler wake-ups (new work, retired work, shutdown).
    pub(crate) work: Condvar,
    /// Submitters blocked on the bounded queue.
    pub(crate) space: Condvar,
    /// Drain/shutdown waiters.
    pub(crate) idle: Condvar,
}

impl ServiceInner {
    pub(crate) fn sched(&self) -> MutexGuard<'_, SchedState> {
        self.sched.lock().expect("scheduler state poisoned")
    }
}

/// The long-lived multi-tenant service. Dropping it drains in-flight and
/// queued work, then joins the scheduler and the worker pool.
pub struct HelixService {
    inner: Arc<ServiceInner>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HelixService {
    /// Start a service: open (or create) the shared catalog, size the
    /// core budget, and launch the scheduler plus the worker pool
    /// (`min(cores, max_concurrent_iterations)` threads — sessions
    /// beyond that park as state machines instead of holding threads).
    pub fn new(config: ServiceConfig) -> Result<HelixService> {
        let catalog = match &config.catalog_dir {
            Some(dir) => MaterializationCatalog::open(dir, config.disk)?,
            None => MaterializationCatalog::open_temp(config.disk)?,
        };
        let caps = AdmissionCaps {
            queue_capacity: config.queue_capacity,
            max_concurrent_iterations: config.max_concurrent_iterations,
        };
        // The shared catalog carries the service's *global* byte budget:
        // tenant-aware global-pressure eviction activates when the whole
        // store (not just one tenant's quota) is tight.
        catalog.set_global_budget(Some(config.storage_budget_bytes));
        let pool_size = config.cores.min(config.max_concurrent_iterations).max(1);
        let inner = Arc::new(ServiceInner {
            budget: Arc::new(CoreBudget::new(config.cores)),
            catalog: Arc::new(catalog),
            sched: Mutex::new(SchedState {
                queue: AdmissionQueue::with_policy(
                    caps,
                    config.scheduling.clone(),
                    config.cores as u64,
                    config.storage_budget_bytes,
                ),
                tenants: HashMap::new(),
                reserved_quota: 0,
                next_session_id: 0,
            }),
            runner: Runner::new(pool_size),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            config,
        });
        // Core grants wake parked drivers instead of blocked threads: the
        // budget calls this after every release, with no budget lock held.
        {
            let weak = Arc::downgrade(&inner);
            inner.budget.set_release_notifier(Some(Arc::new(move || {
                if let Some(inner) = weak.upgrade() {
                    inner.runner.promote_core_waiters(&inner);
                }
            })));
        }
        let scheduler = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("helix-serve-scheduler".into())
                .spawn(move || scheduler_loop(inner))
                .map_err(|e| HelixError::config(format!("scheduler spawn failed: {e}")))?
        };
        let mut workers = Vec::with_capacity(inner.runner.pool_size());
        for i in 0..inner.runner.pool_size() {
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("helix-serve-worker-{i}"))
                .spawn(move || runner::worker_loop(inner))
                .map_err(|e| HelixError::config(format!("worker spawn failed: {e}")))?;
            workers.push(handle);
        }
        Ok(HelixService { inner, scheduler: Some(scheduler), workers })
    }

    /// The shared core budget (for monitoring and tests).
    pub fn core_budget(&self) -> &Arc<CoreBudget> {
        &self.inner.budget
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<MaterializationCatalog> {
        &self.inner.catalog
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Size of the session-runner worker pool:
    /// `min(cores, max_concurrent_iterations)`, at least 1. Together
    /// with the scheduler thread this is every thread the service owns —
    /// open-loop clients can hold thousands of in-flight sessions
    /// without the thread count moving (the stress bench asserts this).
    pub fn worker_pool_size(&self) -> usize {
        self.inner.runner.pool_size()
    }

    /// Register a tenant, carving its storage quota out of the global
    /// budget. Fails on duplicate names, empty names (reserved for solo
    /// sessions), or quota overflow.
    pub fn register_tenant(&self, name: &str, spec: TenantSpec) -> Result<()> {
        if name.is_empty() {
            return Err(HelixError::config("tenant name must be non-empty"));
        }
        let mut sched = self.inner.sched();
        if sched.tenants.contains_key(name) {
            return Err(HelixError::config(format!("tenant `{name}` already registered")));
        }
        let requested = spec.quota_bytes;
        let available = self.inner.config.storage_budget_bytes.saturating_sub(sched.reserved_quota);
        if requested > available {
            return Err(HelixError::config(format!(
                "tenant `{name}` quota {requested} B exceeds unreserved storage {available} B"
            )));
        }
        sched.reserved_quota += requested;
        sched.tenants.insert(
            name.to_string(),
            TenantState {
                spec,
                iterations: 0,
                queue_wait_nanos: 0,
                run_nanos: 0,
                session_seeds: RingLog::with_default_cap(),
            },
        );
        Ok(())
    }

    /// Open an iterative session for a registered tenant.
    ///
    /// The caller's `config` chooses workers/strategy/reuse/cache policy
    /// *and its own seed* — seeds are folded into signature provenance,
    /// so distinct-seed tenants share exactly the artifacts that
    /// genuinely match. A config that leaves the seed unset inherits the
    /// service default ([`ServiceConfig::seed`]). The service still
    /// overrides what sharing requires: catalog and disk (the shared
    /// store), storage budget (the tenant's quota), and hysteresis.
    pub fn open_session(&self, tenant: &str, config: SessionConfig) -> Result<ServiceSession> {
        let seed = config.seed.unwrap_or(self.inner.config.seed);
        let (quota, session_id) = {
            let mut sched = self.inner.sched();
            let state = sched
                .tenants
                .get_mut(tenant)
                .ok_or_else(|| HelixError::not_found("tenant", tenant))?;
            let quota = state.spec.quota_bytes;
            state.session_seeds.push(seed);
            let id = sched.next_session_id;
            sched.next_session_id += 1;
            (quota, id)
        };
        let config = SessionConfig {
            storage_budget_bytes: quota,
            disk: self.inner.config.disk,
            catalog_dir: None,
            seed: Some(seed),
            mat_hysteresis: self.inner.config.mat_hysteresis,
            ..config
        };
        let handles = SessionHandles {
            catalog: Arc::clone(&self.inner.catalog),
            core_budget: Some(Arc::clone(&self.inner.budget)),
            tenant: tenant.to_string(),
        };
        let session = Arc::new(Mutex::new(Session::with_handles(config, handles)));
        Ok(ServiceSession {
            inner: Arc::clone(&self.inner),
            session,
            spec_slot: Arc::new(Mutex::new(None)),
            session_id,
            tenant: tenant.to_string(),
        })
    }

    /// Block until no work is queued or running.
    pub fn drain(&self) {
        let mut sched = self.inner.sched();
        while !sched.queue.is_drained() {
            sched = self.inner.idle.wait(sched).expect("scheduler state poisoned");
        }
    }

    /// Point-in-time admission state.
    pub fn queue_snapshot(&self) -> QueueSnapshot {
        self.inner.sched().queue.snapshot()
    }

    /// Aggregate service statistics (scheduling + catalog + cores).
    pub fn stats(&self) -> ServiceStats {
        let sched = self.inner.sched();
        let names: Vec<String> = sched.tenants.keys().cloned().collect();
        let mut tenants = BTreeMap::new();
        for name in names {
            let owner = self.inner.catalog.owner_stats(&name);
            let owned_bytes = self.inner.catalog.used_bytes_for(&name);
            let dominant_share = sched.queue.dominant_share(&name, owned_bytes);
            let weight = sched.queue.weight_of(&name);
            let state = &sched.tenants[&name];
            tenants.insert(
                name.clone(),
                TenantStats {
                    iterations: state.iterations,
                    queue_wait_nanos: state.queue_wait_nanos,
                    run_nanos: state.run_nanos,
                    self_hits: owner.self_hits,
                    cross_hits: owner.cross_hits,
                    stored_bytes: owner.stored_bytes,
                    quota_evictions: owner.quota_evictions,
                    global_evictions: owner.global_evictions,
                    owned_bytes,
                    quota_bytes: state.spec.quota_bytes,
                    session_seeds: state.session_seeds.to_vec(),
                    dominant_share,
                    weight,
                    peak_cores_leased: self.inner.budget.peak_leased_for(&name),
                },
            );
        }
        ServiceStats {
            tenants,
            cores_total: self.inner.budget.total(),
            cores_leased: self.inner.budget.leased(),
            peak_cores_leased: self.inner.budget.peak_leased(),
            catalog_bytes: self.inner.catalog.total_bytes(),
            catalog_artifacts: self.inner.catalog.len(),
            queue: sched.queue.snapshot(),
            scheduling: self.inner.config.scheduling.clone(),
            fairness: sched.queue.fairness(),
            evictions: self.inner.catalog.eviction_log(),
            catalog_recovery: self.inner.catalog.recovery_stats().clone(),
        }
    }
}

impl Drop for HelixService {
    fn drop(&mut self) {
        {
            let mut sched = self.inner.sched();
            sched.queue.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.space.notify_all();
        // Graceful drain: queued work still runs; new submissions fail.
        // The worker pool keeps running through the drain (a drained
        // queue means no job is queued, dispatched, or parked).
        self.drain();
        self.inner.work.notify_all();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        self.inner.runner.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Unhook the grant notifier last: nothing is left to promote.
        self.inner.budget.set_release_notifier(None);
    }
}

/// One tenant's session handle: submit iterations, await tickets.
///
/// Iterations of one session always run one-at-a-time in submission
/// order (the session is stateful across iterations); sessions of the
/// same or different tenants run concurrently up to the admission caps.
pub struct ServiceSession {
    inner: Arc<ServiceInner>,
    session: Arc<Mutex<Session>>,
    /// Speculation-snapshot mailbox shared with this session's jobs: an
    /// iteration entering execution publishes here; its successor takes
    /// it and plans ahead while the incumbent still runs.
    spec_slot: Arc<Mutex<Option<SpeculationInputs>>>,
    session_id: u64,
    tenant: String,
}

impl ServiceSession {
    /// The owning tenant.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submit one iteration; blocks only while the bounded queue is full.
    pub fn submit(&self, wf: Workflow) -> Result<JobTicket> {
        let ticket = TicketState::new();
        {
            let mut sched = self.inner.sched();
            loop {
                if sched.queue.shutdown {
                    return Err(HelixError::config("service is shutting down"));
                }
                if sched.queue.has_space() {
                    break;
                }
                sched = self.inner.space.wait(sched).expect("scheduler state poisoned");
            }
            let (priority, cap) = {
                let state = sched
                    .tenants
                    .get(&self.tenant)
                    .ok_or_else(|| HelixError::not_found("tenant", &*self.tenant))?;
                (state.spec.priority, state.spec.max_concurrent)
            };
            sched.queue.enqueue(Job {
                seq: 0,
                priority,
                tenant: self.tenant.clone(),
                tenant_max_concurrent: cap,
                session_id: self.session_id,
                session: Arc::clone(&self.session),
                spec_slot: Arc::clone(&self.spec_slot),
                wf,
                ticket: Arc::clone(&ticket),
                enqueued: Instant::now(),
            });
        }
        self.inner.work.notify_all();
        Ok(JobTicket { state: ticket, service: Arc::downgrade(&self.inner) })
    }

    /// Submit a batch of iterations in order, returning one ticket per
    /// workflow. Equivalent to calling [`submit`](Self::submit) once per
    /// workflow: iterations of this session still retire in submission
    /// order, and the call blocks whenever the bounded queue is full —
    /// batch submitters get backpressure, not unbounded queues. Tickets
    /// pair with the non-blocking surface ([`JobTicket::try_outcome`] /
    /// [`JobTicket::wait_timeout`]) for open-loop drivers that submit
    /// thousands of iterations before collecting any.
    pub fn submit_all(&self, wfs: impl IntoIterator<Item = Workflow>) -> Result<Vec<JobTicket>> {
        wfs.into_iter().map(|wf| self.submit(wf)).collect()
    }

    /// Submit one iteration and block for its report.
    pub fn run_iteration(&self, wf: Workflow) -> Result<IterationReport> {
        self.submit(wf)?.wait()
    }

    /// Iterations this session has completed.
    pub fn iterations_run(&self) -> u64 {
        lock_session(&self.session).iterations_run()
    }
}

/// Sessions survive a panicked iteration (the runner converts panics to
/// errors); ignore mutex poisoning accordingly.
pub(crate) fn lock_session(session: &Mutex<Session>) -> MutexGuard<'_, Session> {
    match session.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cancel a still-queued job by its ticket: remove it from the admission
/// queue and fulfill the ticket as cancelled. Returns `false` when the
/// job already dispatched (it will finish its iteration) or already
/// completed. Backs [`JobTicket::cancel`].
pub(crate) fn cancel_queued(inner: &ServiceInner, ticket: &Arc<TicketState>) -> bool {
    let removed = inner.sched().queue.remove_queued(ticket);
    let Some(job) = removed else { return false };
    // A queue slot freed and possibly the last job left the system.
    inner.space.notify_all();
    inner.idle.notify_all();
    job.ticket.fulfill(JobOutcome {
        result: Err(HelixError::exec("admission", "iteration cancelled before dispatch")),
        queue_wait_nanos: job.enqueued.elapsed().as_nanos() as Nanos,
        run_nanos: 0,
        cancelled: true,
    });
    true
}

fn scheduler_loop(inner: Arc<ServiceInner>) {
    let pick_hist = helix_obs::metrics::global().histogram("serve.pick_nanos");
    // Memoized ledger refresh: `(byte epoch, tenant set)` of the last
    // `set_tenant_bytes` walk. Pick rounds are frequent (every submit,
    // completion, and requeue wakes the loop) while byte accounting
    // changes only on store/claim/release/evict — the catalog's dirty
    // epoch tells the rounds apart, so unchanged rounds skip the walk
    // entirely and the pick hot path flattens to one epoch read.
    let mut last_refresh: Option<(u64, Vec<String>)> = None;
    loop {
        let job = {
            let mut sched = inner.sched();
            loop {
                let pick_started = std::time::Instant::now();
                // Refresh the DRF ledger's storage side before deciding:
                // dominant shares fold in each competing tenant's current
                // catalog charge — one batched catalog-lock hold for all
                // queued tenants. (The catalog has its own lock and never
                // takes the scheduler's, so this nesting is cycle-free.)
                let tenants = sched.queue.queued_tenants();
                if !tenants.is_empty() {
                    let epoch = inner.catalog.dirty_epoch();
                    let stale =
                        last_refresh.as_ref().is_none_or(|(e, t)| *e != epoch || *t != tenants);
                    if stale {
                        let bytes = inner.catalog.used_bytes_for_many(&tenants);
                        sched.queue.set_tenant_bytes(&tenants, &bytes);
                        last_refresh = Some((epoch, tenants));
                    }
                }
                let picked = sched.queue.pick();
                pick_hist.record(helix_common::timing::duration_to_nanos(pick_started.elapsed()));
                if let Some(job) = picked {
                    break Some(job);
                }
                if sched.queue.shutdown && sched.queue.is_drained() {
                    break None;
                }
                sched = inner.work.wait(sched).expect("scheduler state poisoned");
            }
        };
        let Some(job) = job else { return };
        // The pick freed a queue slot: wake submitters blocked on the
        // bounded queue now, not when the iteration eventually finishes.
        inner.space.notify_all();
        // The pick decided *which* session advances; the worker pool
        // decides *where*. The job becomes a parked state machine in the
        // runner — no per-job thread, no spawn-failure fallback.
        inner.runner.submit(job);
    }
}

/// Point-in-time statistics for one tenant.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TenantStats {
    /// Iterations completed.
    pub iterations: u64,
    /// Total time jobs spent queued before dispatch.
    pub queue_wait_nanos: Nanos,
    /// Total time inside `Session::run`.
    pub run_nanos: Nanos,
    /// Catalog loads served by this tenant's own artifacts.
    pub self_hits: u64,
    /// Catalog loads served by *other* tenants' artifacts.
    pub cross_hits: u64,
    /// Bytes this tenant has written to the catalog (lifetime).
    pub stored_bytes: u64,
    /// Artifacts evicted to keep this tenant inside its quota.
    pub quota_evictions: u64,
    /// Artifacts this tenant had a claim on that fell to global-pressure
    /// eviction (possibly triggered by another tenant's store).
    pub global_evictions: u64,
    /// Bytes currently charged against the tenant's quota.
    pub owned_bytes: u64,
    /// The tenant's quota.
    pub quota_bytes: u64,
    /// Resolved seed of each of this tenant's most recent sessions (up
    /// to 64), in open order. Seeds are per-session (folded into
    /// signature provenance); a session that left its seed unset shows
    /// the service default here.
    pub session_seeds: Vec<u64>,
    /// The tenant's weighted dominant share right now (the fair-share
    /// scheduler's ordering key): max of its executing-core and
    /// catalog-byte fractions, divided by its weight.
    pub dominant_share: f64,
    /// The tenant's DRF weight (1 unless configured).
    pub weight: u32,
    /// High-water mark of base core tokens this tenant's runners held
    /// simultaneously (per-tenant executing-core lease accounting).
    pub peak_cores_leased: usize,
}

impl TenantStats {
    /// Fraction of this tenant's loads served by other tenants' artifacts.
    pub fn cross_hit_rate(&self) -> f64 {
        let loads = self.self_hits + self.cross_hits;
        if loads == 0 {
            return 0.0;
        }
        self.cross_hits as f64 / loads as f64
    }
}

/// Aggregate service statistics.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServiceStats {
    /// Per-tenant breakdown, name-ordered.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Tokens in the core budget.
    pub cores_total: usize,
    /// Tokens leased right now.
    pub cores_leased: usize,
    /// High-water mark of leased tokens — must never exceed
    /// `cores_total` (the no-`workers²` invariant).
    pub peak_cores_leased: usize,
    /// Physical catalog footprint.
    pub catalog_bytes: u64,
    /// Artifact count.
    pub catalog_artifacts: usize,
    /// Admission state.
    pub queue: QueueSnapshot,
    /// The scheduling policy in force.
    pub scheduling: SchedulingPolicy,
    /// Scheduler-event fairness audit (maintained under both policies;
    /// under `FairShare`, `non_drf_picks == 0` by construction).
    pub fairness: FairnessAudit,
    /// The bounded eviction-attribution log (quota + global-pressure
    /// events, most recent 64).
    pub evictions: Vec<EvictionRecord>,
    /// What the catalog's journal recovery found and repaired when this
    /// service opened its store — torn tails truncated, entries dropped,
    /// files swept, sweep failures, and the disk-vs-accounting
    /// reconciliation. Operators watch this after a crash: a non-empty
    /// `sweep_failures` or a large `journal_tail_bytes` is the earliest
    /// signal of storage trouble.
    pub catalog_recovery: RecoveryStats,
}

impl ServiceStats {
    /// Service-wide cross-tenant hit rate across all tenants' loads.
    pub fn cross_hit_rate(&self) -> f64 {
        let (cross, total) = self
            .tenants
            .values()
            .fold((0u64, 0u64), |(c, t), s| (c + s.cross_hits, t + s.self_hits + s.cross_hits));
        if total == 0 {
            return 0.0;
        }
        cross as f64 / total as f64
    }

    /// The full stats tree as a JSON value, ready for
    /// [`serde::write_json`] / [`serde::write_json_compact`]. Dashboards
    /// and the bench drivers use this; nothing in the service reads it
    /// back.
    pub fn to_json(&self) -> serde::Json {
        serde::Serialize::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::{Scalar, Value};

    /// Busy-wait so compute dominates load costs and reuse is decisive.
    fn spin(millis: u64) {
        let until = Instant::now() + std::time::Duration::from_millis(millis);
        while Instant::now() < until {
            std::hint::spin_loop();
        }
    }

    /// A three-node chain, parameterized so tests can share or diverge.
    fn chain(version: u64) -> Workflow {
        let mut wf = Workflow::new("chain");
        let a = wf.source("a", 1, |_| {
            spin(3);
            Ok(Value::Scalar(Scalar::I64(10)))
        });
        let b = wf.reduce("b", a, version, move |v, _| {
            spin(3);
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x * version as f64)))
        });
        let c = wf.reduce("c", b, 1, |v, _| {
            spin(3);
            let x = v.as_scalar()?.as_f64().unwrap_or(0.0);
            Ok(Value::Scalar(Scalar::F64(x + 1.0)))
        });
        wf.output(c);
        wf
    }

    fn service(cores: usize) -> HelixService {
        HelixService::new(ServiceConfig::new(cores)).expect("service starts")
    }

    #[test]
    fn single_tenant_round_trip() {
        let svc = service(2);
        svc.register_tenant("alice", TenantSpec::default()).unwrap();
        let session = svc.open_session("alice", SessionConfig::in_memory()).unwrap();
        let report = session.run_iteration(chain(1)).unwrap();
        assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(11.0));
        assert_eq!(session.iterations_run(), 1);
        let stats = svc.stats();
        assert_eq!(stats.tenants["alice"].iterations, 1);
        assert!(stats.peak_cores_leased <= stats.cores_total);
    }

    #[test]
    fn unknown_or_duplicate_tenants_are_rejected() {
        let svc = service(1);
        assert!(svc.open_session("ghost", SessionConfig::in_memory()).is_err());
        assert!(svc.register_tenant("", TenantSpec::default()).is_err(), "empty name reserved");
        svc.register_tenant("a", TenantSpec::default()).unwrap();
        assert!(svc.register_tenant("a", TenantSpec::default()).is_err(), "duplicate");
    }

    #[test]
    fn quota_carving_respects_the_global_budget() {
        let svc = HelixService::new(ServiceConfig::new(1).with_storage_budget(100))
            .expect("service starts");
        svc.register_tenant("a", TenantSpec::default().with_quota(60)).unwrap();
        assert!(
            svc.register_tenant("b", TenantSpec::default().with_quota(60)).is_err(),
            "60 + 60 > 100: second carve must fail"
        );
        svc.register_tenant("b", TenantSpec::default().with_quota(40)).unwrap();
    }

    #[test]
    fn per_session_seeds_survive_open_and_are_surfaced() {
        let svc = HelixService::new(ServiceConfig::new(1).with_seed(7)).expect("service starts");
        svc.register_tenant("a", TenantSpec::default()).unwrap();
        svc.register_tenant("b", TenantSpec::default()).unwrap();
        // `a` picks its own seed; `b` leaves it unset → service default.
        let _a = svc.open_session("a", SessionConfig::in_memory().with_seed(1)).unwrap();
        let _a2 = svc.open_session("a", SessionConfig::in_memory().with_seed(2)).unwrap();
        let _b = svc.open_session("b", SessionConfig::in_memory()).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.tenants["a"].session_seeds, vec![1, 2], "explicit seeds kept");
        assert_eq!(stats.tenants["b"].session_seeds, vec![7], "unset seed takes the default");
    }

    #[test]
    fn distinct_seed_tenants_share_deterministic_workflows_fully() {
        // `chain` has no stochastic operator, so its signatures are
        // seed-independent end to end: two tenants on different seeds
        // must still reuse each other's artifacts completely.
        let svc = service(2);
        svc.register_tenant("alice", TenantSpec::default()).unwrap();
        svc.register_tenant("bob", TenantSpec::default()).unwrap();
        let alice = svc
            .open_session("alice", SessionConfig::in_memory().with_seed(100))
            .expect("session opens");
        let bob = svc
            .open_session("bob", SessionConfig::in_memory().with_seed(200))
            .expect("session opens");
        alice.run_iteration(chain(1)).unwrap();
        let b_report = bob.run_iteration(chain(1)).unwrap();
        assert_eq!(b_report.metrics.computed, 0, "deterministic chain shared across seeds");
        assert!(b_report.metrics.cross_loaded > 0);
        assert_eq!(b_report.output_scalar("c").unwrap().as_f64(), Some(11.0));
    }

    #[test]
    fn cross_tenant_reuse_on_identical_workflows() {
        let svc = service(2);
        svc.register_tenant("alice", TenantSpec::default()).unwrap();
        svc.register_tenant("bob", TenantSpec::default()).unwrap();
        let alice = svc.open_session("alice", SessionConfig::in_memory()).unwrap();
        let bob = svc.open_session("bob", SessionConfig::in_memory()).unwrap();

        let a_report = alice.run_iteration(chain(1)).unwrap();
        let b_report = bob.run_iteration(chain(1)).unwrap();
        assert_eq!(
            a_report.output_scalar("c").unwrap().as_f64(),
            b_report.output_scalar("c").unwrap().as_f64()
        );
        assert!(
            b_report.metrics.cross_loaded > 0,
            "bob must load alice's artifacts, not recompute"
        );
        assert_eq!(b_report.metrics.computed, 0, "nothing to compute on a shared prefix");
        let stats = svc.stats();
        assert!(stats.tenants["bob"].cross_hits > 0);
        assert!(stats.cross_hit_rate() > 0.0);
        assert_eq!(stats.tenants["alice"].cross_hits, 0, "producer pays, consumer reuses");
    }

    #[test]
    fn one_tenant_deprecating_does_not_break_the_other() {
        let svc = service(2);
        svc.register_tenant("alice", TenantSpec::default()).unwrap();
        svc.register_tenant("bob", TenantSpec::default()).unwrap();
        let alice = svc.open_session("alice", SessionConfig::in_memory()).unwrap();
        let bob = svc.open_session("bob", SessionConfig::in_memory()).unwrap();

        alice.run_iteration(chain(1)).unwrap();
        bob.run_iteration(chain(1)).unwrap();
        // Alice changes operator b: her old downstream artifacts are
        // deprecated *for her*; bob's rerun must still load, not compute.
        alice.run_iteration(chain(2)).unwrap();
        let bob_rerun = bob.run_iteration(chain(1)).unwrap();
        assert_eq!(bob_rerun.metrics.computed, 0, "bob's artifacts must survive alice's purge");
        assert_eq!(bob_rerun.output_scalar("c").unwrap().as_f64(), Some(11.0));
    }

    #[test]
    fn concurrent_submissions_from_many_tenants_all_complete() {
        let svc = service(2);
        for t in 0..4 {
            svc.register_tenant(&format!("t{t}"), TenantSpec::default().with_max_concurrent(1))
                .unwrap();
        }
        let sessions: Vec<ServiceSession> = (0..4)
            .map(|t| svc.open_session(&format!("t{t}"), SessionConfig::in_memory()).unwrap())
            .collect();
        // Two iterations per tenant, all submitted before any waits.
        let tickets: Vec<(usize, JobTicket)> = (0..2)
            .flat_map(|_| {
                sessions
                    .iter()
                    .enumerate()
                    .map(|(ix, s)| (ix, s.submit(chain(1)).unwrap()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (ix, ticket) in tickets {
            let outcome = ticket.wait_outcome();
            let report = outcome.result.expect("iteration succeeds");
            assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(11.0), "tenant {ix}");
        }
        let stats = svc.stats();
        assert_eq!(stats.tenants.values().map(|t| t.iterations).sum::<u64>(), 8);
        assert!(
            stats.peak_cores_leased <= stats.cores_total,
            "peak {} > budget {}",
            stats.peak_cores_leased,
            stats.cores_total
        );
        assert_eq!(stats.queue.running, 0);
        svc.drain();
    }

    #[test]
    fn failed_iterations_report_errors_and_free_the_session() {
        let svc = service(1);
        svc.register_tenant("t", TenantSpec::default()).unwrap();
        let session = svc.open_session("t", SessionConfig::in_memory()).unwrap();

        let mut bad = Workflow::new("bad");
        let x =
            bad.source("x", 1, |_| Err(helix_common::HelixError::exec("x", "synthetic failure")));
        bad.output(x);
        let err = match session.run_iteration(bad) {
            Err(err) => err,
            Ok(_) => panic!("failing workflow must error"),
        };
        assert!(format!("{err}").contains("synthetic failure"));
        // The session is not wedged: a good iteration still runs.
        let ok = session.run_iteration(chain(1)).unwrap();
        assert_eq!(ok.output_scalar("c").unwrap().as_f64(), Some(11.0));
    }

    #[test]
    fn fair_share_service_drains_a_heavy_backlog_without_drf_deviations() {
        let svc = HelixService::new(
            ServiceConfig::new(1).with_fair_share().with_max_concurrent_iterations(2),
        )
        .expect("service starts");
        // Priority 3 would let `heavy` starve `light` under the old
        // policy; fair share ignores it.
        svc.register_tenant("heavy", TenantSpec::default().with_max_concurrent(4).with_priority(3))
            .unwrap();
        svc.register_tenant("light", TenantSpec::default()).unwrap();
        let heavy: Vec<ServiceSession> = (0..2)
            .map(|_| svc.open_session("heavy", SessionConfig::in_memory()).unwrap())
            .collect();
        let light = svc.open_session("light", SessionConfig::in_memory()).unwrap();
        let mut tickets = Vec::new();
        for session in &heavy {
            for version in [1u64, 2] {
                tickets.push(session.submit(chain(version)).unwrap());
            }
        }
        tickets.push(light.submit(chain(1)).unwrap());
        for ticket in tickets {
            ticket.wait().expect("iteration succeeds");
        }
        let stats = svc.stats();
        assert!(stats.scheduling.is_fair());
        assert_eq!(stats.fairness.non_drf_picks, 0, "fair picks are the DRF choice");
        assert_eq!(stats.fairness.max_share_gap, 0.0);
        assert_eq!(stats.fairness.picks, 5);
        assert_eq!(stats.tenants["heavy"].weight, 1);
        assert!(stats.tenants["light"].dominant_share >= 0.0);
        assert!(stats.tenants["heavy"].peak_cores_leased <= stats.cores_total);
        assert_eq!(stats.tenants.values().map(|t| t.iterations).sum::<u64>(), 5);
    }

    #[test]
    fn tight_global_budget_evicts_with_attribution_but_keeps_results_correct() {
        use helix_storage::EvictionKind;
        let svc = service(2);
        // Force global pressure on every store (a scalar artifact is
        // bigger than this), while per-tenant quotas stay roomy — this is
        // exactly the regime quota eviction alone cannot handle.
        svc.catalog().set_global_budget(Some(64));
        svc.register_tenant("alice", TenantSpec::default()).unwrap();
        svc.register_tenant("bob", TenantSpec::default()).unwrap();
        let alice = svc.open_session("alice", SessionConfig::in_memory()).unwrap();
        let bob = svc.open_session("bob", SessionConfig::in_memory()).unwrap();
        for version in 1..=3u64 {
            let expect = 10.0 * version as f64 + 1.0;
            let a = alice.run_iteration(chain(version)).unwrap();
            assert_eq!(a.output_scalar("c").unwrap().as_f64(), Some(expect));
            let b = bob.run_iteration(chain(version)).unwrap();
            assert_eq!(b.output_scalar("c").unwrap().as_f64(), Some(expect));
        }
        let stats = svc.stats();
        assert!(
            stats.evictions.iter().any(|e| e.kind == EvictionKind::GlobalPressure),
            "global-pressure evictions must be logged: {:?}",
            stats.evictions
        );
        assert!(
            stats.tenants.values().any(|t| t.global_evictions > 0),
            "evictions must be attributed to owners"
        );
        assert!(stats.evictions.len() <= 64, "attribution log is bounded");
    }

    #[test]
    fn service_stats_surface_catalog_crash_recovery() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "helix-serve-recovery-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // A prior service run leaves a catalog behind...
        {
            let svc = HelixService::new(ServiceConfig::new(1).with_catalog_dir(&dir)).unwrap();
            svc.register_tenant("t", TenantSpec::default()).unwrap();
            let session = svc.open_session("t", SessionConfig::in_memory()).unwrap();
            session.run_iteration(chain(1)).unwrap();
        }
        // ...whose journal is torn mid-append by a crash.
        let journal = dir.join("catalog.journal");
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(b"HXF3\x03torn-mid-append");
        std::fs::write(&journal, &bytes).unwrap();

        let svc = HelixService::new(ServiceConfig::new(1).with_catalog_dir(&dir)).unwrap();
        let recovery = svc.stats().catalog_recovery.clone();
        assert!(recovery.recovered, "the torn tail must be reported as repaired");
        assert!(recovery.journal_tail_bytes > 0);
        assert!(recovery.journal_stop.is_some());
        assert_eq!(recovery.sweep_failures.len(), 0);
        // The committed prefix survived: artifacts are still servable.
        svc.register_tenant("t", TenantSpec::default()).unwrap();
        let session = svc.open_session("t", SessionConfig::in_memory()).unwrap();
        let report = session.run_iteration(chain(1)).unwrap();
        assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(11.0));
    }

    #[test]
    fn shutdown_rejects_new_submissions_but_drains_queued_work() {
        let svc = service(1);
        svc.register_tenant("t", TenantSpec::default()).unwrap();
        let session = svc.open_session("t", SessionConfig::in_memory()).unwrap();
        let ticket = session.submit(chain(1)).unwrap();
        drop(svc);
        let report = ticket.wait_outcome().result.expect("queued job still ran");
        assert_eq!(report.output_scalar("c").unwrap().as_f64(), Some(11.0));
        assert!(session.submit(chain(1)).is_err(), "service is gone");
    }

    /// A workflow whose source blocks until `flag` is raised — pins a
    /// worker in the execute phase so queued-behind jobs stay queued.
    fn gated(flag: &'static std::sync::atomic::AtomicBool) -> Workflow {
        use std::sync::atomic::Ordering;
        let mut wf = Workflow::new("gated");
        let x = wf.source("x", 1, move |_| {
            while !flag.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(Value::Scalar(Scalar::I64(1)))
        });
        wf.output(x);
        wf
    }

    #[test]
    fn cancel_dequeues_only_undispatched_jobs() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static GATE: AtomicBool = AtomicBool::new(false);
        // One core, one dispatch slot: the gated job occupies the slot,
        // so the second tenant's job cannot leave the queue.
        let svc = HelixService::new(ServiceConfig::new(1).with_max_concurrent_iterations(1))
            .expect("service starts");
        svc.register_tenant("a", TenantSpec::default()).unwrap();
        svc.register_tenant("b", TenantSpec::default()).unwrap();
        let a = svc.open_session("a", SessionConfig::in_memory()).unwrap();
        let b = svc.open_session("b", SessionConfig::in_memory()).unwrap();
        let running = a.submit(gated(&GATE)).unwrap();
        // Wait until the gated job actually occupies the dispatch slot —
        // only then is "still queued" deterministic for the second job.
        while svc.stats().queue.running == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let queued = b.submit(chain(1)).unwrap();
        assert!(queued.cancel(), "a job still in the admission queue cancels");
        let outcome = queued.try_outcome().expect("cancelled ticket fulfills immediately");
        assert!(outcome.cancelled);
        assert!(outcome.result.is_err(), "a cancelled job reports an error result");
        assert_eq!(outcome.run_nanos, 0, "it never ran");
        assert!(!queued.cancel(), "second cancel finds nothing to remove");
        GATE.store(true, Ordering::Release);
        assert!(!running.cancel(), "a dispatched job is past cancellation");
        running.wait().expect("the gated job finishes normally");
        let stats = svc.stats();
        assert_eq!(stats.tenants["a"].iterations, 1);
        assert_eq!(stats.tenants["b"].iterations, 0, "cancelled work never counts");
    }

    #[test]
    fn try_outcome_and_wait_timeout_never_block_past_their_deadline() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static GATE: AtomicBool = AtomicBool::new(false);
        let svc = service(1);
        svc.register_tenant("t", TenantSpec::default()).unwrap();
        let session = svc.open_session("t", SessionConfig::in_memory()).unwrap();
        let ticket = session.submit(gated(&GATE)).unwrap();
        assert!(ticket.try_outcome().is_none(), "nothing to take while blocked");
        assert!(
            ticket.wait_timeout(std::time::Duration::from_millis(20)).is_none(),
            "deadline passes while the job is gated"
        );
        assert!(!ticket.is_done());
        GATE.store(true, Ordering::Release);
        let outcome = ticket
            .wait_timeout(std::time::Duration::from_secs(60))
            .expect("ungated job completes well inside the deadline");
        assert!(outcome.result.is_ok());
        assert!(!outcome.cancelled);
        assert!(ticket.try_outcome().is_none(), "an outcome is taken exactly once");
    }

    #[test]
    fn submit_all_preserves_per_session_order() {
        let svc = service(2);
        svc.register_tenant("t", TenantSpec::default()).unwrap();
        let session = svc.open_session("t", SessionConfig::in_memory()).unwrap();
        let tickets = session.submit_all([chain(1), chain(2), chain(3)]).unwrap();
        assert_eq!(tickets.len(), 3);
        let values: Vec<f64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().output_scalar("c").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(values, vec![11.0, 21.0, 31.0]);
        assert_eq!(svc.stats().tenants["t"].iterations, 3);
    }
}
