//! The pooled session runner: many parked state machines, few threads.
//!
//! The scheduler's pick (admission + DRF/priority, unchanged) decides
//! *which* job dispatches next; this module decides *where it runs*. A
//! dispatched job becomes a [`RunnerJob`] — a parked
//! [`SessionDriver`](helix_core::SessionDriver) plus everything it holds
//! so far — and a fixed pool of `min(cores, max_concurrent_iterations)`
//! worker threads drives the jobs through their phases:
//!
//! ```text
//!   pick ─▶ ready ─▶ speculate ─▶ claim session ─▶ acquire core ─▶ run
//!                      (once)       │ busy?            │ exhausted?
//!                                   ▼                  ▼
//!                            session_waiters      core_waiters
//!                             (≤1 / session)         (FIFO)
//!                                   │                  │
//!                      owner finishes┘    budget release┘ (notifier)
//!                                   └──────▶ ready ◀──────┘
//! ```
//!
//! A job that cannot make progress **parks** — it goes into a waiter
//! collection and its worker moves on to other ready work, so a session
//! between grants costs memory, not an OS thread. Two wake sources
//! promote parked jobs back to the ready queue:
//!
//! * **session ownership** — the finishing incumbent promotes its
//!   session's one waiting successor (admission admits at most one);
//! * **core grants** — [`CoreBudget`](helix_exec::CoreBudget)'s release
//!   notifier drains `core_waiters` front-to-back as tokens free up,
//!   attaching an [`OwnedCoreLease`] that travels with the job.
//!
//! Lock order is `runner state → budget state` everywhere: a worker
//! parks *while holding the runner lock* and the notifier takes the
//! runner lock before re-probing the budget, so a release can never slip
//! between "try_acquire failed" and "parked" unobserved. The budget
//! calls the notifier with its own lock already dropped, so the nesting
//! is cycle-free.
//!
//! Byte-identity is untouched by all of this: parking reorders *when*
//! iterations run (exactly like the old blocking waits did), while the
//! bytes they produce are pinned down one layer below (provenance-keyed
//! signatures + read-set-validated speculation). The determinism suite
//! runs the same workloads under this pool at several widths to prove
//! it.
//!
//! Workers also run the service's **housekeeping tick** between jobs: a
//! rate-limited global-pressure check that calls `evict_global` when
//! co-ownership claims alone hold the catalog over its byte budget —
//! pressure drains without waiting for the next store to trip it.

use crate::admission::Job;
use crate::service::{lock_session, ServiceInner};
use crate::ticket::JobOutcome;
use helix_common::timing::Nanos;
use helix_common::HelixError;
use helix_core::{speculate_budgeted, SessionDriver, SpeculativePlan, Step};
use helix_exec::OwnedCoreLease;
use helix_obs::metrics::Gauge;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Minimum spacing between global-pressure housekeeping checks.
const RECLAIM_INTERVAL: Duration = Duration::from_millis(50);

/// One dispatched iteration riding the worker pool: the admission
/// [`Job`] plus everything the state machine has accumulated. The
/// `owns_session`/`lease` fields survive parking, so a resumed job picks
/// up exactly where it yielded.
struct RunnerJob {
    job: Job,
    /// Speculative plan from the predecessor's published snapshot.
    hint: Option<SpeculativePlan>,
    /// Speculation runs once, before the first park.
    speculated: bool,
    /// This job holds its session's exclusive run slot.
    owns_session: bool,
    /// The iteration's base core token (owned: it parks with the job).
    lease: Option<OwnedCoreLease>,
    /// When the job last parked (for the `session.park` span).
    parked_at: Option<Instant>,
}

struct RunnerState {
    /// Jobs a worker can advance right now.
    ready: VecDeque<RunnerJob>,
    /// Jobs holding their session but waiting for a core token, FIFO.
    core_waiters: VecDeque<RunnerJob>,
    /// Jobs waiting for their session's incumbent to finish. Admission
    /// dispatches at most one successor per session, so one slot each.
    session_waiters: HashMap<u64, RunnerJob>,
    /// Sessions whose run slot a dispatched job currently owns.
    busy_sessions: HashSet<u64>,
    /// Last housekeeping tick (rate limit).
    last_reclaim: Option<Instant>,
    shutdown: bool,
}

/// Shared state of the worker pool (lives inside `ServiceInner`).
pub(crate) struct Runner {
    state: Mutex<RunnerState>,
    /// Worker wake-ups: ready work or shutdown.
    ready_cv: Condvar,
    /// Fast path for the budget-release notifier: skip the runner lock
    /// entirely when nobody is waiting on a core.
    core_waiters_len: AtomicUsize,
    /// `serve.sessions_parked`: core + session waiters right now.
    parked_gauge: Gauge,
    pool_size: usize,
}

impl Runner {
    /// A runner whose pool will hold `pool_size` worker threads.
    pub(crate) fn new(pool_size: usize) -> Runner {
        Runner {
            state: Mutex::new(RunnerState {
                ready: VecDeque::new(),
                core_waiters: VecDeque::new(),
                session_waiters: HashMap::new(),
                busy_sessions: HashSet::new(),
                last_reclaim: None,
                shutdown: false,
            }),
            ready_cv: Condvar::new(),
            core_waiters_len: AtomicUsize::new(0),
            parked_gauge: helix_obs::metrics::global().gauge("serve.sessions_parked"),
            pool_size: pool_size.max(1),
        }
    }

    /// Worker threads the pool runs on.
    pub(crate) fn pool_size(&self) -> usize {
        self.pool_size
    }

    fn lock(&self) -> MutexGuard<'_, RunnerState> {
        self.state.lock().expect("runner state poisoned")
    }

    /// Hand a freshly picked job to the pool.
    pub(crate) fn submit(&self, job: Job) {
        let mut state = self.lock();
        state.ready.push_back(RunnerJob {
            job,
            hint: None,
            speculated: false,
            owns_session: false,
            lease: None,
            parked_at: None,
        });
        drop(state);
        self.ready_cv.notify_one();
    }

    /// Stop the pool: workers exit once the ready queue is empty.
    pub(crate) fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready_cv.notify_all();
    }

    /// The budget's release notifier: promote core waiters front-to-back
    /// while tokens grant. Runs after *every* release (including the
    /// engine's transient internal leases), hence the lock-free empty
    /// check up front.
    pub(crate) fn promote_core_waiters(&self, inner: &ServiceInner) {
        if self.core_waiters_len.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut state = self.lock();
        let mut promoted = 0usize;
        while let Some(front) = state.core_waiters.front() {
            match inner.budget.try_acquire_one_labeled_owned(&front.job.tenant) {
                Some(lease) => {
                    let mut job = state.core_waiters.pop_front().expect("front exists");
                    job.lease = Some(lease);
                    state.ready.push_back(job);
                    promoted += 1;
                }
                None => break,
            }
        }
        if promoted > 0 {
            self.core_waiters_len.store(state.core_waiters.len(), Ordering::Release);
            self.record_parked(&state);
            drop(state);
            for _ in 0..promoted {
                self.ready_cv.notify_one();
            }
        }
    }

    fn record_parked(&self, state: &RunnerState) {
        let parked = state.core_waiters.len() + state.session_waiters.len();
        self.parked_gauge.set(parked as i64);
    }
}

/// One pool worker: drain ready jobs, housekeep when idle, exit on
/// shutdown.
pub(crate) fn worker_loop(inner: Arc<ServiceInner>) {
    loop {
        let next = {
            let mut state = inner.runner.lock();
            loop {
                if let Some(job) = state.ready.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                if housekeeping_due(&mut state) {
                    // Tick outside the runner lock: eviction takes the
                    // catalog lock and can do real I/O.
                    drop(state);
                    housekeeping(&inner);
                    state = inner.runner.lock();
                    continue;
                }
                state = inner.runner.ready_cv.wait(state).expect("runner state poisoned");
            }
        };
        let Some(job) = next else { return };
        advance(&inner, job);
    }
}

fn housekeeping_due(state: &mut RunnerState) -> bool {
    match state.last_reclaim {
        Some(last) if last.elapsed() < RECLAIM_INTERVAL => false,
        _ => {
            state.last_reclaim = Some(Instant::now());
            true
        }
    }
}

/// The background reclaimer: when co-ownership claims alone hold the
/// catalog over its global byte budget (a store would notice, but
/// between stores nothing used to), drain the excess with the same
/// deterministic retention-scored eviction stores use. Pinned in-flight
/// loads and plan-protected artifacts are never victims, so running this
/// concurrently with iterations cannot change their bytes.
fn housekeeping(inner: &ServiceInner) {
    let Some(budget) = inner.catalog.global_budget() else { return };
    let used = inner.catalog.total_bytes();
    if used > budget {
        let _ = inner.catalog.evict_global("reclaimer", used - budget, &HashSet::new());
    }
}

/// Advance one job as far as it will go: speculate once, claim the
/// session, acquire a core, run — parking (and returning the worker to
/// the pool) at the first unmet need.
fn advance(inner: &Arc<ServiceInner>, mut rj: RunnerJob) {
    // A resumed job: trace how long it was parked.
    if let Some(parked_at) = rj.parked_at.take() {
        let waited = helix_common::timing::duration_to_nanos(parked_at.elapsed());
        let _ = helix_obs::span_at(
            helix_obs::layer::SERVE,
            "session.park",
            helix_obs::now_nanos().saturating_sub(waited),
            waited,
        )
        .track(format!("tenant-{}", rj.job.tenant))
        .tenant(rj.job.tenant.as_str())
        .session(rj.job.session_id);
    }
    // Plan lane, once per job and before any park: if the predecessor
    // published a speculation snapshot, plan against it now — iteration
    // `t+1`'s planning overlapping `t`'s tail execution. Budget-gated
    // and panic-tolerant (a panicking speculation degrades to no-hint;
    // the serial re-plan inside the run guard reports real bugs).
    if !rj.speculated {
        rj.speculated = true;
        let snapshot = rj.job.spec_slot.lock().expect("spec slot poisoned").take();
        if let Some(inputs) = snapshot {
            rj.hint = speculate_budgeted(&inputs, &rj.job.wf, Some(&inner.budget), true);
        }
    }
    // Claim the session's run slot. Ownership comes before the core
    // token (as the old blocking order did): a job waiting on its
    // session must not sit on a token the incumbent's engine could use.
    if !rj.owns_session {
        let mut state = inner.runner.lock();
        if state.busy_sessions.insert(rj.job.session_id) {
            rj.owns_session = true;
        } else {
            rj.parked_at = Some(Instant::now());
            let prev = state.session_waiters.insert(rj.job.session_id, rj);
            debug_assert!(prev.is_none(), "admission dispatches at most one successor");
            inner.runner.record_parked(&state);
            return;
        }
    }
    // The iteration's base core token. The park check runs under the
    // runner lock (lock order: runner → budget), so a concurrent
    // release either grants here or its notifier finds the job parked.
    if rj.lease.is_none() {
        let mut state = inner.runner.lock();
        match inner.budget.try_acquire_one_labeled_owned(&rj.job.tenant) {
            Some(lease) => rj.lease = Some(lease),
            None => {
                rj.parked_at = Some(Instant::now());
                state.core_waiters.push_back(rj);
                inner.runner.core_waiters_len.store(state.core_waiters.len(), Ordering::Release);
                inner.runner.record_parked(&state);
                return;
            }
        }
    }
    run_iteration(inner, rj);
}

/// Convert an operator panic into a reportable error.
fn panic_error(panic: Box<dyn std::any::Any + Send>) -> HelixError {
    let detail = panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "operator panicked".to_string());
    HelixError::exec("service-runner", detail)
}

/// Run one fully provisioned iteration (session owned, core leased) to
/// completion on the calling worker, then retire it and promote the
/// session's waiting successor.
fn run_iteration(inner: &Arc<ServiceInner>, rj: RunnerJob) {
    let RunnerJob { job, hint, lease, .. } = rj;
    let resume_span = helix_obs::span(helix_obs::layer::SERVE, "runner.resume")
        .track(format!("tenant-{}", job.tenant))
        .tenant(job.tenant.as_str())
        .session(job.session_id);
    // Uncontended by construction: this job owns the session's run slot.
    let mut session = lock_session(&job.session);
    let exec_span = helix_obs::span(helix_obs::layer::SERVE, "execute")
        .track(format!("tenant-{}", job.tenant))
        .tenant(job.tenant.as_str())
        .session(job.session_id);
    // Queue time covers admission *and* every park: submission to the
    // moment the iteration actually starts.
    let queue_wait = job.enqueued.elapsed().as_nanos() as Nanos;
    let started = Instant::now();
    let mut driver = SessionDriver::new(&mut session, &job.wf).with_hint(hint).require_core();
    // The owned lease in `lease` is this driver's base token.
    driver.grant_core();
    let step = loop {
        match catch_unwind(AssertUnwindSafe(|| driver.step())) {
            // Advisory (write backlog): nothing to do mid-run — the
            // session's own writer barrier handles ordering.
            Ok(Step::NeedsIo) => continue,
            Ok(step) => break Ok(step),
            Err(panic) => break Err(panic_error(panic)),
        }
    };
    let mut entered_execute = false;
    let result = match step {
        Ok(Step::Ready(prepared)) => {
            // Entering the execute phase: publish the snapshot a queued
            // successor will speculate from (only if one exists — the
            // snapshot clones the session's statistics maps), then
            // release the session's ordering hold so the scheduler may
            // dispatch that successor. Publish-before-mark: a successor
            // can only be picked after mark_executing, so it never finds
            // the slot empty.
            if inner.sched().queue.has_queued_job(job.session_id) {
                *job.spec_slot.lock().expect("spec slot poisoned") =
                    Some(driver.session().speculation_snapshot());
            }
            inner.sched().queue.mark_executing(job.session_id);
            inner.work.notify_all();
            entered_execute = true;
            match catch_unwind(AssertUnwindSafe(|| driver.execute(prepared))) {
                Ok(Step::Done(report)) => Ok(*report),
                Ok(Step::Failed(err)) => Err(err),
                Ok(_) => unreachable!("execute is terminal"),
                Err(panic) => Err(panic_error(panic)),
            }
        }
        Ok(Step::Failed(err)) => Err(err),
        Ok(_) => unreachable!("a core-granted step yields Ready or Failed"),
        Err(err) => Err(err),
    };
    let run_nanos = started.elapsed().as_nanos() as Nanos;
    drop(exec_span);
    drop(resume_span);
    drop(driver);
    drop(session);
    // Token released here; the budget's notifier promotes core waiters.
    drop(lease);
    {
        let mut sched = inner.sched();
        sched.queue.finish(&job.tenant, job.session_id, entered_execute);
        if let Some(tenant) = sched.tenants.get_mut(&job.tenant) {
            tenant.iterations += 1;
            tenant.queue_wait_nanos += queue_wait;
            tenant.run_nanos += run_nanos;
        }
    }
    inner.work.notify_all();
    inner.space.notify_all();
    inner.idle.notify_all();
    // Release the session's run slot and promote its waiting successor.
    {
        let mut state = inner.runner.lock();
        state.busy_sessions.remove(&job.session_id);
        if let Some(waiter) = state.session_waiters.remove(&job.session_id) {
            state.ready.push_back(waiter);
            inner.runner.record_parked(&state);
            drop(state);
            inner.runner.ready_cv.notify_one();
        }
    }
    job.ticket.fulfill(JobOutcome {
        result,
        queue_wait_nanos: queue_wait,
        run_nanos,
        cancelled: false,
    });
}
