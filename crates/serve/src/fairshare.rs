//! Dominant-resource fair (DRF) scheduling over cores + catalog storage.
//!
//! Strict-priority admission lets one tenant starve the rest of both core
//! tokens and catalog bytes. The fair-share policy replaces it with DRF
//! (Ghodsi et al., NSDI 2011), the multi-resource generalization of
//! weighted max-min fairness: each tenant's **dominant share** is the
//! larger of its two normalized resource usages,
//!
//! ```text
//! dominant_share(t) = max( cores_in_use(t) / cores_capacity,
//!                          catalog_bytes(t) / storage_capacity ) / weight(t)
//! ```
//!
//! and the admission queue always pops a job of the *eligible* tenant with
//! the lowest dominant share. Cores usage counts **executing-core
//! leases** — the base tokens the service's dispatched runners hold —
//! tracked at admission granularity so a pick never races a runner's
//! token acquisition; storage usage is the catalog's
//! [`used_bytes_for`](../../helix_storage/catalog/struct.MaterializationCatalog.html#method.used_bytes_for)
//! charge, refreshed by the scheduler before each pick.
//!
//! ## Determinism
//!
//! The *outputs* of every iteration are scheduling-independent by the
//! service's standing contract (provenance-keyed signatures one layer
//! down), so fairness only reorders work. The scheduling decision itself
//! is still kept replayable given identical usage state:
//!
//! * shares are compared as **scaled integers** ([`SHARE_SCALE`] parts,
//!   computed with u128 integer division) — no float rounding can flip an
//!   ordering between platforms or runs;
//! * exact share ties break by **weighted lifetime dispatch count**
//!   (fewest dispatches per unit weight first — deterministic scheduler
//!   state, and the reason equal-share tenants round-robin instead of
//!   the lexicographically first name winning every release window,
//!   which would starve its twin at one core), then by **tenant id**
//!   (lexicographic) — never by map iteration order.
//!   [`DrfAllocator::pick`] returns the same tenant for any permutation
//!   of its eligible set.
//!
//! What is deliberately *not* deterministic across runs is the usage
//! state itself (which jobs have finished, how many bytes each tenant has
//! stored): fairness reacts to real load. The fairness *audit*
//! ([`FairnessAudit`]) therefore checks invariants that hold per pick —
//! "the picked tenant had the minimum dominant share among eligible
//! tenants" — rather than a fixed global schedule.

use std::collections::BTreeMap;

/// Granularity of scaled dominant shares: a share of 1.0 (the whole
/// capacity of a resource, weight 1) is `SHARE_SCALE` parts.
pub const SHARE_SCALE: u128 = 1_000_000;

/// How the admission queue orders eligible work across tenants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// FIFO-with-priority (the original policy): among eligible jobs the
    /// highest tenant priority wins, ties broken by submission order. A
    /// high-priority tenant with a deep backlog starves everyone else —
    /// by design.
    #[default]
    Priority,
    /// Weighted dominant-resource fairness over cores + catalog storage:
    /// pop the eligible tenant with the lowest weighted dominant share.
    /// Tenant priorities are ignored; `weights` maps tenant name →
    /// weight (missing tenants get weight 1, zero is clamped to 1).
    FairShare {
        /// Per-tenant weights; a tenant with weight 2 is entitled to
        /// twice the dominant share of a weight-1 tenant.
        weights: BTreeMap<String, u32>,
    },
}

impl serde::Serialize for SchedulingPolicy {
    // Manual impl: the derive shim covers fieldless enums only, and the
    // `FairShare` variant carries its weight map.
    fn to_json(&self) -> serde::Json {
        match self {
            SchedulingPolicy::Priority => serde::Json::String("priority".into()),
            SchedulingPolicy::FairShare { weights } => serde::Json::Object(vec![
                ("policy".to_string(), serde::Json::String("fairshare".into())),
                ("weights".to_string(), serde::Serialize::to_json(weights)),
            ]),
        }
    }
}

impl SchedulingPolicy {
    /// Equal-weight fair share (every tenant weight 1).
    pub fn fair() -> SchedulingPolicy {
        SchedulingPolicy::FairShare { weights: BTreeMap::new() }
    }

    /// Whether this is a fair-share policy.
    pub fn is_fair(&self) -> bool {
        matches!(self, SchedulingPolicy::FairShare { .. })
    }

    /// The policy named by the `HELIX_SCHEDULING` environment variable
    /// (`priority` or `fairshare`/`fair`/`drf`); `None` when unset.
    /// This is how the CI determinism matrix replays the same test suite
    /// under both schedulers.
    ///
    /// # Panics
    ///
    /// On an unrecognized value — a typo in the CI matrix must fail the
    /// job loudly, not silently fall back to the default policy and turn
    /// the fair-share leg into a second priority run.
    pub fn from_env() -> Option<SchedulingPolicy> {
        let value = std::env::var("HELIX_SCHEDULING").ok()?;
        match value.to_ascii_lowercase().as_str() {
            "priority" => Some(SchedulingPolicy::Priority),
            "fairshare" | "fair" | "drf" => Some(SchedulingPolicy::fair()),
            other => panic!(
                "unrecognized HELIX_SCHEDULING value `{other}` (expected `priority` or \
                 `fairshare`)"
            ),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TenantUsage {
    /// Executing-core leases (dispatched jobs; each holds or will hold
    /// one base token).
    cores: u64,
    /// Catalog bytes charged to the tenant (`used_bytes_for`).
    bytes: u64,
    /// Lifetime dispatches (decremented only by
    /// [`DrfAllocator::cancel_dispatch`], for picks that never ran): the
    /// share tie-break, so equal-share tenants alternate
    /// deterministically.
    dispatched: u64,
}

/// The DRF ledger: per-tenant weights and resource usage, with a
/// deterministic lowest-dominant-share pick.
///
/// Pure state machine — no clocks, no I/O — so it is proptestable in
/// isolation (`tests/fairshare_props.rs`): allocation never exceeds a
/// capacity-gated budget, picks are invariant under permuted arrival
/// order, and every backlogged tenant is eventually popped.
#[derive(Clone, Debug)]
pub struct DrfAllocator {
    cores_capacity: u64,
    storage_capacity: u64,
    weights: BTreeMap<String, u32>,
    usage: BTreeMap<String, TenantUsage>,
}

impl DrfAllocator {
    /// A ledger over `cores_capacity` core tokens and `storage_capacity`
    /// catalog bytes (both clamped to ≥ 1 so shares are well-defined).
    pub fn new(cores_capacity: u64, storage_capacity: u64) -> DrfAllocator {
        DrfAllocator {
            cores_capacity: cores_capacity.max(1),
            storage_capacity: storage_capacity.max(1),
            weights: BTreeMap::new(),
            usage: BTreeMap::new(),
        }
    }

    /// Builder: install per-tenant weights (zero clamps to 1).
    #[must_use]
    pub fn with_weights(mut self, weights: BTreeMap<String, u32>) -> DrfAllocator {
        self.weights = weights;
        self
    }

    /// Set one tenant's weight (zero clamps to 1).
    pub fn set_weight(&mut self, tenant: &str, weight: u32) {
        self.weights.insert(tenant.to_string(), weight.max(1));
    }

    /// The weight in force for `tenant` (1 when unset).
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.weights.get(tenant).copied().unwrap_or(1).max(1)
    }

    /// Record one more executing-core lease for `tenant` (also counts
    /// toward its lifetime dispatch total, the share tie-break).
    pub fn acquire(&mut self, tenant: &str) {
        let usage = self.usage.entry(tenant.to_string()).or_default();
        usage.cores += 1;
        usage.dispatched += 1;
    }

    /// Return one executing-core lease.
    pub fn release(&mut self, tenant: &str) {
        if let Some(usage) = self.usage.get_mut(tenant) {
            usage.cores = usage.cores.saturating_sub(1);
        }
    }

    /// Reverse an [`acquire`](Self::acquire) whose dispatch never
    /// actually happened (e.g. the runner thread could not be spawned and
    /// the job was requeued): returns the core lease *and* the lifetime
    /// dispatch count, so the re-pick does not double-count the job in
    /// the round-robin tie-break.
    pub fn cancel_dispatch(&mut self, tenant: &str) {
        if let Some(usage) = self.usage.get_mut(tenant) {
            usage.cores = usage.cores.saturating_sub(1);
            usage.dispatched = usage.dispatched.saturating_sub(1);
        }
    }

    /// Refresh `tenant`'s storage-side usage.
    pub fn set_bytes(&mut self, tenant: &str, bytes: u64) {
        self.usage.entry(tenant.to_string()).or_default().bytes = bytes;
    }

    /// Executing-core leases currently recorded for `tenant`.
    pub fn cores_in_use(&self, tenant: &str) -> u64 {
        self.usage.get(tenant).map_or(0, |u| u.cores)
    }

    /// The share formula both public accessors share: `usage *
    /// SHARE_SCALE / (capacity * weight)` per resource, then the max.
    /// Integer arithmetic end to end, so the same inputs always produce
    /// the same ordering, on any platform.
    fn share_scaled(&self, cores_used: u64, bytes_used: u64, weight: u128) -> u128 {
        let cores = (cores_used as u128 * SHARE_SCALE) / (self.cores_capacity as u128 * weight);
        let bytes = (bytes_used as u128 * SHARE_SCALE) / (self.storage_capacity as u128 * weight);
        cores.max(bytes)
    }

    /// `tenant`'s weighted dominant share in [`SHARE_SCALE`] parts.
    pub fn dominant_share_scaled(&self, tenant: &str) -> u128 {
        let usage = self.usage.get(tenant).copied().unwrap_or_default();
        self.share_scaled(usage.cores, usage.bytes, self.weight_of(tenant) as u128)
    }

    /// `tenant`'s weighted dominant share as a fraction (observability;
    /// ordering decisions always use the scaled-integer form).
    pub fn dominant_share(&self, tenant: &str) -> f64 {
        self.dominant_share_scaled(tenant) as f64 / SHARE_SCALE as f64
    }

    /// `tenant`'s weighted dominant share *if* its storage usage were
    /// `bytes` — a pure computation that does not touch the ledger, for
    /// read-only stats paths (the scheduler's own picks go through
    /// [`set_bytes`](Self::set_bytes) + [`pick`](Self::pick)).
    pub fn dominant_share_given_bytes(&self, tenant: &str, bytes: u64) -> f64 {
        let cores_used = self.usage.get(tenant).map_or(0, |u| u.cores);
        let scaled = self.share_scaled(cores_used, bytes, self.weight_of(tenant) as u128);
        scaled as f64 / SHARE_SCALE as f64
    }

    /// `tenant`'s weighted lifetime dispatch count (the share tie-break),
    /// in [`SHARE_SCALE`] parts per unit weight.
    fn dispatched_scaled(&self, tenant: &str) -> u128 {
        let dispatched = self.usage.get(tenant).map_or(0, |u| u.dispatched);
        (dispatched as u128 * SHARE_SCALE) / self.weight_of(tenant) as u128
    }

    /// The eligible tenant DRF pops next: lowest weighted dominant
    /// share; exact share ties break by lowest weighted lifetime
    /// dispatch count (so equal-share tenants round-robin — without
    /// this, two tenants whose shares tie at every release window, e.g.
    /// identical workloads at one core, would always lose to the same
    /// name), then by tenant id. The result is independent of the
    /// iteration order of `eligible` (duplicates are harmless).
    pub fn pick<'a>(&self, eligible: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
        eligible.into_iter().min_by_key(|tenant| {
            (self.dominant_share_scaled(tenant), self.dispatched_scaled(tenant), *tenant)
        })
    }
}

/// Per-tenant fairness observations (see [`FairnessAudit`]).
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct TenantAudit {
    /// Jobs dispatched for this tenant.
    pub dispatches: u64,
    /// The worst streak of consecutive picks that went to *other* tenants
    /// while this tenant had an eligible job queued — the starvation
    /// depth. Under DRF this stays small (bounded by the number of
    /// tenants plus the concurrency the policy lets leapfrog); under
    /// strict priority a backlogged high-priority tenant drives it to its
    /// whole backlog length.
    pub max_eligible_wait: u64,
}

/// Scheduler-event fairness audit, maintained for **both** policies.
///
/// Every successful pick records, from the DRF ledger's point of view,
/// whether the pick was the DRF choice and how far the chosen tenant's
/// share sat above the eligible minimum. Under `FairShare` the audit is a
/// regression guard (`non_drf_picks == 0`, `max_share_gap == 0.0` by
/// construction); under `Priority` it *measures* the unfairness the
/// policy buys — the `multi_tenant --fair` bench prints both sides.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct FairnessAudit {
    /// Successful picks observed.
    pub picks: u64,
    /// Picks that were not the DRF choice (lowest dominant share; exact
    /// ties by lowest weighted lifetime dispatch count, then tenant id)
    /// among the then-eligible tenants.
    pub non_drf_picks: u64,
    /// Max over picks of `picked_share − min_eligible_share` (fractional
    /// shares). Exactly 0.0 under the fair-share policy.
    pub max_share_gap: f64,
    /// Per-tenant observations, name-ordered.
    pub per_tenant: BTreeMap<String, TenantAudit>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_usage_ties_break_by_tenant_id() {
        let drf = DrfAllocator::new(4, 1 << 20);
        assert_eq!(drf.pick(["b", "a", "c"]), Some("a"));
        assert_eq!(drf.pick(["c", "b"]), Some("b"));
        assert_eq!(drf.pick(std::iter::empty::<&str>()), None);
    }

    #[test]
    fn dominant_share_takes_the_larger_resource() {
        let mut drf = DrfAllocator::new(4, 1000);
        drf.acquire("t"); // cores: 1/4
        drf.set_bytes("t", 100); // storage: 1/10
        assert_eq!(drf.dominant_share_scaled("t"), SHARE_SCALE / 4);
        drf.set_bytes("t", 900); // storage: 9/10 now dominates
        assert_eq!(drf.dominant_share_scaled("t"), SHARE_SCALE * 9 / 10);
    }

    #[test]
    fn weights_scale_shares_down() {
        let mut drf = DrfAllocator::new(2, 1000);
        drf.set_weight("heavy", 2);
        drf.acquire("heavy");
        drf.acquire("light");
        // Both hold one core of two: raw share 1/2, but heavy's weight
        // halves its dominant share, so heavy is picked first.
        assert_eq!(drf.dominant_share_scaled("light"), SHARE_SCALE / 2);
        assert_eq!(drf.dominant_share_scaled("heavy"), SHARE_SCALE / 4);
        assert_eq!(drf.pick(["light", "heavy"]), Some("heavy"));
    }

    #[test]
    fn lowest_share_wins_regardless_of_arrival_order() {
        let mut drf = DrfAllocator::new(4, 1 << 20);
        drf.acquire("busy");
        drf.acquire("busy");
        drf.acquire("midway");
        for perm in [["busy", "midway", "idle"], ["idle", "busy", "midway"]] {
            assert_eq!(drf.pick(perm), Some("idle"));
        }
        drf.release("busy");
        drf.release("busy");
        drf.release("midway");
        assert_eq!(drf.cores_in_use("busy"), 0);
        // Releases below zero saturate rather than wrap.
        drf.release("busy");
        assert_eq!(drf.cores_in_use("busy"), 0);
    }

    #[test]
    fn equal_share_ties_round_robin_via_dispatch_counts() {
        // One core, instant release: both tenants sit at share 0 at every
        // pick moment. Without the dispatch-count tie-break, "a" would
        // win every round and "b" would starve.
        let mut drf = DrfAllocator::new(1, 1000);
        assert_eq!(drf.pick(["a", "b"]), Some("a"));
        drf.acquire("a");
        drf.release("a");
        assert_eq!(drf.pick(["a", "b"]), Some("b"), "lifetime dispatches break the tie");
        drf.acquire("b");
        drf.release("b");
        assert_eq!(drf.pick(["a", "b"]), Some("a"), "and alternate deterministically");
    }

    #[test]
    fn policy_env_parsing() {
        assert!(SchedulingPolicy::fair().is_fair());
        assert!(!SchedulingPolicy::Priority.is_fair());
        assert_eq!(SchedulingPolicy::default(), SchedulingPolicy::Priority);
    }
}
