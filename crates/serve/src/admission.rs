//! Admission control and scheduling policy.
//!
//! The service accepts work through a **bounded submission queue** (back
//! pressure instead of unbounded memory growth) and drains it
//! **FIFO-with-priority**: among queued jobs that are *eligible* right
//! now, the highest tenant priority wins, ties broken by submission
//! order. A job is eligible when
//!
//! 1. the global concurrency cap has head-room
//!    ([`AdmissionCaps::max_concurrent_iterations`]),
//! 2. its tenant is under its own concurrency cap
//!    ([`TenantSpec::max_concurrent`](crate::TenantSpec)), and
//! 3. its session has no iteration in flight — iterations of one session
//!    are stateful (`Session::run` takes `&mut self`) and must retire in
//!    submission order.
//!
//! Scheduling affects *when* a tenant's iteration runs, never *what* it
//! produces: the determinism contract is enforced one layer down (shared
//! seed + signature-keyed artifacts), so the policy here is free to
//! reorder across tenants for latency or fairness.

use crate::ticket::TicketState;
use helix_core::{Session, Workflow};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Global admission limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionCaps {
    /// Maximum queued (not yet dispatched) jobs; submitters block beyond.
    pub queue_capacity: usize,
    /// Maximum iterations running at once across all tenants.
    pub max_concurrent_iterations: usize,
}

/// One queued iteration.
pub(crate) struct Job {
    pub seq: u64,
    pub priority: u8,
    pub tenant: String,
    /// Tenant concurrency cap, copied at submission time.
    pub tenant_max_concurrent: usize,
    pub session_id: u64,
    pub session: Arc<Mutex<Session>>,
    pub wf: Workflow,
    pub ticket: Arc<TicketState>,
    pub enqueued: Instant,
}

/// Queue + running-set bookkeeping (lives behind the service mutex).
pub(crate) struct AdmissionQueue {
    caps: AdmissionCaps,
    queue: VecDeque<Job>,
    running_total: usize,
    running_per_tenant: HashMap<String, usize>,
    busy_sessions: HashSet<u64>,
    next_seq: u64,
    /// Queued + running: zero means fully drained.
    jobs_in_system: usize,
    pub shutdown: bool,
}

impl AdmissionQueue {
    pub fn new(caps: AdmissionCaps) -> AdmissionQueue {
        AdmissionQueue {
            caps,
            queue: VecDeque::new(),
            running_total: 0,
            running_per_tenant: HashMap::new(),
            busy_sessions: HashSet::new(),
            next_seq: 0,
            jobs_in_system: 0,
            shutdown: false,
        }
    }

    /// Whether a new submission fits the bounded queue right now.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.caps.queue_capacity
    }

    /// Enqueue a job, assigning its FIFO sequence number.
    pub fn enqueue(&mut self, mut job: Job) {
        job.seq = self.next_seq;
        self.next_seq += 1;
        self.jobs_in_system += 1;
        self.queue.push_back(job);
    }

    /// Remove and return the next dispatchable job per the policy, marking
    /// it running; `None` when nothing is eligible.
    pub fn pick(&mut self) -> Option<Job> {
        if self.running_total >= self.caps.max_concurrent_iterations {
            return None;
        }
        let mut best: Option<usize> = None;
        for (ix, job) in self.queue.iter().enumerate() {
            if self.busy_sessions.contains(&job.session_id) {
                continue;
            }
            let tenant_running = self.running_per_tenant.get(&job.tenant).copied().unwrap_or(0);
            if tenant_running >= job.tenant_max_concurrent {
                continue;
            }
            // The queue is in seq order, so the first hit at a given
            // priority is the FIFO winner; only a strictly higher
            // priority displaces it.
            match best {
                None => best = Some(ix),
                Some(b) if job.priority > self.queue[b].priority => best = Some(ix),
                Some(_) => {}
            }
        }
        let ix = best?;
        let job = self.queue.remove(ix).expect("index valid");
        self.running_total += 1;
        *self.running_per_tenant.entry(job.tenant.clone()).or_insert(0) += 1;
        self.busy_sessions.insert(job.session_id);
        Some(job)
    }

    /// Retire a dispatched job.
    pub fn finish(&mut self, tenant: &str, session_id: u64) {
        self.running_total -= 1;
        if let Some(r) = self.running_per_tenant.get_mut(tenant) {
            *r = r.saturating_sub(1);
        }
        self.busy_sessions.remove(&session_id);
        self.jobs_in_system -= 1;
    }

    /// Whether nothing is queued or running.
    pub fn is_drained(&self) -> bool {
        self.jobs_in_system == 0
    }

    /// Point-in-time introspection.
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            queued: self.queue.len(),
            running: self.running_total,
            queue_capacity: self.caps.queue_capacity,
            max_concurrent_iterations: self.caps.max_concurrent_iterations,
        }
    }
}

/// Observable admission state (for dashboards and tests).
#[derive(Clone, Copy, Debug)]
pub struct QueueSnapshot {
    /// Jobs waiting for dispatch.
    pub queued: usize,
    /// Iterations currently running.
    pub running: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// The global concurrency cap.
    pub max_concurrent_iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_core::{SessionConfig, Workflow};

    fn job(tenant: &str, priority: u8, session_id: u64, cap: usize) -> Job {
        let session =
            Arc::new(Mutex::new(Session::new(SessionConfig::in_memory()).expect("session opens")));
        Job {
            seq: 0,
            priority,
            tenant: tenant.to_string(),
            tenant_max_concurrent: cap,
            session_id,
            session,
            wf: Workflow::new("w"),
            ticket: TicketState::new(),
            enqueued: Instant::now(),
        }
    }

    fn caps(queue: usize, running: usize) -> AdmissionCaps {
        AdmissionCaps { queue_capacity: queue, max_concurrent_iterations: running }
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 1, 4));
        q.enqueue(job("b", 0, 2, 4));
        assert_eq!(q.pick().unwrap().tenant, "a");
        assert_eq!(q.pick().unwrap().tenant, "b");
        assert!(q.pick().is_none());
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("steerage", 0, 1, 4));
        q.enqueue(job("first-class", 3, 2, 4));
        assert_eq!(q.pick().unwrap().tenant, "first-class");
        assert_eq!(q.pick().unwrap().tenant, "steerage");
    }

    #[test]
    fn per_tenant_cap_defers_but_global_fifo_continues() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 1, 1));
        q.enqueue(job("a", 0, 2, 1)); // same tenant, different session
        q.enqueue(job("b", 0, 3, 1));
        let first = q.pick().unwrap();
        assert_eq!((first.tenant.as_str(), first.session_id), ("a", 1));
        // Tenant a is at its cap of 1: b goes next despite later seq.
        assert_eq!(q.pick().unwrap().tenant, "b");
        assert!(q.pick().is_none(), "a's second job must wait for the first");
        q.finish("a", 1);
        assert_eq!(q.pick().unwrap().session_id, 2);
    }

    #[test]
    fn sessions_never_run_two_iterations_at_once() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 7, 4));
        q.enqueue(job("a", 0, 7, 4));
        assert_eq!(q.pick().unwrap().session_id, 7);
        assert!(q.pick().is_none(), "same session blocked while in flight");
        q.finish("a", 7);
        assert_eq!(q.pick().unwrap().session_id, 7);
    }

    #[test]
    fn global_cap_limits_running_total() {
        let mut q = AdmissionQueue::new(caps(10, 2));
        for s in 0..4 {
            q.enqueue(job("t", 0, s, 8));
        }
        assert!(q.pick().is_some());
        assert!(q.pick().is_some());
        assert!(q.pick().is_none(), "global cap of 2 reached");
        q.finish("t", 0);
        assert!(q.pick().is_some());
    }

    #[test]
    fn bounded_queue_reports_space() {
        let mut q = AdmissionQueue::new(caps(2, 1));
        assert!(q.has_space());
        q.enqueue(job("a", 0, 1, 1));
        q.enqueue(job("a", 0, 2, 1));
        assert!(!q.has_space());
        let snap = q.snapshot();
        assert_eq!((snap.queued, snap.running, snap.queue_capacity), (2, 0, 2));
        assert!(!q.is_drained());
    }
}
