//! Admission control and scheduling policy.
//!
//! The service accepts work through a **bounded submission queue** (back
//! pressure instead of unbounded memory growth) and drains it under one
//! of two policies ([`SchedulingPolicy`]):
//!
//! * **`Priority`** (FIFO-with-priority): among queued jobs that are
//!   *eligible* right now, the highest tenant priority wins, ties broken
//!   by submission order.
//! * **`FairShare`** (weighted DRF, [`crate::fairshare`]): among tenants
//!   with an eligible job, the one with the lowest weighted dominant
//!   share over cores + catalog storage wins (exact share ties by lowest
//!   weighted lifetime dispatch count, then tenant id); within that
//!   tenant, a fresh session's job beats a parked pipelining successor,
//!   then submission order. Tenant priorities are ignored.
//!
//! A job is eligible when
//!
//! 1. the global concurrency cap has head-room
//!    ([`AdmissionCaps::max_concurrent_iterations`], counted over all
//!    dispatched jobs — it bounds runner threads),
//! 2. its tenant is under its own concurrency cap
//!    ([`TenantSpec::max_concurrent`](crate::TenantSpec), counted over
//!    *sessions with dispatched work* — a session executes at most one
//!    iteration at a time, so this bounds the tenant's executing
//!    iterations race-free, while a pipelining successor of an
//!    already-counted session rides free), and
//! 3. its session is pipelinable: a session iteration is "in flight" for
//!    ordering purposes only during its **execute phase**. While an
//!    incumbent executes, exactly one successor job of the same session
//!    may dispatch — it speculatively *plans* (`Session::speculate`
//!    against the snapshot the incumbent published) while the incumbent
//!    still runs, then waits its turn on the session lock. Iterations of
//!    one session still *retire* strictly in submission order (the
//!    session is stateful); only their planning overlaps.
//!
//! Scheduling affects *when* a tenant's iteration runs, never *what* it
//! produces: the determinism contract is enforced one layer down
//! (provenance-keyed signatures that fold each session's seed into the
//! chain + read-set-validated speculative plans), so the policy here is
//! free to reorder across tenants for latency or fairness.

use crate::fairshare::{DrfAllocator, FairnessAudit, SchedulingPolicy, SHARE_SCALE};
use crate::ticket::TicketState;
use helix_core::{Session, SpeculationInputs, Workflow};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Global admission limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionCaps {
    /// Maximum queued (not yet dispatched) jobs; submitters block beyond.
    pub queue_capacity: usize,
    /// Maximum iterations running at once across all tenants.
    pub max_concurrent_iterations: usize,
}

/// One queued iteration.
pub(crate) struct Job {
    pub seq: u64,
    pub priority: u8,
    pub tenant: String,
    /// Tenant concurrency cap, copied at submission time.
    pub tenant_max_concurrent: usize,
    pub session_id: u64,
    pub session: Arc<Mutex<Session>>,
    /// Per-session mailbox for speculation snapshots: an iteration
    /// entering its execute phase publishes one; its successor takes it
    /// and plans ahead while the incumbent still runs.
    pub spec_slot: Arc<Mutex<Option<SpeculationInputs>>>,
    pub wf: Workflow,
    pub ticket: Arc<TicketState>,
    pub enqueued: Instant,
}

/// What one session's dispatched jobs are up to.
#[derive(Default)]
struct SessionActivity {
    /// Dispatched, unfinished jobs (at most 2: one executing + one
    /// planning successor).
    members: usize,
    /// Of those, jobs still in their plan phase.
    planning: usize,
}

/// Internal audit counters (snapshotted into [`FairnessAudit`]).
#[derive(Default)]
struct AuditState {
    picks: u64,
    non_drf_picks: u64,
    max_share_gap_scaled: u128,
    per_tenant: HashMap<String, TenantAuditState>,
}

#[derive(Default)]
struct TenantAuditState {
    dispatches: u64,
    /// Consecutive picks that went elsewhere while this tenant had an
    /// eligible job (reset to zero on every dispatch of this tenant).
    current_wait: u64,
    max_wait: u64,
}

/// Queue + running-set bookkeeping (lives behind the service mutex).
pub(crate) struct AdmissionQueue {
    caps: AdmissionCaps,
    queue: VecDeque<Job>,
    /// All dispatched, unfinished jobs (plan + execute phases) — what the
    /// global cap bounds, since each is a runner thread.
    dispatched_total: usize,
    /// Execute-phase jobs (observability: `QueueSnapshot::running`).
    executing_total: usize,
    /// Sessions with at least one dispatched job, per tenant — what the
    /// tenant concurrency cap bounds. Each session executes at most one
    /// iteration at a time (the session lock), so capping *active
    /// sessions* caps executing iterations without the pick-to-
    /// mark-executing race a phase-count check would have, while a
    /// pipelining successor (same session, already counted) stays free.
    active_sessions_per_tenant: HashMap<String, usize>,
    sessions: HashMap<u64, SessionActivity>,
    next_seq: u64,
    /// Queued + dispatched: zero means fully drained.
    jobs_in_system: usize,
    pub shutdown: bool,
    /// Which policy `pick` applies across tenants.
    policy: SchedulingPolicy,
    /// The DRF ledger: maintained under *both* policies so the fairness
    /// audit and per-tenant dominant shares are always observable.
    drf: DrfAllocator,
    audit: AuditState,
}

impl AdmissionQueue {
    /// A priority-policy queue with unit resource capacities (unit tests;
    /// the service uses [`with_policy`](Self::with_policy)).
    #[cfg(test)]
    pub fn new(caps: AdmissionCaps) -> AdmissionQueue {
        Self::with_policy(caps, SchedulingPolicy::Priority, 1, 1)
    }

    /// A queue applying `policy` over `cores_capacity` core tokens and
    /// `storage_capacity` catalog bytes (the DRF share denominators).
    pub fn with_policy(
        caps: AdmissionCaps,
        policy: SchedulingPolicy,
        cores_capacity: u64,
        storage_capacity: u64,
    ) -> AdmissionQueue {
        let weights = match &policy {
            SchedulingPolicy::FairShare { weights } => weights.clone(),
            SchedulingPolicy::Priority => Default::default(),
        };
        AdmissionQueue {
            caps,
            queue: VecDeque::new(),
            dispatched_total: 0,
            executing_total: 0,
            active_sessions_per_tenant: HashMap::new(),
            sessions: HashMap::new(),
            next_seq: 0,
            jobs_in_system: 0,
            shutdown: false,
            policy,
            drf: DrfAllocator::new(cores_capacity, storage_capacity).with_weights(weights),
            audit: AuditState::default(),
        }
    }

    /// Whether a new submission fits the bounded queue right now.
    pub fn has_space(&self) -> bool {
        self.queue.len() < self.caps.queue_capacity
    }

    /// Enqueue a job, assigning its FIFO sequence number.
    pub fn enqueue(&mut self, mut job: Job) {
        job.seq = self.next_seq;
        self.next_seq += 1;
        self.jobs_in_system += 1;
        self.queue.push_back(job);
    }

    /// Remove and return the next dispatchable job per the policy, marking
    /// it dispatched (in its plan phase); `None` when nothing is eligible.
    pub fn pick(&mut self) -> Option<Job> {
        if self.dispatched_total >= self.caps.max_concurrent_iterations {
            return None;
        }
        // Shared eligibility pass (both policies), in seq order:
        // (queue index, is-pipelining-successor).
        let mut eligible: Vec<(usize, bool)> = Vec::new();
        for (ix, job) in self.queue.iter().enumerate() {
            // Session rule: idle sessions always qualify; a session whose
            // sole dispatched job has entered its execute phase may admit
            // exactly one planning successor.
            let session_active = self.sessions.get(&job.session_id);
            let eligible_session = match session_active {
                None => true,
                Some(activity) => activity.members == 1 && activity.planning == 0,
            };
            if !eligible_session {
                continue;
            }
            let successor = session_active.is_some();
            // Tenant cap: a successor joins an already-counted session;
            // a fresh session needs head-room.
            if !successor {
                let active = self.active_sessions_per_tenant.get(&job.tenant).copied().unwrap_or(0);
                if active >= job.tenant_max_concurrent {
                    continue;
                }
            }
            eligible.push((ix, successor));
        }
        // Each arm yields the chosen queue index plus the DRF reference
        // choice at decision-time shares (what the audit compares
        // against; under FairShare they coincide by construction).
        let (ix, drf_choice) = match &self.policy {
            SchedulingPolicy::Priority => {
                // The queue is in seq order, so the first hit at a given
                // (priority, fresh-vs-successor) rank is the FIFO winner.
                // Strictly higher priority displaces; at equal priority a
                // *fresh* session's job displaces a pipelining successor —
                // the successor would only park on its session's lock, and
                // under a tight global cap that slot should go to work
                // that can execute now (the successor is picked on the
                // very next round once capacity allows).
                let mut best: Option<(usize, bool)> = None;
                for &(ix, successor) in &eligible {
                    match best {
                        None => best = Some((ix, successor)),
                        Some((b, best_successor)) => {
                            let job = &self.queue[ix];
                            let better_priority = job.priority > self.queue[b].priority;
                            let fresh_beats_successor = job.priority == self.queue[b].priority
                                && best_successor
                                && !successor;
                            if better_priority || fresh_beats_successor {
                                best = Some((ix, successor));
                            }
                        }
                    }
                }
                let ix = best.map(|(ix, _)| ix)?;
                let choice = self
                    .drf
                    .pick(eligible.iter().map(|&(jx, _)| self.queue[jx].tenant.as_str()))?;
                (ix, choice)
            }
            SchedulingPolicy::FairShare { .. } => {
                // One candidate per tenant: the first eligible *fresh*
                // job in seq order, falling back to the first eligible
                // successor (same fresh-beats-parked-successor rationale
                // as above, applied within the tenant). Across tenants,
                // DRF: lowest weighted dominant share, ties by tenant id.
                let mut by_tenant: HashMap<&str, (usize, bool)> = HashMap::new();
                for &(ix, successor) in &eligible {
                    match by_tenant.get_mut(self.queue[ix].tenant.as_str()) {
                        None => {
                            by_tenant.insert(self.queue[ix].tenant.as_str(), (ix, successor));
                        }
                        Some(slot) => {
                            if slot.1 && !successor {
                                *slot = (ix, successor);
                            }
                        }
                    }
                }
                let tenant = self.drf.pick(by_tenant.keys().copied())?;
                (by_tenant[tenant].0, tenant)
            }
        };
        // Audit the decision against the DRF ledger (both policies), at
        // decision-time shares. Inline (field-disjoint borrows) so the
        // FairShare winner is reused instead of re-solving the pick.
        let picked_tenant = self.queue[ix].tenant.as_str();
        self.audit.picks += 1;
        if drf_choice != picked_tenant {
            self.audit.non_drf_picks += 1;
        }
        let gap = self
            .drf
            .dominant_share_scaled(picked_tenant)
            .saturating_sub(self.drf.dominant_share_scaled(drf_choice));
        self.audit.max_share_gap_scaled = self.audit.max_share_gap_scaled.max(gap);
        let mut eligible_tenants: Vec<&str> =
            eligible.iter().map(|&(jx, _)| self.queue[jx].tenant.as_str()).collect();
        eligible_tenants.sort_unstable();
        eligible_tenants.dedup();
        // Wait streaks measure *consecutive* picks while continuously
        // eligible: a tenant that left the eligible set since the last
        // pick (cap reached, sessions busy) ended its streak — it was
        // not waiting — so its counter restarts rather than resuming.
        for (tenant, state) in self.audit.per_tenant.iter_mut() {
            if !eligible_tenants.contains(&tenant.as_str()) {
                state.current_wait = 0;
            }
        }
        for tenant in &eligible_tenants {
            let entry = self.audit.per_tenant.entry((*tenant).to_string()).or_default();
            if *tenant == picked_tenant {
                entry.dispatches += 1;
                entry.current_wait = 0;
            } else {
                entry.current_wait += 1;
                entry.max_wait = entry.max_wait.max(entry.current_wait);
            }
        }
        self.drf.acquire(picked_tenant);
        let share_at_pick = self.drf.dominant_share_scaled(picked_tenant);

        let job = self.queue.remove(ix).expect("index valid");
        // Trace the enqueue→pick wait retrospectively, carrying the
        // tenant's (weighted, scaled) dominant share at pick time.
        let waited = helix_common::timing::duration_to_nanos(job.enqueued.elapsed());
        let _ = helix_obs::span_at(
            helix_obs::layer::SERVE,
            "admission.queued",
            helix_obs::now_nanos().saturating_sub(waited),
            waited,
        )
        .track(format!("tenant-{}", job.tenant))
        .tenant(job.tenant.as_str())
        .session(job.session_id)
        .amount(u64::try_from(share_at_pick).unwrap_or(u64::MAX));
        self.dispatched_total += 1;
        let activity = self.sessions.entry(job.session_id).or_default();
        if activity.members == 0 {
            *self.active_sessions_per_tenant.entry(job.tenant.clone()).or_insert(0) += 1;
        }
        activity.members += 1;
        activity.planning += 1;
        Some(job)
    }

    /// The distinct tenants with queued work, name-ordered. The
    /// scheduler pairs this with one batched catalog lookup and
    /// [`set_tenant_bytes`](Self::set_tenant_bytes) to refresh the DRF
    /// ledger's storage side before each pick round.
    pub fn queued_tenants(&self) -> Vec<String> {
        let mut tenants: Vec<&str> = self.queue.iter().map(|job| job.tenant.as_str()).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants.into_iter().map(str::to_string).collect()
    }

    /// Install refreshed storage-side usage into the DRF ledger
    /// (parallel arrays, as returned by a batched catalog lookup).
    pub fn set_tenant_bytes(&mut self, tenants: &[String], bytes: &[u64]) {
        for (tenant, bytes) in tenants.iter().zip(bytes) {
            self.drf.set_bytes(tenant, *bytes);
        }
    }

    /// `tenant`'s weighted dominant share computed against `bytes` of
    /// storage usage — read-only (the stats path must not write into the
    /// scheduler's ledger).
    pub fn dominant_share(&self, tenant: &str, bytes: u64) -> f64 {
        self.drf.dominant_share_given_bytes(tenant, bytes)
    }

    /// The DRF weight in force for `tenant`.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.drf.weight_of(tenant)
    }

    /// Snapshot the fairness audit.
    pub fn fairness(&self) -> FairnessAudit {
        FairnessAudit {
            picks: self.audit.picks,
            non_drf_picks: self.audit.non_drf_picks,
            max_share_gap: self.audit.max_share_gap_scaled as f64 / SHARE_SCALE as f64,
            per_tenant: self
                .audit
                .per_tenant
                .iter()
                .map(|(tenant, state)| {
                    (
                        tenant.clone(),
                        crate::fairshare::TenantAudit {
                            dispatches: state.dispatches,
                            max_eligible_wait: state.max_wait,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Whether a job for `session_id` is still waiting in the queue (a
    /// successor that could consume a speculation snapshot).
    pub fn has_queued_job(&self, session_id: u64) -> bool {
        self.queue.iter().any(|job| job.session_id == session_id)
    }

    /// Remove a still-queued job by its ticket (cancellation). A job
    /// that already dispatched is not in the queue and returns `None` —
    /// it runs to completion; there is no dispatch bookkeeping to
    /// reverse for a job that never dispatched.
    pub fn remove_queued(&mut self, ticket: &Arc<TicketState>) -> Option<Job> {
        let ix = self.queue.iter().position(|job| Arc::ptr_eq(&job.ticket, ticket))?;
        let job = self.queue.remove(ix).expect("index valid");
        self.jobs_in_system -= 1;
        Some(job)
    }

    /// A dispatched job finished planning and entered its execute phase:
    /// from here its session may admit a planning successor.
    pub fn mark_executing(&mut self, session_id: u64) {
        if let Some(activity) = self.sessions.get_mut(&session_id) {
            activity.planning = activity.planning.saturating_sub(1);
        }
        self.executing_total += 1;
    }

    /// Retire a dispatched job. `entered_execute` tells the queue which
    /// phase the job died in (a failed `prepare` never marked executing).
    pub fn finish(&mut self, tenant: &str, session_id: u64, entered_execute: bool) {
        self.dispatched_total -= 1;
        self.jobs_in_system -= 1;
        self.drf.release(tenant);
        if entered_execute {
            self.executing_total = self.executing_total.saturating_sub(1);
        }
        if let Some(activity) = self.sessions.get_mut(&session_id) {
            activity.members -= 1;
            if !entered_execute {
                activity.planning = activity.planning.saturating_sub(1);
            }
            if activity.members == 0 {
                self.sessions.remove(&session_id);
                if let Some(active) = self.active_sessions_per_tenant.get_mut(tenant) {
                    *active = active.saturating_sub(1);
                }
            }
        }
    }

    /// Whether nothing is queued or dispatched.
    pub fn is_drained(&self) -> bool {
        self.jobs_in_system == 0
    }

    /// Point-in-time introspection.
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            queued: self.queue.len(),
            running: self.executing_total,
            planning: self.dispatched_total - self.executing_total,
            queue_capacity: self.caps.queue_capacity,
            max_concurrent_iterations: self.caps.max_concurrent_iterations,
        }
    }
}

/// Observable admission state (for dashboards and tests).
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct QueueSnapshot {
    /// Jobs waiting for dispatch.
    pub queued: usize,
    /// Iterations currently in their execute phase.
    pub running: usize,
    /// Dispatched successors still in their plan phase (overlapping a
    /// predecessor's execution).
    pub planning: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// The global concurrency cap (over all dispatched jobs).
    pub max_concurrent_iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_core::{SessionConfig, Workflow};

    fn job(tenant: &str, priority: u8, session_id: u64, cap: usize) -> Job {
        let session =
            Arc::new(Mutex::new(Session::new(SessionConfig::in_memory()).expect("session opens")));
        Job {
            seq: 0,
            priority,
            tenant: tenant.to_string(),
            tenant_max_concurrent: cap,
            session_id,
            session,
            spec_slot: Arc::new(Mutex::new(None)),
            wf: Workflow::new("w"),
            ticket: TicketState::new(),
            enqueued: Instant::now(),
        }
    }

    fn caps(queue: usize, running: usize) -> AdmissionCaps {
        AdmissionCaps { queue_capacity: queue, max_concurrent_iterations: running }
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 1, 4));
        q.enqueue(job("b", 0, 2, 4));
        assert_eq!(q.pick().unwrap().tenant, "a");
        assert_eq!(q.pick().unwrap().tenant, "b");
        assert!(q.pick().is_none());
    }

    #[test]
    fn higher_priority_jumps_the_queue() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("steerage", 0, 1, 4));
        q.enqueue(job("first-class", 3, 2, 4));
        assert_eq!(q.pick().unwrap().tenant, "first-class");
        assert_eq!(q.pick().unwrap().tenant, "steerage");
    }

    #[test]
    fn per_tenant_cap_counts_active_sessions() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 1, 1));
        q.enqueue(job("a", 0, 2, 1)); // same tenant, different session
        q.enqueue(job("b", 0, 3, 1));
        let first = q.pick().unwrap();
        assert_eq!((first.tenant.as_str(), first.session_id), ("a", 1));
        // Tenant a has one active session — at its cap of 1 *immediately*
        // (no mark_executing window to race): b goes next despite later
        // seq.
        assert_eq!(q.pick().unwrap().tenant, "b");
        assert!(q.pick().is_none(), "a's second session must wait for the cap");
        q.finish("a", 1, false);
        assert_eq!(q.pick().unwrap().session_id, 2);
    }

    #[test]
    fn fresh_session_work_beats_a_parked_successor_at_equal_priority() {
        // Under a tight global cap, a dispatch slot should go to work
        // that can execute now, not to a successor that would park on
        // its session's lock — even when the successor was queued first.
        let mut q = AdmissionQueue::new(caps(10, 2));
        q.enqueue(job("a", 0, 1, 4));
        q.enqueue(job("a", 0, 1, 4)); // successor of session 1 (earlier seq)
        q.enqueue(job("b", 0, 2, 4)); // fresh session (later seq)
        assert_eq!(q.pick().unwrap().session_id, 1);
        q.mark_executing(1);
        assert_eq!(q.pick().unwrap().session_id, 2, "fresh session displaces the successor");
        assert!(q.pick().is_none(), "global cap of 2 dispatched reached");
        q.finish("b", 2, false);
        assert_eq!(q.pick().unwrap().session_id, 1, "successor picked once capacity allows");
    }

    #[test]
    fn remove_queued_cancels_only_undispatched_jobs() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 1, 4));
        q.enqueue(job("b", 0, 2, 4));
        let picked = q.pick().unwrap();
        assert_eq!(picked.tenant, "a");
        assert!(q.remove_queued(&picked.ticket).is_none(), "dispatched jobs are not cancellable");
        let queued_ticket = { Arc::clone(&q.queue.front().expect("b still queued").ticket) };
        let removed = q.remove_queued(&queued_ticket).expect("queued job cancels");
        assert_eq!(removed.tenant, "b");
        assert!(q.pick().is_none(), "nothing left to pick");
        q.finish("a", 1, false);
        assert!(q.is_drained(), "cancelled job left the system");
    }

    #[test]
    fn tenant_cap_still_admits_a_pipelining_successor() {
        // Cap 1, one session: the successor shares the session's slot.
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 5, 1));
        q.enqueue(job("a", 0, 5, 1));
        assert_eq!(q.pick().unwrap().session_id, 5);
        q.mark_executing(5);
        assert_eq!(q.pick().unwrap().session_id, 5, "successor rides the session's cap slot");
    }

    #[test]
    fn sessions_admit_one_planning_successor_once_executing() {
        let mut q = AdmissionQueue::new(caps(10, 10));
        q.enqueue(job("a", 0, 7, 4));
        q.enqueue(job("a", 0, 7, 4));
        q.enqueue(job("a", 0, 7, 4));
        assert_eq!(q.pick().unwrap().session_id, 7);
        assert!(q.pick().is_none(), "no successor while the incumbent is still planning");
        q.mark_executing(7);
        assert_eq!(
            q.pick().unwrap().session_id,
            7,
            "execute phase admits exactly one planning successor"
        );
        assert!(q.pick().is_none(), "but never a third dispatched job");
        // Incumbent retires; the successor is still planning, so the
        // third job keeps waiting until it, too, enters execution.
        q.finish("a", 7, true);
        assert!(q.pick().is_none());
        q.mark_executing(7);
        assert_eq!(q.pick().unwrap().session_id, 7);
        let snap = q.snapshot();
        assert_eq!((snap.running, snap.planning), (1, 1));
    }

    #[test]
    fn global_cap_limits_dispatched_total() {
        let mut q = AdmissionQueue::new(caps(10, 2));
        for s in 0..4 {
            q.enqueue(job("t", 0, s, 8));
        }
        assert!(q.pick().is_some());
        assert!(q.pick().is_some());
        assert!(q.pick().is_none(), "global cap of 2 dispatched jobs reached");
        q.finish("t", 0, false);
        assert!(q.pick().is_some());
    }

    fn fair_queue(cores: u64) -> AdmissionQueue {
        AdmissionQueue::with_policy(caps(64, 64), SchedulingPolicy::fair(), cores, 1 << 20)
    }

    #[test]
    fn fair_share_rotates_across_backlogged_tenants_ignoring_priority() {
        let mut q = fair_queue(4);
        // A high-priority heavy tenant floods the queue first; a
        // zero-priority light tenant arrives last.
        for s in 0..4 {
            q.enqueue(job("heavy", 3, s, 8));
        }
        q.enqueue(job("light", 0, 10, 8));
        // Both start at share 0: exact tie breaks by tenant id (h < l).
        assert_eq!(q.pick().unwrap().tenant, "heavy");
        // Heavy now holds one executing-core lease; light's zero share
        // wins despite later submission and lower priority.
        assert_eq!(q.pick().unwrap().tenant, "light");
        // One lease each: tie again, id order.
        assert_eq!(q.pick().unwrap().tenant, "heavy");
        let audit = q.fairness();
        assert_eq!(audit.picks, 3);
        assert_eq!(audit.non_drf_picks, 0, "fair-share picks are the DRF choice by construction");
        assert_eq!(audit.max_share_gap, 0.0);
    }

    #[test]
    fn fair_share_weights_entitle_proportionally_more() {
        let weights: std::collections::BTreeMap<String, u32> =
            [("heavy".to_string(), 2)].into_iter().collect();
        let mut q = AdmissionQueue::with_policy(
            caps(64, 64),
            SchedulingPolicy::FairShare { weights },
            2,
            1 << 20,
        );
        for s in 0..4 {
            q.enqueue(job("heavy", 0, s, 8));
        }
        q.enqueue(job("light", 0, 10, 8));
        q.enqueue(job("light", 0, 11, 8));
        let picked: Vec<String> = (0..5).map(|_| q.pick().unwrap().tenant).collect();
        // Weight 2 halves heavy's dominant share: it takes two leases for
        // every one of light's (ties by id).
        assert_eq!(picked, ["heavy", "light", "heavy", "heavy", "light"]);
    }

    #[test]
    fn priority_policy_records_drf_deviations_in_the_audit() {
        // Under strict priority the audit *measures* unfairness: the
        // starved light tenant's eligible-wait streak grows with the
        // heavy backlog, and picks deviate from the DRF choice.
        let mut q = AdmissionQueue::with_policy(caps(64, 64), SchedulingPolicy::Priority, 2, 1024);
        for s in 0..4 {
            q.enqueue(job("heavy", 3, s, 8));
        }
        q.enqueue(job("light", 0, 10, 8));
        for _ in 0..4 {
            assert_eq!(q.pick().unwrap().tenant, "heavy", "priority starves the light tenant");
        }
        assert_eq!(q.pick().unwrap().tenant, "light");
        let audit = q.fairness();
        assert!(audit.non_drf_picks >= 2, "picks 2..4 deviate from DRF");
        assert!(audit.max_share_gap > 0.0);
        assert_eq!(audit.per_tenant["light"].max_eligible_wait, 4);
        assert_eq!(audit.per_tenant["light"].dispatches, 1);
        assert_eq!(audit.per_tenant["heavy"].dispatches, 4);
    }

    #[test]
    fn fair_share_prefers_fresh_work_over_a_parked_successor_within_a_tenant() {
        let mut q = fair_queue(4);
        q.enqueue(job("a", 0, 1, 8));
        q.enqueue(job("a", 0, 1, 8)); // successor of session 1 (earlier seq)
        q.enqueue(job("a", 0, 2, 8)); // fresh session (later seq)
        assert_eq!(q.pick().unwrap().session_id, 1);
        q.mark_executing(1);
        assert_eq!(q.pick().unwrap().session_id, 2, "fresh session displaces the successor");
        assert_eq!(q.pick().unwrap().session_id, 1, "successor picked next");
    }

    #[test]
    fn bounded_queue_reports_space() {
        let mut q = AdmissionQueue::new(caps(2, 1));
        assert!(q.has_space());
        q.enqueue(job("a", 0, 1, 1));
        q.enqueue(job("a", 0, 2, 1));
        assert!(!q.has_space());
        let snap = q.snapshot();
        assert_eq!((snap.queued, snap.running, snap.queue_capacity), (2, 0, 2));
        assert!(!q.is_drained());
    }
}
