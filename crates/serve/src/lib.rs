//! # helix-serve
//!
//! A long-lived, multi-tenant session service over the HELIX engine — the
//! step from "one developer iterating" (the paper's setting, VLDB 2018)
//! toward the production service of the ROADMAP's north star, in the
//! direction the authors themselves named next (arXiv:1804.05892:
//! multi-tenant resource sharing and cross-user artifact reuse).
//!
//! One [`HelixService`] owns, process-wide:
//!
//! * **a core budget** ([`helix_exec::CoreBudget`]) — every concurrently
//!   running iteration holds one base token, and all *extra* parallelism
//!   (the engine's frontier dispatch, data-parallel operator chunks)
//!   leases tokens from the same pool. Total working threads never exceed
//!   the budget: no more `workers²` blowups, no oversubscription between
//!   tenants.
//! * **a shared materialization catalog** with per-tenant byte quotas
//!   carved out of one global storage budget. Artifacts are keyed by
//!   *provenance-complete* content signatures (operator declarations,
//!   parent linkage, volatile nonces, and each session's seed at the
//!   nodes it affects), so when two tenants' workflows share a
//!   seed-independent prefix the second tenant *loads* what the first
//!   computed — even when the tenants run different seeds — cross-tenant
//!   reuse falls out of Definition 3's equivalence, with per-tenant
//!   attribution of self vs cross hits.
//! * **an admission layer** ([`admission`]) — a bounded submission queue
//!   drained under per-tenant and global concurrency caps by one of two
//!   policies ([`SchedulingPolicy`]): FIFO-with-priority, or **weighted
//!   dominant-resource fairness** ([`fairshare`]) over cores + catalog
//!   storage, which keeps one backlogged tenant from starving the rest
//!   of either resource. A scheduler-event fairness audit
//!   ([`FairnessAudit`]) is maintained under both policies.
//! * **tenant-aware global eviction** — the shared catalog carries the
//!   service's global byte budget; when a store would overflow it (even
//!   with every tenant inside its quota), victims are chosen across
//!   tenants by a deterministic retention score that keeps popular
//!   (refcount > 1) cross-tenant artifacts longest, never touching
//!   artifacts an in-flight plan pinned. Evictions are attributed
//!   per-tenant in [`ServiceStats`].
//!
//! ## Determinism contract
//!
//! A tenant's iteration outputs are byte-identical to a solo serial run
//! of that tenant (same seed), regardless of co-tenants, queue order, or
//! how many cores the budget grants:
//!
//! * the engine is worker-count-invariant (PR 1), and token grants only
//!   narrow effective width;
//! * every session's seed is folded into its signature chain at the
//!   stochastic nodes (`helix_core::track::ExecEnv`), so a signature
//!   identifies one exact byte string *across seeds* — loading another
//!   tenant's artifact yields precisely the bytes the loader would have
//!   computed, and tenants are free to pick their own seeds (the old
//!   service-wide seed override is gone; [`ServiceConfig::seed`] is only
//!   a default for sessions that leave theirs unset);
//! * per-tenant *quota* eviction and deprecation (`release`) are
//!   deterministic and scoped, so one tenant can never delete bytes
//!   another still plans around.
//!
//! ```no_run
//! use helix_serve::{HelixService, ServiceConfig, TenantSpec};
//! use helix_core::{SessionConfig, Workflow};
//! # fn workflow() -> Workflow { Workflow::new("w") }
//!
//! let service = HelixService::new(ServiceConfig::new(8)).unwrap();
//! service.register_tenant("alice", TenantSpec::default()).unwrap();
//! service.register_tenant("bob", TenantSpec::default()).unwrap();
//! let alice = service.open_session("alice", SessionConfig::in_memory()).unwrap();
//! let report = alice.run_iteration(workflow()).unwrap();
//! ```

pub mod admission;
pub mod fairshare;
pub(crate) mod runner;
pub mod service;
pub mod ticket;

pub use admission::{AdmissionCaps, QueueSnapshot};
pub use fairshare::{DrfAllocator, FairnessAudit, SchedulingPolicy, TenantAudit};
pub use service::{HelixService, ServiceConfig, ServiceStats, TenantSpec, TenantStats};
pub use ticket::{JobOutcome, JobTicket};

/// A handle to one tenant's iterative session inside a service.
pub use service::ServiceSession;
