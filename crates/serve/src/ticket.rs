//! Completion tickets for submitted iterations.
//!
//! [`HelixService`](crate::HelixService) runs iterations asynchronously;
//! `submit` hands back a [`JobTicket`] the caller can block on (or poll).
//! The ticket carries the [`IterationReport`] plus the service-side timing
//! split (queue wait vs run time) that the multi-tenant bench reports.

use helix_common::timing::Nanos;
use helix_common::Result;
use helix_core::IterationReport;
use std::sync::{Arc, Condvar, Mutex};

/// What the service measured and produced for one submitted iteration.
pub struct JobOutcome {
    /// The iteration's result (error if the workflow failed).
    pub result: Result<IterationReport>,
    /// Time from submission to dispatch (admission + core-token wait).
    pub queue_wait_nanos: Nanos,
    /// Time inside `Session::run`.
    pub run_nanos: Nanos,
}

pub(crate) struct TicketState {
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl TicketState {
    pub(crate) fn new() -> Arc<TicketState> {
        Arc::new(TicketState { slot: Mutex::new(None), done: Condvar::new() })
    }

    pub(crate) fn fulfill(&self, outcome: JobOutcome) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

/// A claim on one submitted iteration's outcome.
pub struct JobTicket {
    pub(crate) state: Arc<TicketState>,
}

impl JobTicket {
    /// Whether the outcome has arrived (non-blocking).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().expect("ticket poisoned").is_some()
    }

    /// Block until the iteration finishes; returns the full outcome.
    pub fn wait_outcome(self) -> JobOutcome {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// Block until the iteration finishes; returns just the report.
    pub fn wait(self) -> Result<IterationReport> {
        self.wait_outcome().result
    }
}
