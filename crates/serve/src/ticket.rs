//! Completion tickets for submitted iterations.
//!
//! [`HelixService`](crate::HelixService) runs iterations asynchronously;
//! `submit` hands back a [`JobTicket`] the caller can poll, await with a
//! timeout, cancel, or block on. The ticket carries the
//! [`IterationReport`] plus the service-side timing split (queue wait vs
//! run time) that the multi-tenant bench reports.
//!
//! ## Migrating from the blocking API
//!
//! Through PR 9 the only consumption patterns were `wait()` /
//! `wait_outcome()` (block until done) and `is_done()` (peek). Those
//! still work unchanged — `wait` is now a thin shim over the
//! non-blocking surface — but open-loop clients that submit many
//! iterations before collecting any should prefer:
//!
//! * [`JobTicket::try_outcome`] — take the outcome if it has arrived,
//!   never block (poll loops, latency samplers);
//! * [`JobTicket::wait_timeout`] — block up to a deadline, then give the
//!   caller back control (SLO-bounded waits);
//! * [`JobTicket::cancel`] — dequeue a job that has not dispatched yet;
//!   its outcome arrives immediately with
//!   [`JobOutcome::cancelled`]` == true` and an error result. A job
//!   already executing finishes its iteration normally (iterations are
//!   not interrupted mid-flight — the session's state must stay
//!   consistent).
//!
//! `try_outcome` and `wait_timeout` *take* the outcome on success, like
//! `wait_outcome`; a ticket yields its outcome exactly once.

use crate::service::ServiceInner;
use helix_common::timing::Nanos;
use helix_common::Result;
use helix_core::IterationReport;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// What the service measured and produced for one submitted iteration.
pub struct JobOutcome {
    /// The iteration's result (error if the workflow failed or the job
    /// was cancelled before dispatch).
    pub result: Result<IterationReport>,
    /// Time from submission to the iteration actually starting
    /// (admission + every park while waiting for the session and a core
    /// token). For a cancelled job: submission to cancellation.
    pub queue_wait_nanos: Nanos,
    /// Time inside the session's prepare + execute phases.
    pub run_nanos: Nanos,
    /// Whether [`JobTicket::cancel`] removed the job before dispatch
    /// (`result` is then an error and `run_nanos` is zero).
    pub cancelled: bool,
}

pub(crate) struct TicketState {
    slot: Mutex<Option<JobOutcome>>,
    done: Condvar,
}

impl TicketState {
    pub(crate) fn new() -> Arc<TicketState> {
        Arc::new(TicketState { slot: Mutex::new(None), done: Condvar::new() })
    }

    pub(crate) fn fulfill(&self, outcome: JobOutcome) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(outcome);
        drop(slot);
        self.done.notify_all();
    }
}

/// A claim on one submitted iteration's outcome.
pub struct JobTicket {
    pub(crate) state: Arc<TicketState>,
    /// Weak service handle for [`cancel`](Self::cancel): a ticket must
    /// not keep a dropped service alive, and cancelling after shutdown
    /// is simply a no-op.
    pub(crate) service: Weak<ServiceInner>,
}

impl JobTicket {
    /// Whether the outcome has arrived (non-blocking, non-consuming).
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().expect("ticket poisoned").is_some()
    }

    /// Take the outcome if the iteration has finished; `None` while it
    /// is still queued or running. Never blocks. A taken outcome is
    /// gone: subsequent calls (and `wait*`) see an unfulfilled ticket.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.state.slot.lock().expect("ticket poisoned").take()
    }

    /// Block up to `timeout` for the outcome; `None` on deadline. Like
    /// [`try_outcome`](Self::try_outcome), a returned outcome is taken.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return Some(outcome);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, _) =
                self.state.done.wait_timeout(slot, remaining).expect("ticket poisoned");
            slot = guard;
        }
    }

    /// Cancel the job if it is still waiting in the admission queue:
    /// the ticket is fulfilled immediately with
    /// [`JobOutcome::cancelled`]` == true` and an error result, and the
    /// queue slot frees up. Returns `false` when the job has already
    /// dispatched (it finishes its iteration and fulfills normally),
    /// already completed, or the service is gone.
    pub fn cancel(&self) -> bool {
        match self.service.upgrade() {
            Some(inner) => crate::service::cancel_queued(&inner, &self.state),
            None => false,
        }
    }

    /// Block until the iteration finishes; returns the full outcome.
    pub fn wait_outcome(self) -> JobOutcome {
        let mut slot = self.state.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.state.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// Block until the iteration finishes; returns just the report.
    /// (The original blocking surface, kept as a shim over
    /// [`wait_outcome`](Self::wait_outcome) — see the module docs for
    /// the non-blocking alternatives.)
    pub fn wait(self) -> Result<IterationReport> {
        self.wait_outcome().result
    }
}
