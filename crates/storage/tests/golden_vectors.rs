//! Golden byte vectors for the durable formats.
//!
//! The sealed bytes of artifact frames and journal chains are a
//! **compatibility surface**: catalogs written by one build must be
//! readable by the next. These tests pin the exact bytes against
//! checked-in hex dumps in `test_vectors/`, so any encoding drift —
//! however innocent-looking — fails loudly instead of silently stranding
//! every existing catalog.
//!
//! If a failure here is *intentional* (you are changing the format):
//! bump `MaterializationCatalog::FORMAT_VERSION` and
//! `frame::FORMAT_VERSION` together, provide a migration path in
//! `Catalog::open`, and regenerate the vectors with
//! `UPDATE_GOLDEN=1 cargo test -p helix-storage --test golden_vectors`.

use helix_data::{Scalar, Value};
use helix_storage::encode_value;
use helix_storage::frame::{self, FrameKind, GENESIS_HASH};
use std::path::PathBuf;

fn vectors_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("test_vectors")
}

/// Render bytes as lowercase hex, 32 bytes per line (stable, diffable).
fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            out.push('\n');
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

/// Compare `bytes` against the checked-in vector `name`, or regenerate it
/// when `UPDATE_GOLDEN=1`.
fn golden(name: &str, bytes: &[u8]) {
    let path = vectors_dir().join(name);
    let rendered = to_hex(bytes);
    if std::env::var("UPDATE_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(vectors_dir()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden vector {name}; create it with UPDATE_GOLDEN=1"));
    assert_eq!(
        rendered, expected,
        "sealed bytes of `{name}` drifted from the checked-in golden vector.\n\
         If this change is intentional, bump MaterializationCatalog::FORMAT_VERSION and \
         frame::FORMAT_VERSION together, add a migration path in Catalog::open, and \
         regenerate with: UPDATE_GOLDEN=1 cargo test -p helix-storage --test golden_vectors"
    );
}

#[test]
fn artifact_frames_are_byte_stable() {
    golden("artifact_f64.hex", &encode_value(&Value::Scalar(Scalar::F64(2.5))));
    golden("artifact_i64.hex", &encode_value(&Value::Scalar(Scalar::I64(-42))));
    golden(
        "artifact_text.hex",
        &encode_value(&Value::Scalar(Scalar::Text("helix golden vector".to_string()))),
    );
    golden(
        "artifact_metrics.hex",
        &encode_value(&Value::Scalar(Scalar::Metrics(vec![
            ("accuracy".to_string(), 0.875),
            ("loss".to_string(), 0.125),
        ]))),
    );
}

#[test]
fn journal_chain_is_byte_stable() {
    // A four-frame chain exercising every journal kind with fixed
    // payloads; prev-hash linkage makes the vector sensitive to *any*
    // change in sealing, hashing, or framing.
    let records: [(FrameKind, &[u8]); 4] = [
        (FrameKind::Snapshot, br#"{"format_version":3,"entries":[]}"#),
        (
            FrameKind::Upsert,
            br#"{"signature":"00000000000000000000000000000001","file":"00000000000000000000000000000001.hxm","bytes":42,"node_name":"golden","created_iteration":1,"write_nanos":0,"measured_load_nanos":null,"owners":["t"],"writers":["t"]}"#,
        ),
        (FrameKind::Remove, br#"{"signature":"00000000000000000000000000000001"}"#),
        (FrameKind::Clear, b""),
    ];
    let mut chain = Vec::new();
    let mut prev = GENESIS_HASH;
    for (kind, payload) in records {
        let mut buf = frame::begin_frame(kind, payload.len());
        buf.extend_from_slice(payload);
        let sealed = frame::seal_frame(buf, prev);
        prev = frame::chain_hash(&sealed);
        chain.extend_from_slice(&sealed);
    }
    golden("journal_chain.hex", &chain);

    // The vector must itself scan clean — guards against checking in a
    // vector the scanner would reject.
    let scan = helix_storage::journal::scan_bytes(&chain);
    assert_eq!(scan.stop, None);
    assert_eq!(scan.frames, 4);
}
