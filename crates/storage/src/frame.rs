//! The shared durable frame format.
//!
//! Every byte helix-storage persists — artifact files *and* catalog
//! journal records — is wrapped in one self-delimiting frame:
//!
//! ```text
//! +-------+---------+------+-------------+---------+-----------+--------+
//! | magic | version | kind | payload_len |  payload| prev_hash | crc32  |
//! | HXF3  |  u8     | u8   |  u64 LE     |  bytes  | u128 LE   | u32 LE |
//! +-------+---------+------+-------------+---------+-----------+--------+
//! ```
//!
//! The CRC covers everything before it (header, payload, `prev_hash`).
//! `prev_hash` chains journal frames: each frame names the chain hash of
//! its predecessor ([`chain_hash`] of the predecessor's full sealed
//! bytes; [`GENESIS_HASH`] for the first frame). Standalone artifact
//! frames carry [`GENESIS_HASH`] — they participate in the format, not
//! in any chain.
//!
//! Parsing is strict and ordered so error categories stay meaningful for
//! both the artifact decoder and the journal scanner:
//!
//! 1. **magic** — a non-`HXF3` prefix is [`FrameError::NotAFrame`]
//!    (feeding a random file is *not* reported as corruption);
//! 2. **version** — an unknown version byte is
//!    [`FrameError::UnsupportedVersion`] (a newer build's data must be
//!    refused, not misread);
//! 3. **length** — the declared frame extends past the available bytes:
//!    [`FrameError::Truncated`] (all arithmetic in `u64`; a hostile
//!    length can never wrap, truncate on 32-bit targets, or drive an
//!    allocation — the parser only ever *slices* existing bytes);
//! 4. **CRC** — [`FrameError::Corrupt`] (bit rot inside a
//!    correctly-delimited frame);
//! 5. **kind** — a CRC-valid frame of unknown kind is
//!    [`FrameError::UnknownKind`] (written by a future build; the
//!    scanner stops rather than guessing its meaning).

use helix_common::crc32::crc32;
use helix_common::hash::Signature;
use helix_common::HelixError;

/// Frame magic. Distinct from the legacy `HXM1` artifact magic so a
/// pre-journal artifact is cleanly `NotAFrame`, never misparsed.
pub const MAGIC: &[u8; 4] = b"HXF3";

/// Frame format version. Tracks
/// [`MaterializationCatalog::FORMAT_VERSION`](crate::MaterializationCatalog::FORMAT_VERSION):
/// sealed-frame bytes may only change together with a bump here.
pub const FORMAT_VERSION: u8 = 3;

/// Bytes before the payload: magic (4) + version (1) + kind (1) +
/// payload length (8).
pub const HEADER_LEN: usize = 14;

/// Bytes after the payload: `prev_hash` (16) + CRC-32 (4).
pub const TRAILER_LEN: usize = 20;

/// The smallest possible frame (empty payload).
pub const MIN_FRAME_LEN: usize = HEADER_LEN + TRAILER_LEN;

/// `prev_hash` of a chain's first frame, and of standalone artifact
/// frames.
pub const GENESIS_HASH: u128 = 0;

/// What a frame's payload means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A standalone encoded [`helix_data::Value`] (`.hxm` artifact file).
    Artifact = 0x01,
    /// Journal: full catalog snapshot (compaction point / chain genesis).
    Snapshot = 0x10,
    /// Journal: one entry inserted or replaced.
    Upsert = 0x11,
    /// Journal: one entry removed.
    Remove = 0x12,
    /// Journal: all entries removed.
    Clear = 0x13,
}

impl FrameKind {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        self as u8
    }

    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Artifact,
            0x10 => FrameKind::Snapshot,
            0x11 => FrameKind::Upsert,
            0x12 => FrameKind::Remove,
            0x13 => FrameKind::Clear,
            _ => return None,
        })
    }
}

/// Why a byte range failed to parse as a frame. The categories are
/// load-bearing: the journal scanner replays up to the first failure and
/// reports *which* failure ended the valid prefix, and the artifact
/// decoder distinguishes "not ours" from "ours but damaged".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes do not start with the frame magic.
    NotAFrame,
    /// The bytes end before the declared frame does (torn write).
    Truncated,
    /// The version byte names a format this build does not know.
    UnsupportedVersion(u8),
    /// Correctly delimited, but the CRC does not match (bit rot).
    Corrupt,
    /// CRC-valid frame whose kind byte this build does not know.
    UnknownKind(u8),
}

impl FrameError {
    /// Stable machine-readable category slug.
    pub fn category(self) -> &'static str {
        match self {
            FrameError::NotAFrame => "not-a-frame",
            FrameError::Truncated => "truncated",
            FrameError::UnsupportedVersion(_) => "unsupported-version",
            FrameError::Corrupt => "corrupt",
            FrameError::UnknownKind(_) => "unknown-kind",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NotAFrame => write!(f, "bad magic (not a HELIX frame)"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FrameError::Corrupt => write!(f, "checksum mismatch (corrupt frame)"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
        }
    }
}

impl From<FrameError> for HelixError {
    fn from(e: FrameError) -> HelixError {
        HelixError::codec(e.to_string())
    }
}

/// A successfully verified frame, borrowed from the input bytes.
#[derive(Debug)]
pub struct ParsedFrame<'a> {
    /// Payload meaning.
    pub kind: FrameKind,
    /// The payload bytes (CRC-verified).
    pub payload: &'a [u8],
    /// Chain hash of the predecessor frame ([`GENESIS_HASH`] for chain
    /// heads and standalone artifacts).
    pub prev_hash: u128,
    /// Total sealed length of this frame — the next frame in a chain
    /// starts exactly here.
    pub len: usize,
}

/// Start building a frame: returns a buffer holding the header with a
/// length placeholder; append the payload, then [`seal_frame`] it.
/// `payload_hint` pre-allocates (the codec sits on the background-write
/// hot path).
pub fn begin_frame(kind: FrameKind, payload_hint: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload_hint + TRAILER_LEN);
    buf.extend_from_slice(MAGIC);
    buf.push(FORMAT_VERSION);
    buf.push(kind.to_byte());
    buf.extend_from_slice(&0u64.to_le_bytes()); // payload_len placeholder
    buf
}

/// Seal a frame begun with [`begin_frame`]: patch the payload length,
/// append `prev_hash` and the CRC. The payload is whatever was appended
/// after the header — no copy is made.
pub fn seal_frame(mut frame: Vec<u8>, prev_hash: u128) -> Vec<u8> {
    debug_assert!(frame.len() >= HEADER_LEN, "seal_frame on a non-begun buffer");
    let payload_len = (frame.len() - HEADER_LEN) as u64;
    frame[6..HEADER_LEN].copy_from_slice(&payload_len.to_le_bytes());
    frame.extend_from_slice(&prev_hash.to_le_bytes());
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Verify and borrow one frame from the *front* of `bytes` (trailing
/// bytes beyond the frame are ignored — the journal scanner walks a
/// concatenation; callers of standalone frames check
/// [`ParsedFrame::len`] against the input length themselves).
pub fn parse_frame(bytes: &[u8]) -> Result<ParsedFrame<'_>, FrameError> {
    if bytes.len() < MAGIC.len() {
        // An empty or tiny prefix of the magic is a torn header; anything
        // else is simply not ours.
        return Err(if MAGIC.starts_with(bytes) {
            FrameError::Truncated
        } else {
            FrameError::NotAFrame
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(FrameError::NotAFrame);
    }
    if bytes.len() < 5 {
        return Err(FrameError::Truncated);
    }
    let version = bytes[4];
    if version != FORMAT_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let payload_len = u64::from_le_bytes(bytes[6..HEADER_LEN].try_into().unwrap());
    // All length math in u64: a corrupt 2^64-ish length must not wrap,
    // and a 2^32 + k length must not truncate to k on 32-bit targets.
    let total = (MIN_FRAME_LEN as u64).checked_add(payload_len).ok_or(FrameError::Truncated)?;
    if total > bytes.len() as u64 {
        return Err(FrameError::Truncated);
    }
    let total = total as usize; // <= bytes.len(), so the cast is exact
    let body_end = total - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..total].try_into().unwrap());
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(FrameError::Corrupt);
    }
    let kind = FrameKind::from_byte(bytes[5]).ok_or(FrameError::UnknownKind(bytes[5]))?;
    let hash_start = body_end - 16;
    let prev_hash = u128::from_le_bytes(bytes[hash_start..body_end].try_into().unwrap());
    Ok(ParsedFrame {
        kind,
        payload: &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize],
        prev_hash,
        len: total,
    })
}

/// The chain hash of a sealed frame: what the *next* frame must carry as
/// `prev_hash`. Covers the full sealed bytes (CRC included), so any
/// accepted mutation of a frame would break every successor.
pub fn chain_hash(frame: &[u8]) -> u128 {
    Signature::of_bytes(frame).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(kind: FrameKind, payload: &[u8], prev: u128) -> Vec<u8> {
        let mut buf = begin_frame(kind, payload.len());
        buf.extend_from_slice(payload);
        seal_frame(buf, prev)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let frame = sealed(FrameKind::Upsert, b"payload bytes", 0xDEAD_BEEF);
        let parsed = parse_frame(&frame).unwrap();
        assert_eq!(parsed.kind, FrameKind::Upsert);
        assert_eq!(parsed.payload, b"payload bytes");
        assert_eq!(parsed.prev_hash, 0xDEAD_BEEF);
        assert_eq!(parsed.len, frame.len());
    }

    #[test]
    fn empty_payload_is_min_frame_len() {
        let frame = sealed(FrameKind::Clear, b"", GENESIS_HASH);
        assert_eq!(frame.len(), MIN_FRAME_LEN);
        assert_eq!(parse_frame(&frame).unwrap().payload, b"");
    }

    #[test]
    fn trailing_bytes_are_ignored_and_len_delimits() {
        let mut two = sealed(FrameKind::Upsert, b"first", 7);
        let first_len = two.len();
        two.extend_from_slice(&sealed(FrameKind::Remove, b"second", 9));
        let first = parse_frame(&two).unwrap();
        assert_eq!(first.payload, b"first");
        let second = parse_frame(&two[first.len..]).unwrap();
        assert_eq!(second.payload, b"second");
        assert_eq!(first.len, first_len);
    }

    #[test]
    fn error_order_magic_before_everything() {
        // A random file: NotAFrame, never "corrupt".
        assert_eq!(parse_frame(b"random file contents here").unwrap_err(), FrameError::NotAFrame);
        assert_eq!(parse_frame(b"Z").unwrap_err(), FrameError::NotAFrame);
        // A torn prefix of the magic itself: Truncated.
        assert_eq!(parse_frame(b"HX").unwrap_err(), FrameError::Truncated);
        assert_eq!(parse_frame(b"").unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn version_checked_before_length_and_crc() {
        let mut frame = sealed(FrameKind::Upsert, b"x", GENESIS_HASH);
        frame[4] = 99;
        // CRC is stale now, but version must win.
        assert_eq!(parse_frame(&frame).unwrap_err(), FrameError::UnsupportedVersion(99));
    }

    #[test]
    fn truncation_at_every_cut_is_truncated() {
        let frame = sealed(FrameKind::Snapshot, b"some payload", GENESIS_HASH);
        for cut in 0..frame.len() {
            assert_eq!(
                parse_frame(&frame[..cut]).unwrap_err(),
                FrameError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn hostile_length_is_truncated_not_wrapped() {
        let mut frame = sealed(FrameKind::Upsert, b"x", GENESIS_HASH);
        frame[6..HEADER_LEN].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(parse_frame(&frame).unwrap_err(), FrameError::Truncated);
        // 2^32 + 1: on a 32-bit usize this must not truncate to 1.
        let mut frame = sealed(FrameKind::Upsert, b"x", GENESIS_HASH);
        frame[6..HEADER_LEN].copy_from_slice(&((1u64 << 32) + 1).to_le_bytes());
        assert_eq!(parse_frame(&frame).unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn any_single_bit_flip_in_the_body_is_detected() {
        let frame = sealed(FrameKind::Upsert, b"sensitive payload", 42);
        for i in 5..frame.len() {
            // (skip magic/version bytes: those flip the category, which
            // is tested above; every *other* byte must read as damage)
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(parse_frame(&bad).is_err(), "flip byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn unknown_kind_survives_crc_and_is_distinct() {
        let mut buf = begin_frame(FrameKind::Upsert, 1);
        buf.push(b'p');
        let mut frame = seal_frame(buf, GENESIS_HASH);
        frame[5] = 0x7F; // future kind; re-seal the CRC over the mutation
        let body_end = frame.len() - 4;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(parse_frame(&frame).unwrap_err(), FrameError::UnknownKind(0x7F));
    }

    #[test]
    fn chain_hash_changes_with_any_byte() {
        let a = sealed(FrameKind::Upsert, b"a", GENESIS_HASH);
        let b = sealed(FrameKind::Upsert, b"b", GENESIS_HASH);
        assert_ne!(chain_hash(&a), chain_hash(&b));
        assert_ne!(chain_hash(&a), GENESIS_HASH);
    }
}
