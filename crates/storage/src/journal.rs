//! The append-only, hash-chained catalog journal.
//!
//! One journal file (`catalog.journal`) holds a chain of
//! [`frame`]-sealed records. The first frame of a healthy
//! journal is a [`FrameKind::Snapshot`] (the compaction point); every
//! subsequent commit appends one `Upsert`/`Remove`/`Clear` frame whose
//! `prev_hash` is the [`chain_hash`](crate::frame::chain_hash) of its
//! predecessor. Commit cost is therefore O(entry), not O(catalog).
//!
//! Recovery is [`scan_bytes`]: walk frames from the front, verifying CRC
//! and chain linkage, and replay the longest valid prefix. The scan never
//! errors — a torn tail, bit rot, a chain break, or a future-format frame
//! simply *ends* the prefix, and the [`JournalScan`] reports where and
//! why ([`ScanStop`]). The writer then truncates the file back to the
//! valid prefix (or rewrites it as one fresh snapshot), so damage can
//! never accumulate ahead of the append position.
//!
//! This module is deliberately payload-agnostic: records are
//! `(FrameKind, bytes)`; the catalog owns their JSON meaning.

use crate::frame::{self, FrameError, FrameKind, GENESIS_HASH};
use helix_common::Result;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Uniquifier for compaction temp files.
static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// Why a scan stopped before the end of the file. `None` stop = the file
/// ends exactly on a frame boundary (healthy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanStop {
    /// Bytes at the stop offset do not start with the frame magic.
    NotAFrame,
    /// The final frame is torn (crash mid-append).
    Truncated,
    /// A frame from a format this build does not know.
    UnsupportedVersion(u8),
    /// CRC mismatch inside a frame (bit rot).
    Corrupt,
    /// CRC-valid frame of a kind this build does not know.
    UnknownKind(u8),
    /// A CRC-valid frame whose `prev_hash` does not match the running
    /// chain (e.g. a duplicated or spliced frame).
    ChainBreak,
}

impl ScanStop {
    fn from_frame_error(e: FrameError) -> ScanStop {
        match e {
            FrameError::NotAFrame => ScanStop::NotAFrame,
            FrameError::Truncated => ScanStop::Truncated,
            FrameError::UnsupportedVersion(v) => ScanStop::UnsupportedVersion(v),
            FrameError::Corrupt => ScanStop::Corrupt,
            FrameError::UnknownKind(k) => ScanStop::UnknownKind(k),
        }
    }
}

impl std::fmt::Display for ScanStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanStop::NotAFrame => write!(f, "not-a-frame"),
            ScanStop::Truncated => write!(f, "truncated"),
            ScanStop::UnsupportedVersion(v) => write!(f, "unsupported-version({v})"),
            ScanStop::Corrupt => write!(f, "corrupt"),
            ScanStop::UnknownKind(k) => write!(f, "unknown-kind({k:#04x})"),
            ScanStop::ChainBreak => write!(f, "chain-break"),
        }
    }
}

/// Result of scanning a journal byte stream: the replayable records of
/// the longest CRC- and chain-valid prefix, plus where and why the
/// prefix ended.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// `(kind, payload)` of every frame in the valid prefix, in order.
    pub records: Vec<(FrameKind, Vec<u8>)>,
    /// Frames in the valid prefix.
    pub frames: u64,
    /// Bytes in the valid prefix — the safe append (and truncate) point.
    pub valid_bytes: u64,
    /// End offset of each frame in the valid prefix (diagnostics and
    /// corruption tests: which commits survive a cut at byte `c` is
    /// exactly `frame_ends.iter().filter(|e| **e <= c).count()`).
    pub frame_ends: Vec<u64>,
    /// Chain hash of the last valid frame ([`GENESIS_HASH`] if none) —
    /// what the next appended frame must carry as `prev_hash`.
    pub last_hash: u128,
    /// Bytes past the valid prefix (torn tail / damage).
    pub tail_bytes: u64,
    /// Why the prefix ended, when it ended before end-of-file.
    pub stop: Option<ScanStop>,
}

/// Scan a journal byte stream. Never errors and never allocates beyond
/// the records actually verified: damage of any shape just terminates
/// the valid prefix.
pub fn scan_bytes(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan { last_hash: GENESIS_HASH, ..JournalScan::default() };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let parsed = match frame::parse_frame(&bytes[offset..]) {
            Ok(parsed) => parsed,
            Err(e) => {
                scan.stop = Some(ScanStop::from_frame_error(e));
                break;
            }
        };
        if parsed.prev_hash != scan.last_hash {
            scan.stop = Some(ScanStop::ChainBreak);
            break;
        }
        scan.last_hash = frame::chain_hash(&bytes[offset..offset + parsed.len]);
        scan.records.push((parsed.kind, parsed.payload.to_vec()));
        offset += parsed.len;
        scan.frame_ends.push(offset as u64);
    }
    scan.frames = scan.frame_ends.len() as u64;
    scan.valid_bytes = offset as u64;
    scan.tail_bytes = (bytes.len() - offset) as u64;
    scan
}

/// Scan a journal file; `Ok(None)` when the file does not exist.
pub fn scan_file(path: &Path) -> Result<Option<JournalScan>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    Ok(Some(scan_bytes(&bytes)))
}

/// Appending writer positioned at the end of a journal's valid prefix.
///
/// Appends are buffered by the OS (no fsync per frame); callers group a
/// batch of frames and then [`sync`](JournalWriter::sync) at commit
/// points. Each frame is written with one `write_all` of its sealed
/// bytes, so a crash tears at most the final frame — which the next scan
/// drops by construction.
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    last_hash: u128,
    frames: u64,
    bytes: u64,
}

impl JournalWriter {
    /// Create (or truncate to empty) a journal at `path`.
    pub fn create(path: &Path) -> Result<JournalWriter> {
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            last_hash: GENESIS_HASH,
            frames: 0,
            bytes: 0,
        })
    }

    /// Open `path` for appending after `scan`: the file is truncated back
    /// to the scan's valid prefix (dropping any torn tail so damage never
    /// sits between committed frames) and the writer resumes the chain at
    /// the scan's last hash.
    pub fn append_to(path: &Path, scan: &JournalScan) -> Result<JournalWriter> {
        // truncate(false): the valid prefix must survive the open; the
        // set_len below cuts exactly the torn tail and nothing else.
        let mut file = OpenOptions::new().write(true).create(true).truncate(false).open(path)?;
        file.set_len(scan.valid_bytes)?;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            last_hash: scan.last_hash,
            frames: scan.frames,
            bytes: scan.valid_bytes,
        })
    }

    /// Atomically replace the journal with the given records (compaction):
    /// the new chain is written to a temp file, synced, and renamed over
    /// `path`. A crash leaves either the old or the new journal, never a
    /// torn mix; an orphaned temp is swept at the next catalog open.
    pub fn rewrite<'a>(
        path: &Path,
        records: impl IntoIterator<Item = (FrameKind, &'a [u8])>,
    ) -> Result<JournalWriter> {
        let tmp =
            path.with_extension(format!("journal.tmp-{}", UNIQUE.fetch_add(1, Ordering::Relaxed)));
        let mut writer = JournalWriter::create(&tmp)?;
        for (kind, payload) in records {
            writer.append(kind, payload)?;
        }
        writer.sync()?;
        std::fs::rename(&tmp, path)?;
        writer.path = path.to_path_buf();
        Ok(writer)
    }

    /// Append one sealed frame carrying `payload`. Returns the sealed
    /// frame's length in bytes.
    pub fn append(&mut self, kind: FrameKind, payload: &[u8]) -> Result<u64> {
        let mut buf = frame::begin_frame(kind, payload.len());
        buf.extend_from_slice(payload);
        let sealed = frame::seal_frame(buf, self.last_hash);
        self.file.write_all(&sealed)?;
        self.last_hash = frame::chain_hash(&sealed);
        self.frames += 1;
        self.bytes += sealed.len() as u64;
        Ok(sealed.len() as u64)
    }

    /// Durability point: flush appended frames to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Frames in the journal (including any replayed prefix).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes in the journal.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Chain hash the next appended frame will carry as `prev_hash`.
    pub fn last_hash(&self) -> u128 {
        self.last_hash
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "helix-journal-test-{}-{}-{}",
            std::process::id(),
            tag,
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ))
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(FrameKind::Snapshot, b"snap").unwrap();
        w.append(FrameKind::Upsert, b"entry-1").unwrap();
        w.append(FrameKind::Remove, b"entry-1-gone").unwrap();
        w.sync().unwrap();
        let last = w.last_hash();
        drop(w);

        let scan = scan_file(&path).unwrap().unwrap();
        assert_eq!(scan.frames, 3);
        assert_eq!(scan.stop, None);
        assert_eq!(scan.tail_bytes, 0);
        assert_eq!(scan.last_hash, last);
        let kinds: Vec<FrameKind> = scan.records.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, [FrameKind::Snapshot, FrameKind::Upsert, FrameKind::Remove]);
        assert_eq!(scan.records[1].1, b"entry-1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_append_resumes() {
        let path = temp_path("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(FrameKind::Snapshot, b"snap").unwrap();
        w.append(FrameKind::Upsert, b"committed").unwrap();
        drop(w);
        // Crash mid-append: half a frame at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let committed_len = bytes.len();
        let mut torn = frame::begin_frame(FrameKind::Upsert, 4);
        torn.extend_from_slice(b"lost");
        bytes.extend_from_slice(&frame::seal_frame(torn, 123)[..10]);
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_file(&path).unwrap().unwrap();
        assert_eq!(scan.frames, 2);
        assert_eq!(scan.valid_bytes, committed_len as u64);
        assert!(scan.tail_bytes > 0);
        // (The torn tail here is a *chain break*: the fragment's magic and
        // version parse but its hash linkage cannot match. A tail cut
        // inside the header reads as Truncated instead — either way the
        // prefix ends.)
        assert!(scan.stop.is_some());

        // Reopen for append: tail truncated, chain resumes, new frame valid.
        let mut w = JournalWriter::append_to(&path, &scan).unwrap();
        w.append(FrameKind::Upsert, b"after-recovery").unwrap();
        w.sync().unwrap();
        drop(w);
        let scan = scan_file(&path).unwrap().unwrap();
        assert_eq!(scan.frames, 3);
        assert_eq!(scan.stop, None);
        assert_eq!(scan.records[2].1, b"after-recovery");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicated_frame_is_a_chain_break() {
        let path = temp_path("dup");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(FrameKind::Snapshot, b"snap").unwrap();
        let end_of_first = w.bytes() as usize;
        w.append(FrameKind::Upsert, b"only-once").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let dup = bytes[end_of_first..].to_vec();
        bytes.extend_from_slice(&dup); // replay the second frame
        std::fs::write(&path, &bytes).unwrap();

        let scan = scan_file(&path).unwrap().unwrap();
        assert_eq!(scan.frames, 2, "duplicate must not replay twice");
        assert_eq!(scan.stop, Some(ScanStop::ChainBreak));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically_and_resets_the_chain() {
        let path = temp_path("rewrite");
        let mut w = JournalWriter::create(&path).unwrap();
        for i in 0..20 {
            w.append(FrameKind::Upsert, format!("e{i}").as_bytes()).unwrap();
        }
        drop(w);
        let w = JournalWriter::rewrite(&path, [(FrameKind::Snapshot, b"compacted".as_slice())])
            .unwrap();
        assert_eq!(w.frames(), 1);
        drop(w);
        let scan = scan_file(&path).unwrap().unwrap();
        assert_eq!(scan.frames, 1);
        assert_eq!(scan.records[0], (FrameKind::Snapshot, b"compacted".to_vec()));
        // No temp residue.
        let dir = path.parent().unwrap();
        for dirent in std::fs::read_dir(dir).unwrap().flatten() {
            let name = dirent.file_name().to_string_lossy().into_owned();
            assert!(
                !(name.starts_with(path.file_name().unwrap().to_str().unwrap())
                    && name.contains(".tmp-")),
                "compaction temp survived: {name}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_scans_to_none() {
        assert!(scan_file(&temp_path("missing")).unwrap().is_none());
    }

    #[test]
    fn empty_file_is_a_healthy_empty_journal() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let scan = scan_file(&path).unwrap().unwrap();
        assert_eq!(scan.frames, 0);
        assert_eq!(scan.stop, None);
        assert_eq!(scan.last_hash, GENESIS_HASH);
        std::fs::remove_file(&path).unwrap();
    }
}
