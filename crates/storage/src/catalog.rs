//! The materialization catalog.
//!
//! HELIX materializes selected intermediate results at iteration `t` so
//! that iteration `t+1` can load instead of recompute (paper §5). The
//! catalog is the on-disk half of that loop:
//!
//! * artifacts are stored one-per-file, named by the 128-bit signature of
//!   the operator output (`helix-core`'s Merkle chain hash), so a hit *is*
//!   an equivalent materialization in the sense of Definition 3;
//! * a JSON manifest makes the store durable across sessions and
//!   human-inspectable;
//! * every store/load is timed through the [`DiskProfile`], and measured
//!   load times are remembered — these are the `l_i` statistics OEP uses
//!   ("if a node has an equivalent materialization … we would have run the
//!   exact same operator before and recorded accurate cᵢ and lᵢ", §5.2);
//! * `purge` removes deprecated artifacts (HELIX "purges any previous
//!   materialization of original operators prior to execution", §6.6).

use crate::codec::{decode_value, encode_value};
use crate::disk::DiskProfile;
use helix_common::hash::Signature;
use helix_common::timing::Nanos;
use helix_common::{HelixError, Result};
use helix_data::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Metadata for one materialized artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Hex rendering of the owning signature.
    pub signature: String,
    /// File name inside the catalog root.
    pub file: String,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Human-readable node name (reports only; identity is the signature).
    pub node_name: String,
    /// Iteration number at which the artifact was written.
    pub created_iteration: u64,
    /// Time spent writing (throttled), in nanoseconds.
    pub write_nanos: Nanos,
    /// Most recent measured load time, if the artifact was ever loaded.
    pub measured_load_nanos: Option<Nanos>,
}

#[derive(Default, Serialize, Deserialize)]
struct Manifest {
    entries: Vec<CatalogEntry>,
}

struct Inner {
    entries: HashMap<Signature, CatalogEntry>,
    total_bytes: u64,
}

/// Directory-backed artifact store keyed by operator-output signatures.
pub struct MaterializationCatalog {
    root: PathBuf,
    disk: DiskProfile,
    inner: Mutex<Inner>,
}

impl MaterializationCatalog {
    const MANIFEST: &'static str = "manifest.json";

    /// Open (or create) a catalog rooted at `root`, reading any existing
    /// manifest so previous sessions' artifacts are reusable.
    pub fn open(root: impl Into<PathBuf>, disk: DiskProfile) -> Result<MaterializationCatalog> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut entries = HashMap::new();
        let mut total_bytes = 0;
        let manifest_path = root.join(Self::MANIFEST);
        if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path)?;
            let manifest: Manifest = serde_json::from_str(&text)
                .map_err(|e| HelixError::codec(format!("manifest parse error: {e}")))?;
            for entry in manifest.entries {
                let sig = Signature::from_hex(&entry.signature)
                    .ok_or_else(|| HelixError::codec("bad signature in manifest"))?;
                // Only trust entries whose backing file still exists.
                if root.join(&entry.file).exists() {
                    total_bytes += entry.bytes;
                    entries.insert(sig, entry);
                }
            }
        }
        Ok(MaterializationCatalog { root, disk, inner: Mutex::new(Inner { entries, total_bytes }) })
    }

    /// Open a throwaway catalog in a fresh temp directory (tests, examples).
    pub fn open_temp(disk: DiskProfile) -> Result<MaterializationCatalog> {
        let dir = std::env::temp_dir().join(format!(
            "helix-catalog-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::open(dir, disk)
    }

    /// The disk profile in force.
    pub fn disk(&self) -> DiskProfile {
        self.disk
    }

    /// Catalog root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether an equivalent materialization exists (Definition 3).
    pub fn contains(&self, sig: Signature) -> bool {
        self.inner.lock().entries.contains_key(&sig)
    }

    /// Metadata for a signature.
    pub fn entry(&self, sig: Signature) -> Option<CatalogEntry> {
        self.inner.lock().entries.get(&sig).cloned()
    }

    /// All entries (deterministically ordered by signature) for reports.
    pub fn entries(&self) -> Vec<CatalogEntry> {
        let inner = self.inner.lock();
        let mut out: Vec<CatalogEntry> = inner.entries.values().cloned().collect();
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    /// Total bytes currently materialized.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().total_bytes
    }

    /// Number of artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no artifacts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load-time estimate for OEP: the measured load time if one exists,
    /// else a bandwidth-model estimate from the artifact size.
    pub fn estimated_load_nanos(&self, sig: Signature) -> Option<Nanos> {
        let inner = self.inner.lock();
        let entry = inner.entries.get(&sig)?;
        Some(
            entry.measured_load_nanos.unwrap_or_else(|| self.disk.estimate_load_nanos(entry.bytes)),
        )
    }

    /// Materialize `value` under `sig`. Returns `(encoded bytes, write
    /// nanoseconds)`. Overwrites any previous artifact for the signature.
    pub fn store(
        &self,
        sig: Signature,
        node_name: &str,
        iteration: u64,
        value: &Value,
    ) -> Result<(u64, Nanos)> {
        let encoded = encode_value(value);
        let bytes = encoded.len() as u64;
        let file = format!("{}.hxm", sig.to_hex());
        let path = self.root.join(&file);
        let (io_result, write_nanos) =
            self.disk.run_write(bytes, || std::fs::write(&path, &encoded));
        io_result?;
        {
            let mut inner = self.inner.lock();
            if let Some(old) = inner.entries.remove(&sig) {
                inner.total_bytes -= old.bytes;
            }
            inner.total_bytes += bytes;
            inner.entries.insert(
                sig,
                CatalogEntry {
                    signature: sig.to_hex(),
                    file,
                    bytes,
                    node_name: node_name.to_string(),
                    created_iteration: iteration,
                    write_nanos,
                    measured_load_nanos: None,
                },
            );
        }
        self.flush_manifest()?;
        Ok((bytes, write_nanos))
    }

    /// Load the artifact for `sig`, recording the measured load time.
    /// Returns `(value, load nanoseconds)`.
    pub fn load(&self, sig: Signature) -> Result<(Value, Nanos)> {
        let (file, bytes) = {
            let inner = self.inner.lock();
            let entry = inner
                .entries
                .get(&sig)
                .ok_or_else(|| HelixError::not_found("catalog entry", sig.to_hex()))?;
            (entry.file.clone(), entry.bytes)
        };
        let path = self.root.join(&file);
        let (io_result, load_nanos) = self.disk.run_read(bytes, || std::fs::read(&path));
        let encoded = io_result?;
        let value = decode_value(&encoded)?;
        if let Some(entry) = self.inner.lock().entries.get_mut(&sig) {
            entry.measured_load_nanos = Some(load_nanos);
        }
        Ok((value, load_nanos))
    }

    /// Remove a deprecated artifact. Returns whether anything was removed.
    pub fn purge(&self, sig: Signature) -> Result<bool> {
        let removed = {
            let mut inner = self.inner.lock();
            match inner.entries.remove(&sig) {
                Some(entry) => {
                    inner.total_bytes -= entry.bytes;
                    Some(entry.file)
                }
                None => None,
            }
        };
        match removed {
            Some(file) => {
                let path = self.root.join(file);
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                self.flush_manifest()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Remove every artifact.
    pub fn clear(&self) -> Result<()> {
        let files: Vec<String> = {
            let mut inner = self.inner.lock();
            let files = inner.entries.values().map(|e| e.file.clone()).collect();
            inner.entries.clear();
            inner.total_bytes = 0;
            files
        };
        for file in files {
            let path = self.root.join(file);
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        self.flush_manifest()
    }

    fn flush_manifest(&self) -> Result<()> {
        let manifest = Manifest { entries: self.entries() };
        let text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| HelixError::codec(format!("manifest serialize error: {e}")))?;
        std::fs::write(self.root.join(Self::MANIFEST), text)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;

    fn scalar(v: f64) -> Value {
        Value::Scalar(Scalar::F64(v))
    }

    fn temp_catalog() -> MaterializationCatalog {
        MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap()
    }

    #[test]
    fn store_load_roundtrip() {
        let cat = temp_catalog();
        let sig = Signature::of_str("census/rows@v1");
        assert!(!cat.contains(sig));
        let (bytes, _) = cat.store(sig, "rows", 0, &scalar(0.5)).unwrap();
        assert!(bytes > 0);
        assert!(cat.contains(sig));
        let (value, load_nanos) = cat.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(0.5));
        assert!(load_nanos > 0);
        // Load time is remembered for OEP statistics.
        assert_eq!(cat.entry(sig).unwrap().measured_load_nanos, Some(load_nanos));
        assert_eq!(cat.estimated_load_nanos(sig), Some(load_nanos));
    }

    #[test]
    fn missing_signature_errors() {
        let cat = temp_catalog();
        let sig = Signature::of_str("never-stored");
        assert!(cat.load(sig).is_err());
        assert_eq!(cat.estimated_load_nanos(sig), None);
        assert!(!cat.purge(sig).unwrap());
    }

    #[test]
    fn overwrite_replaces_bytes_accounting() {
        let cat = temp_catalog();
        let sig = Signature::of_str("x");
        cat.store(sig, "x", 0, &Value::Scalar(Scalar::Text("small".into()))).unwrap();
        let b1 = cat.total_bytes();
        cat.store(sig, "x", 1, &Value::Scalar(Scalar::Text("much much larger".repeat(10))))
            .unwrap();
        let b2 = cat.total_bytes();
        assert!(b2 > b1);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn purge_frees_space_and_files() {
        let cat = temp_catalog();
        let a = Signature::of_str("a");
        let b = Signature::of_str("b");
        cat.store(a, "a", 0, &scalar(1.0)).unwrap();
        cat.store(b, "b", 0, &scalar(2.0)).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.purge(a).unwrap());
        assert_eq!(cat.len(), 1);
        assert!(!cat.contains(a));
        assert!(cat.contains(b));
        let bytes_after = cat.total_bytes();
        assert_eq!(bytes_after, cat.entry(b).unwrap().bytes, "only b's bytes remain accounted");
    }

    #[test]
    fn manifest_survives_reopen() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("persistent");
        cat.store(sig, "node", 3, &scalar(9.0)).unwrap();
        drop(cat);

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(sig));
        let entry = reopened.entry(sig).unwrap();
        assert_eq!(entry.node_name, "node");
        assert_eq!(entry.created_iteration, 3);
        let (value, _) = reopened.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn reopen_drops_entries_with_missing_files() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("vanishing");
        cat.store(sig, "node", 0, &scalar(1.0)).unwrap();
        let file = root.join(&cat.entry(sig).unwrap().file);
        drop(cat);
        std::fs::remove_file(file).unwrap();
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(!reopened.contains(sig));
        assert_eq!(reopened.total_bytes(), 0);
    }

    #[test]
    fn clear_removes_everything() {
        let cat = temp_catalog();
        for i in 0..5 {
            cat.store(Signature::of_str(&format!("n{i}")), "n", 0, &scalar(i as f64)).unwrap();
        }
        assert_eq!(cat.len(), 5);
        cat.clear().unwrap();
        assert_eq!(cat.len(), 0);
        assert_eq!(cat.total_bytes(), 0);
        assert!(cat.is_empty());
    }

    #[test]
    fn throttled_store_and_load_meet_bandwidth_floor() {
        let cat = MaterializationCatalog::open_temp(DiskProfile::scaled(10_000_000, 0)).unwrap();
        let big = Value::Scalar(Scalar::Text("x".repeat(100_000)));
        let sig = Signature::of_str("big");
        let (bytes, write_nanos) = cat.store(sig, "big", 0, &big).unwrap();
        // 100 KB at 10 MB/s = 10 ms.
        let floor = bytes * 100; // ns per byte at 10 MB/s
        assert!(write_nanos >= floor, "write {write_nanos} < floor {floor}");
        let (_, load_nanos) = cat.load(sig).unwrap();
        assert!(load_nanos >= floor, "load {load_nanos} < floor {floor}");
    }
}
