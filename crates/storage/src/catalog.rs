//! The materialization catalog.
//!
//! HELIX materializes selected intermediate results at iteration `t` so
//! that iteration `t+1` can load instead of recompute (paper §5). The
//! catalog is the on-disk half of that loop:
//!
//! * artifacts are stored one-per-file, named by the 128-bit signature of
//!   the operator output (`helix-core`'s Merkle chain hash), so a hit *is*
//!   an equivalent materialization in the sense of Definition 3;
//! * an append-only, hash-chained journal makes the store durable across
//!   sessions (see "Crash consistency" below);
//! * every store/load is timed through the [`DiskProfile`], and measured
//!   load times are remembered — these are the `l_i` statistics OEP uses
//!   ("if a node has an equivalent materialization … we would have run the
//!   exact same operator before and recorded accurate cᵢ and lᵢ", §5.2);
//! * `purge`/`release` remove deprecated artifacts (HELIX "purges any
//!   previous materialization of original operators prior to execution",
//!   §6.6).
//!
//! ## Multi-tenancy
//!
//! One catalog can back many concurrent sessions (`helix-serve`). Every
//! artifact carries an *owner set*: the tenants that stored it. Signature
//! keying makes cross-tenant reuse automatic — if tenant A materialized a
//! node that tenant B's workflow also produces, B's planner sees a hit and
//! loads A's bytes (identical to what B would compute, because signatures
//! capture full provenance: operator versions, parent linkage, volatile
//! nonces, *and* the execution environment — seeds — at the nodes it
//! affects, so tenants may run distinct seeds and still share exactly the
//! seed-independent artifacts). The owner set drives:
//!
//! * **accounting** — [`used_bytes_for`](MaterializationCatalog::used_bytes_for)
//!   charges each owner the full size of every artifact it stored, which
//!   is what the engine's per-tenant storage budget checks;
//! * **hit attribution** — [`load_for`](MaterializationCatalog::load_for)
//!   classifies each load as a self-hit or a *cross-tenant* hit by the
//!   entry's **writer** set (who computed the bytes);
//! * **safe deprecation** — [`release`](MaterializationCatalog::release)
//!   removes one tenant's claim and deletes the file only when no owner
//!   remains. Consumers pin planned loads up front via
//!   [`claim_if_present`](MaterializationCatalog::claim_if_present)
//!   (atomic; failure = replan), so one tenant's iteration can never
//!   delete an artifact another tenant's in-flight plan depends on;
//! * **quota eviction** — [`evict_owned`](MaterializationCatalog::evict_owned)
//!   frees a tenant's *sole-owned* artifacts (deterministic oldest-first
//!   order) when a mandatory store would overflow its quota;
//! * **global-pressure eviction** — when the catalog carries a *global*
//!   byte budget ([`set_global_budget`](MaterializationCatalog::set_global_budget);
//!   `helix-serve` sets its service-wide storage budget) and a store
//!   would overflow it even though every tenant is inside its own quota,
//!   [`evict_global`](MaterializationCatalog::evict_global) frees
//!   artifacts across tenants in **retention-score order**: sole-owned
//!   (refcount ≤ 1) artifacts go first, oldest first, then by signature;
//!   cross-tenant artifacts with writer/reader refcount > 1 are retained
//!   longer (popularity retention) and fall only when nothing unpopular
//!   remains. Entries named by the caller's `protected` set (its current
//!   plan) or transiently **pinned** by any in-flight iteration
//!   ([`pin_many`](MaterializationCatalog::pin_many)) are never victims,
//!   so global pressure can never delete bytes an executing plan is
//!   about to load. Every eviction (quota or global) is recorded in a
//!   bounded attribution log
//!   ([`eviction_log`](MaterializationCatalog::eviction_log), last
//!   [`EVICTION_LOG_CAP`] events) that `ServiceStats` surfaces.
//!
//! ## Crash consistency: the catalog journal
//!
//! Durability is an append-only, hash-chained **journal**
//! (`catalog.journal`, see [`crate::journal`]): every commit appends one
//! O(entry) frame (`Upsert`/`Remove`/`Clear`) instead of rewriting a
//! whole manifest, and artifact writes stay temp-file + atomic-rename.
//! Recovery is deterministic: scan the journal, verify CRC and chain
//! linkage per frame, replay the longest valid prefix, then drop entries
//! whose backing artifact file is missing. Torn tails are truncated,
//! stale temp files and artifact files the journal does not reference
//! are swept, and sweep *failures* are surfaced (not swallowed) in
//! [`RecoveryStats`] together with an on-disk byte reconciliation — an
//! orphan that cannot be deleted stays visible as `stranded_bytes`
//! instead of silently consuming disk forever. The journal is compacted
//! to a single `Snapshot` frame when it grows well past the live entry
//! count (and on every recovery/migration), so scans stay bounded.
//!
//! ## Format versioning
//!
//! Frames carry the format version
//! ([`MaterializationCatalog::FORMAT_VERSION`], mirrored by
//! [`crate::frame::FORMAT_VERSION`]) naming the signature keying scheme
//! entries were written under. Opening a catalog from a *newer* format
//! fails with a clear error (reading it anyway would misinterpret the
//! keying); opening one from an *older* format — a pre-journal
//! `manifest.json` catalog (v1/v2) — migrates by invalidation: entries
//! dropped, artifact files and manifest swept, no panic. Artifacts are
//! recomputable by definition (the paper's premise), so invalidation
//! costs recomputation, never correctness.
//!
//! ## Staged (deferred) commits
//!
//! The pipelined engine moves elective materialization writes off the
//! critical path: [`stage_owned`](MaterializationCatalog::stage_owned)
//! performs *all bookkeeping immediately* — the entry appears in the
//! index, owner sets and quota accounting update, `contains`/loads work
//! (loads of a staged entry are served from the retained in-memory
//! bytes) — but defers the throttled file write, which a background
//! writer later lands with
//! [`complete_stage`](MaterializationCatalog::complete_stage) (sealing
//! one `Upsert` journal frame for the now-durable file) and
//! [`commit_staged`](MaterializationCatalog::commit_staged) fsyncs the
//! journal once the queue drains. Because every *decision* consumes only
//! the in-memory index (which updates synchronously at stage time, in
//! the engine's deterministic finalize order), the final catalog
//! contents are independent of write completion order. The journal never
//! references a file that is not yet durable: entries still pending are
//! excluded from every frame, so a crash mid-background-write recovers
//! to a consistent catalog holding exactly the writes that landed —
//! what a serial engine crash at the same point would leave.

use crate::codec::{decode_value, encode_value};
use crate::disk::DiskProfile;
use crate::frame::FrameKind;
use crate::journal::{self, JournalWriter, ScanStop};
use helix_common::hash::Signature;
use helix_common::timing::Nanos;
use helix_common::{HelixError, Result, RingLog};
use helix_data::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Owner label used by solo (non-service) sessions.
pub const SOLO_OWNER: &str = "";

/// Process-wide uniquifier for temp files and temp catalogs.
static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// Metadata for one materialized artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Hex rendering of the owning signature.
    pub signature: String,
    /// File name inside the catalog root.
    pub file: String,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Human-readable node name (reports only; identity is the signature).
    pub node_name: String,
    /// Iteration number at which the artifact was written.
    pub created_iteration: u64,
    /// Time spent writing (throttled), in nanoseconds.
    pub write_nanos: Nanos,
    /// Most recent measured load time, if the artifact was ever loaded.
    pub measured_load_nanos: Option<Nanos>,
    /// Tenants with a lifecycle claim on this artifact: everyone who
    /// stored it plus everyone who claimed/loaded it into their working
    /// set (`None`/empty = legacy entry predating ownership, or a
    /// recovered entry). The artifact lives until the last owner
    /// releases it.
    pub owners: Option<Vec<String>>,
    /// The subset of owners that actually *wrote* the bytes. Hit
    /// attribution uses this: a load by a non-writer is a cross-tenant
    /// hit no matter how long the loader has had a claim.
    pub writers: Option<Vec<String>>,
}

impl CatalogEntry {
    /// The lifecycle-claim set (empty for legacy/recovered entries).
    pub fn owners(&self) -> &[String] {
        self.owners.as_deref().unwrap_or(&[])
    }

    /// The writer set (empty for legacy/recovered entries).
    pub fn writers(&self) -> &[String] {
        self.writers.as_deref().unwrap_or(&[])
    }

    /// Whether `owner` has a lifecycle claim.
    pub fn is_owned_by(&self, owner: &str) -> bool {
        self.owners().iter().any(|o| o == owner)
    }

    /// Whether `owner` stored these bytes.
    pub fn is_written_by(&self, owner: &str) -> bool {
        self.writers().iter().any(|o| o == owner)
    }

    fn add_owner(&mut self, owner: &str) {
        let owners = self.owners.get_or_insert_with(Vec::new);
        if !owners.iter().any(|o| o == owner) {
            owners.push(owner.to_string());
            owners.sort();
        }
    }

    fn add_writer(&mut self, owner: &str) {
        let writers = self.writers.get_or_insert_with(Vec::new);
        if !writers.iter().any(|o| o == owner) {
            writers.push(owner.to_string());
            writers.sort();
        }
    }
}

/// Per-owner usage and reuse statistics (process-lifetime, not persisted).
#[derive(Clone, Debug, Default)]
pub struct OwnerStats {
    /// Loads of artifacts this owner had stored itself.
    pub self_hits: u64,
    /// Loads of artifacts stored only by *other* owners — the
    /// cross-tenant reuse the service exists to harvest.
    pub cross_hits: u64,
    /// Artifacts stored by this owner.
    pub stores: u64,
    /// Bytes written by this owner's stores.
    pub stored_bytes: u64,
    /// Artifacts evicted from this owner to satisfy its quota.
    pub quota_evictions: u64,
    /// Artifacts this owner had a claim on that fell to *global-pressure*
    /// eviction (the global byte budget was tight; the victim may have
    /// been triggered by another tenant's store).
    pub global_evictions: u64,
}

/// Why an artifact was evicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum EvictionKind {
    /// The owning tenant's quota was tight (scoped to its sole-owned
    /// artifacts).
    Quota,
    /// The catalog's *global* byte budget was tight (victims scored
    /// across tenants by the retention function).
    GlobalPressure,
}

/// One entry of the bounded eviction-attribution log.
#[derive(Clone, Debug, Serialize)]
pub struct EvictionRecord {
    /// Hex signature of the evicted artifact.
    pub signature: String,
    /// Human-readable node name.
    pub node_name: String,
    /// Encoded size that was freed.
    pub bytes: u64,
    /// Owner set at eviction time (whose working sets lost the artifact).
    pub owners: Vec<String>,
    /// The tenant whose store triggered the eviction.
    pub trigger: String,
    /// Quota or global pressure.
    pub kind: EvictionKind,
}

/// How many recent [`EvictionRecord`]s the catalog retains — bounded, so
/// a long-running service's stats cannot grow without limit (the same
/// treatment as per-tenant session-seed history; both now share the
/// workspace-wide [`helix_common::BOUNDED_LOG_CAP`]).
pub const EVICTION_LOG_CAP: usize = helix_common::BOUNDED_LOG_CAP;

impl OwnerStats {
    /// Total catalog loads attributed to this owner.
    pub fn loads(&self) -> u64 {
        self.self_hits + self.cross_hits
    }

    /// Fraction of this owner's loads served by other tenants' artifacts.
    pub fn cross_hit_rate(&self) -> f64 {
        let loads = self.loads();
        if loads == 0 {
            return 0.0;
        }
        self.cross_hits as f64 / loads as f64
    }
}

/// The pre-journal (format ≤ 2) `manifest.json` layout. Read only to
/// recognize a legacy catalog and migrate it by invalidation; never
/// written.
#[derive(Default, Serialize, Deserialize)]
struct LegacyManifest {
    /// Keying-scheme version of every signature in `entries`. `None`
    /// (the field predates versioning) means format 1: signatures
    /// computed *without* execution-environment provenance.
    format_version: Option<u32>,
    entries: Vec<CatalogEntry>,
}

/// Payload of a [`FrameKind::Snapshot`] journal frame: the full entry
/// set at a compaction point, plus the keying-format version the chain
/// was written under (the chain's first frame is always a snapshot, so
/// the journal is self-describing).
#[derive(Serialize, Deserialize)]
struct SnapshotRecord {
    format_version: u32,
    entries: Vec<CatalogEntry>,
}

/// Payload of a [`FrameKind::Remove`] journal frame.
#[derive(Serialize, Deserialize)]
struct RemoveRecord {
    signature: String,
}

/// One file the recovery sweep tried and failed to delete. Surfaced
/// instead of swallowed: a permission error must not leave orphan bytes
/// invisible forever.
#[derive(Clone, Debug, Serialize)]
pub struct SweepFailure {
    /// File name inside the catalog root.
    pub file: String,
    /// The OS error.
    pub error: String,
}

/// What [`MaterializationCatalog::open`] found and repaired. Serialized
/// alongside benchmark artifacts in CI so recovery behavior is
/// observable, not just correct.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RecoveryStats {
    /// Whether open had to repair anything at all (torn tail, damaged
    /// frames, dropped entries, migration, or salvage).
    pub recovered: bool,
    /// Set when a pre-journal catalog was migrated by invalidation; the
    /// old format version.
    pub migrated_from: Option<u32>,
    /// Entries were rebuilt by scanning artifact files (journal absent
    /// but the marker proves current-format keying).
    pub salvaged_by_scan: bool,
    /// Frames replayed from the journal's valid prefix.
    pub journal_frames_replayed: u64,
    /// Bytes past the valid prefix (torn tail / damage), truncated away.
    pub journal_tail_bytes: u64,
    /// Why the journal scan stopped early, when it did.
    pub journal_stop: Option<String>,
    /// Replayed entries dropped because their backing file is missing.
    pub entries_dropped_missing_file: u64,
    /// Crash leftovers (temps, unreferenced artifacts, legacy manifests)
    /// deleted by the sweep.
    pub swept_files: u64,
    /// Bytes those deletions freed.
    pub swept_bytes: u64,
    /// Sweep deletions that *failed* — surfaced, not ignored.
    pub sweep_failures: Vec<SweepFailure>,
    /// Bytes of files that should be gone but could not be deleted.
    pub stranded_bytes: u64,
    /// Total bytes of all files in the catalog directory after recovery
    /// (reconciliation scan).
    pub disk_bytes_after_open: u64,
    /// Bytes accounted by live entries after recovery. The difference
    /// from `disk_bytes_after_open` is journal + marker + stranded
    /// bytes.
    pub accounted_bytes_after_open: u64,
    /// The journal was rewritten (compacted to one snapshot) at open.
    pub journal_rewritten: bool,
}

/// A mutation the journal must record.
enum JournalOp {
    /// Entry for this signature was inserted/replaced (payload is a
    /// fresh clone read under the lock at append time).
    Upsert(Signature),
    /// Entry for this signature was removed.
    Remove(Signature),
    /// All entries were removed.
    Clear,
}

struct Inner {
    entries: HashMap<Signature, CatalogEntry>,
    total_bytes: u64,
    owned_bytes: HashMap<String, u64>,
    stats: HashMap<String, OwnerStats>,
    /// Staged entries whose file write has not landed yet: encoded bytes
    /// retained so loads can be served from memory meanwhile. Keyed by
    /// signature; the `Arc` identity doubles as a staleness token for
    /// [`MaterializationCatalog::complete_stage`].
    pending: HashMap<Signature, Arc<Vec<u8>>>,
    /// Global byte budget; `None` = unbounded (solo-session semantics,
    /// where only per-tenant budgets apply).
    global_budget: Option<u64>,
    /// Transient pin refcounts: signatures an in-flight iteration's plan
    /// will load. Global-pressure eviction never touches a pinned entry —
    /// this is the cross-session analogue of the caller-local `protected`
    /// set. Pins are scoped to an iteration (RAII in the session layer),
    /// unlike owner claims, which persist.
    pins: HashMap<Signature, usize>,
    /// Bounded attribution log of evictions ([`EVICTION_LOG_CAP`]).
    eviction_log: RingLog<EvictionRecord>,
    /// Entries whose in-memory metadata (claims, measured load times)
    /// has drifted from the journal. Loads and claims stay write-free on
    /// the hot path; the dirty set is drained — one `Upsert` frame each,
    /// with a fresh clone read under the lock — at the next journal
    /// commit.
    dirty: HashSet<Signature>,
    /// Monotonic byte-accounting epoch: bumped whenever any owner's
    /// charged bytes (or the physical total) change — every such change
    /// flows through [`Inner::credit`]/[`Inner::debit`] (entries always
    /// carry ≥ 1 owner) or [`MaterializationCatalog::clear`]. Readers
    /// that derive state from byte usage (the admission scheduler's DRF
    /// ledger) memoize on this and skip their refresh walk while it is
    /// unchanged.
    byte_epoch: u64,
}

impl Inner {
    fn credit(&mut self, owners: &[String], bytes: u64) {
        self.byte_epoch += 1;
        for owner in owners {
            *self.owned_bytes.entry(owner.clone()).or_insert(0) += bytes;
        }
    }

    fn debit(&mut self, owners: &[String], bytes: u64) {
        self.byte_epoch += 1;
        for owner in owners {
            if let Some(b) = self.owned_bytes.get_mut(owner) {
                *b = b.saturating_sub(bytes);
            }
        }
    }

    /// Append to the bounded eviction-attribution log (oldest dropped
    /// beyond [`EVICTION_LOG_CAP`], counted by the ring).
    fn log_eviction(&mut self, record: EvictionRecord) {
        self.eviction_log.push(record);
    }

    /// Remove an entry and fix all byte accounting; returns its file name.
    /// A staged-but-unwritten entry is cancelled too (the in-flight
    /// background write detects the dropped pending token and unlinks
    /// whatever it landed).
    fn remove_entry(&mut self, sig: Signature) -> Option<String> {
        let entry = self.entries.remove(&sig)?;
        self.pending.remove(&sig);
        self.dirty.remove(&sig);
        self.total_bytes -= entry.bytes;
        let owners = entry.owners().to_vec();
        self.debit(&owners, entry.bytes);
        Some(entry.file)
    }
}

/// Directory-backed artifact store keyed by operator-output signatures.
///
/// Safe to share (`Arc`) across threads and sessions: the in-memory index
/// sits behind a mutex, artifact writes are atomic temp-file + rename
/// sequences, and journal appends are serialized by the journal-writer
/// mutex. Lock order is always journal → inner.
pub struct MaterializationCatalog {
    root: PathBuf,
    disk: DiskProfile,
    inner: Mutex<Inner>,
    /// The append-only durable log. Holding this lock across
    /// snapshot-read + append also guarantees a slower committer can
    /// never write an older state after a newer one.
    journal: Mutex<JournalWriter>,
    /// What `open` found and repaired (immutable after open).
    recovery: RecoveryStats,
}

impl MaterializationCatalog {
    /// Pre-journal manifest names (format ≤ 2) — read for migration,
    /// swept afterwards.
    const LEGACY_MANIFEST: &'static str = "manifest.json";
    const LEGACY_MANIFEST_TMP: &'static str = "manifest.json.tmp";
    /// The journal file name.
    const JOURNAL: &'static str = "catalog.journal";
    /// Standalone keying-format marker written next to the journal; the
    /// recovery paths consult it when no journal exists (artifact files
    /// carry no keying version of their own).
    const MARKER: &'static str = "format.version";
    /// The catalog format this build reads and writes. Bump whenever the
    /// signature keying scheme OR the durable layout changes meaning
    /// (v2: execution-environment provenance — seeds — folded into chain
    /// signatures; v3: the hash-chained journal replaced the JSON
    /// manifest). Mirrored by the frame-format version
    /// ([`crate::frame::FORMAT_VERSION`]).
    pub const FORMAT_VERSION: u32 = 3;
    /// Compact the journal once it carries more than
    /// `4 × live entries + 64` frames: scans stay O(catalog), while
    /// steady-state commits stay O(entry).
    const COMPACT_SLACK: u64 = 64;

    /// Open (or create) a catalog rooted at `root`, replaying the journal
    /// so previous sessions' artifacts are reusable.
    ///
    /// Recovery is deterministic (module docs): scan the journal, replay
    /// the longest CRC- and chain-valid prefix, drop entries whose
    /// backing artifact file is missing, sweep crash leftovers (recording
    /// failures, not swallowing them), and report everything in
    /// [`RecoveryStats`]. A pre-journal (`manifest.json`) catalog is
    /// migrated by invalidation; artifact files found with a
    /// current-format marker but no journal are salvaged by scan.
    pub fn open(root: impl Into<PathBuf>, disk: DiskProfile) -> Result<MaterializationCatalog> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let journal_path = root.join(Self::JOURNAL);
        let legacy_path = root.join(Self::LEGACY_MANIFEST);
        let legacy_tmp_path = root.join(Self::LEGACY_MANIFEST_TMP);
        let mut stats = RecoveryStats::default();

        // The standalone marker file names the keying scheme of the
        // artifact files for recovery paths where no journal survives
        // (the artifact files themselves are unversioned).
        let marker_version: Option<u32> = std::fs::read_to_string(root.join(Self::MARKER))
            .ok()
            .and_then(|s| s.trim().parse().ok());
        if marker_version.is_some_and(|v| v > Self::FORMAT_VERSION) {
            return Err(HelixError::config(format!(
                "catalog at {} carries format-version marker v{}, newer than this build's v{}; \
                 refusing to misread it (upgrade helix or use a different catalog directory)",
                root.display(),
                marker_version.unwrap_or(0),
                Self::FORMAT_VERSION,
            )));
        }

        let replay_begin = helix_obs::now_nanos();
        let scan = journal::scan_file(&journal_path)?;
        let mut entries: HashMap<Signature, CatalogEntry> = HashMap::new();
        // A fresh snapshot is written (instead of appending to the
        // scanned prefix) whenever the journal is absent, damaged beyond
        // a clean end, migrated, or salvaged; `maybe-compact` handles the
        // merely-long case below.
        let mut needs_rewrite = scan.is_none();
        match &scan {
            Some(scan) => {
                // A *first* frame from a newer frame format means a newer
                // build owns this directory: refuse rather than treat its
                // data as damage and destroy it. (A mid-journal version
                // jump is indistinguishable from bit rot in the version
                // byte and is handled as damage: the prefix before it is
                // replayed, the rest dropped.)
                if scan.frames == 0 {
                    if let Some(ScanStop::UnsupportedVersion(v)) = scan.stop {
                        if u32::from(v) > Self::FORMAT_VERSION {
                            return Err(HelixError::config(format!(
                                "catalog journal at {} begins with frame-format v{v}, newer \
                                 than this build's v{}; refusing to misread it (upgrade helix \
                                 or use a different catalog directory)",
                                root.display(),
                                Self::FORMAT_VERSION,
                            )));
                        }
                    }
                }
                stats.journal_tail_bytes = scan.tail_bytes;
                stats.journal_stop = scan.stop.map(|s| s.to_string());
                if scan.stop.is_some() || scan.tail_bytes > 0 {
                    stats.recovered = true;
                    needs_rewrite = true;
                }
                let (version, replayed, frames_replayed, clean) = Self::replay(&scan.records);
                stats.journal_frames_replayed = frames_replayed;
                entries = replayed;
                if !clean {
                    // A CRC-valid frame carrying an unreadable payload:
                    // the prefix before it is still trusted, the rest is
                    // not.
                    stats.journal_stop = Some("bad-payload".to_string());
                    stats.recovered = true;
                    needs_rewrite = true;
                }
                // Keying-format gate, from the snapshot frame. Newer:
                // refuse rather than misread (signature-equal-looking
                // entries might not be shareable). Older: migrate by
                // invalidation — the entries' signatures were computed
                // under a scheme that could alias current-scheme
                // signatures while holding different bytes. Artifacts
                // are recomputable by definition, so invalidation costs
                // recomputation, never correctness.
                if version > Self::FORMAT_VERSION {
                    return Err(HelixError::config(format!(
                        "catalog at {} uses format v{version}, newer than this build's v{}; \
                         refusing to misread it (upgrade helix or use a different catalog \
                         directory)",
                        root.display(),
                        Self::FORMAT_VERSION,
                    )));
                }
                if version < Self::FORMAT_VERSION {
                    entries.clear();
                    stats.migrated_from = Some(version);
                    stats.recovered = true;
                    needs_rewrite = true;
                }
            }
            None => {
                // No journal. Either a pre-journal catalog (a legacy JSON
                // manifest names its format), a crashed current-format
                // directory (marker present, artifacts only), or a fresh
                // directory.
                let legacy = Self::read_legacy_manifest(&legacy_path)
                    .or_else(|| Self::read_legacy_manifest(&legacy_tmp_path));
                let legacy_present = legacy_path.exists() || legacy_tmp_path.exists();
                if let Some(manifest) = legacy {
                    // Format ≤ 2 signatures were computed under older
                    // keying schemes. Migrate by invalidation: entries
                    // dropped, manifest and artifact files swept below.
                    stats.migrated_from = Some(manifest.format_version.unwrap_or(1));
                    stats.recovered = true;
                } else if legacy_present {
                    // Unreadable legacy manifest: same migration; the
                    // version comes from the marker when it survives.
                    stats.migrated_from = Some(marker_version.unwrap_or(1));
                    stats.recovered = true;
                } else if marker_version == Some(Self::FORMAT_VERSION) {
                    // Current-format directory that lost its journal (a
                    // crash before the first journal write, or manual
                    // deletion): salvage the artifact files — sizes and
                    // signatures (what correctness depends on) live in
                    // the file names.
                    for entry in Self::scan_artifacts(&root)? {
                        let sig = Signature::from_hex(&entry.signature)
                            .expect("scan_artifacts yields hex-named entries");
                        entries.insert(sig, entry);
                    }
                    if !entries.is_empty() {
                        stats.salvaged_by_scan = true;
                        stats.recovered = true;
                    }
                } else if Self::has_artifacts(&root)? {
                    // Artifacts with no journal, no manifest, and no
                    // current marker predate provenance keying: sweeping
                    // them (recomputable by definition) beats trusting
                    // them under the wrong scheme.
                    stats.migrated_from = Some(marker_version.unwrap_or(1));
                    stats.recovered = true;
                }
            }
        }
        let _ = helix_obs::span_at(
            helix_obs::layer::STORAGE,
            "recovery.replay",
            replay_begin,
            helix_obs::now_nanos().saturating_sub(replay_begin),
        )
        .amount(stats.journal_frames_replayed);

        let mut inner = Inner {
            entries: HashMap::new(),
            total_bytes: 0,
            owned_bytes: HashMap::new(),
            stats: HashMap::new(),
            pending: HashMap::new(),
            global_budget: None,
            pins: HashMap::new(),
            eviction_log: RingLog::new(EVICTION_LOG_CAP),
            dirty: HashSet::new(),
            byte_epoch: 0,
        };
        for (sig, entry) in entries {
            // Only trust entries whose backing file still exists (and is
            // a regular file — a directory squatting on the name cannot
            // serve loads).
            if root.join(&entry.file).is_file() {
                inner.total_bytes += entry.bytes;
                let owners = entry.owners().to_vec();
                inner.credit(&owners, entry.bytes);
                inner.entries.insert(sig, entry);
            } else {
                stats.entries_dropped_missing_file += 1;
                stats.recovered = true;
                needs_rewrite = true;
            }
        }

        // Sweep crash leftovers: temp files of every lane (artifact
        // writes, journal compactions, legacy manifest flushes), legacy
        // manifests (migrated or garbage either way), and artifact files
        // no live entry references — the journal is the sole source of
        // truth, so an unreferenced artifact is a stage that landed its
        // file but crashed before its journal frame. Failures are
        // recorded, never swallowed: a file that cannot be deleted stays
        // visible as stranded bytes instead of silently consuming disk.
        let referenced: HashSet<&str> = inner.entries.values().map(|e| e.file.as_str()).collect();
        let mut leftovers: Vec<(PathBuf, String)> = Vec::new();
        for dirent in std::fs::read_dir(&root)?.flatten() {
            let name = dirent.file_name().to_string_lossy().into_owned();
            let leftover = name.contains(".tmp-")
                || name == Self::LEGACY_MANIFEST
                || name == Self::LEGACY_MANIFEST_TMP
                || (name.ends_with(".hxm") && !referenced.contains(name.as_str()));
            if leftover {
                leftovers.push((dirent.path(), name));
            }
        }
        // Deterministic sweep (and stats) order regardless of read_dir's.
        leftovers.sort_by(|a, b| a.1.cmp(&b.1));
        for (path, name) in leftovers {
            Self::sweep_file(&path, &name, &mut stats);
        }
        if stats.swept_files > 0 || !stats.sweep_failures.is_empty() {
            stats.recovered = true;
        }

        // (Re)write the marker so future recovery paths know which
        // scheme this directory's artifacts use from here on.
        if marker_version != Some(Self::FORMAT_VERSION) {
            std::fs::write(root.join(Self::MARKER), format!("{}\n", Self::FORMAT_VERSION))?;
        }

        // Position the journal writer: resume the scanned chain (torn
        // tail truncated by `append_to`) when the prefix was healthy and
        // short enough, otherwise rewrite one fresh snapshot frame.
        let threshold = 4 * inner.entries.len() as u64 + Self::COMPACT_SLACK;
        let writer = match &scan {
            Some(scan) if !needs_rewrite && scan.frames <= threshold => {
                JournalWriter::append_to(&journal_path, scan)?
            }
            _ => {
                stats.journal_rewritten = true;
                let payload = Self::snapshot_payload(&inner)?;
                JournalWriter::rewrite(&journal_path, [(FrameKind::Snapshot, payload.as_slice())])?
            }
        };

        // Reconciliation: what is physically on disk vs what live
        // entries account for. The difference is journal + marker (+ any
        // stranded bytes) — drift beyond that is observable in CI.
        for dirent in std::fs::read_dir(&root)?.flatten() {
            if let Ok(meta) = dirent.metadata() {
                if meta.is_file() {
                    stats.disk_bytes_after_open += meta.len();
                }
            }
        }
        stats.accounted_bytes_after_open = inner.total_bytes;

        Ok(MaterializationCatalog {
            root,
            disk,
            inner: Mutex::new(inner),
            journal: Mutex::new(writer),
            recovery: stats,
        })
    }

    /// Replay scanned journal records into an entry map. Returns the
    /// keying-format version (current when the journal is empty), the
    /// live entries, the count of frames replayed, and whether every
    /// payload parsed — `false` means a CRC-valid frame carried an
    /// unreadable payload; the prefix *before* it is still trusted.
    fn replay(
        records: &[(FrameKind, Vec<u8>)],
    ) -> (u32, HashMap<Signature, CatalogEntry>, u64, bool) {
        let mut version = Self::FORMAT_VERSION;
        let mut map: HashMap<Signature, CatalogEntry> = HashMap::new();
        let mut replayed = 0u64;
        let insert = |map: &mut HashMap<Signature, CatalogEntry>, e: CatalogEntry| -> bool {
            match Signature::from_hex(&e.signature) {
                Some(sig) => {
                    map.insert(sig, e);
                    true
                }
                None => false,
            }
        };
        for (kind, payload) in records {
            let ok = match kind {
                FrameKind::Snapshot => match serde_json::from_slice::<SnapshotRecord>(payload) {
                    Ok(snap) => {
                        version = snap.format_version;
                        map.clear();
                        snap.entries.into_iter().all(|e| insert(&mut map, e))
                    }
                    Err(_) => false,
                },
                FrameKind::Upsert => match serde_json::from_slice::<CatalogEntry>(payload) {
                    Ok(e) => insert(&mut map, e),
                    Err(_) => false,
                },
                FrameKind::Remove => match serde_json::from_slice::<RemoveRecord>(payload) {
                    Ok(r) => match Signature::from_hex(&r.signature) {
                        Some(sig) => {
                            map.remove(&sig);
                            true
                        }
                        None => false,
                    },
                    Err(_) => false,
                },
                FrameKind::Clear => {
                    map.clear();
                    true
                }
                // An artifact frame has no business inside the journal.
                FrameKind::Artifact => false,
            };
            if !ok {
                return (version, map, replayed, false);
            }
            replayed += 1;
        }
        (version, map, replayed, true)
    }

    fn read_legacy_manifest(path: &Path) -> Option<LegacyManifest> {
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Whether any `*.hxm` artifact file exists under `root`.
    fn has_artifacts(root: &Path) -> Result<bool> {
        for dirent in std::fs::read_dir(root)? {
            if dirent?.file_name().to_string_lossy().ends_with(".hxm") {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Delete one crash leftover, recording the outcome in `stats`.
    fn sweep_file(path: &Path, name: &str, stats: &mut RecoveryStats) {
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        match std::fs::remove_file(path) {
            Ok(()) => {
                stats.swept_files += 1;
                stats.swept_bytes += bytes;
            }
            Err(e) => {
                stats
                    .sweep_failures
                    .push(SweepFailure { file: name.to_string(), error: e.to_string() });
                stats.stranded_bytes += bytes;
            }
        }
    }

    /// Last-resort recovery: rebuild entries from artifact files on disk.
    /// Node names and iteration numbers are lost; sizes and signatures
    /// (the parts correctness depends on) are not. The artifact files
    /// carry no keying-format version of their own — the caller gates the
    /// scanned entries on the standalone [`MARKER`](Self::MARKER) file,
    /// sweeping the salvage when the marker is absent or old.
    fn scan_artifacts(root: &Path) -> Result<Vec<CatalogEntry>> {
        let mut entries = Vec::new();
        for dirent in std::fs::read_dir(root)? {
            let dirent = dirent?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_suffix(".hxm") else { continue };
            if Signature::from_hex(stem).is_none() {
                continue;
            }
            let meta = dirent.metadata()?;
            if !meta.is_file() {
                continue;
            }
            entries.push(CatalogEntry {
                signature: stem.to_string(),
                file: name,
                bytes: meta.len(),
                node_name: "(recovered)".to_string(),
                created_iteration: 0,
                write_nanos: 0,
                measured_load_nanos: None,
                owners: None,
                writers: None,
            });
        }
        Ok(entries)
    }

    /// Open a throwaway catalog in a fresh temp directory (tests, examples).
    pub fn open_temp(disk: DiskProfile) -> Result<MaterializationCatalog> {
        let dir = std::env::temp_dir().join(format!(
            "helix-catalog-{}-{:x}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ));
        Self::open(dir, disk)
    }

    /// The disk profile in force.
    pub fn disk(&self) -> DiskProfile {
        self.disk
    }

    /// Catalog root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether an equivalent materialization exists (Definition 3).
    pub fn contains(&self, sig: Signature) -> bool {
        self.inner.lock().entries.contains_key(&sig)
    }

    /// Metadata for a signature.
    pub fn entry(&self, sig: Signature) -> Option<CatalogEntry> {
        self.inner.lock().entries.get(&sig).cloned()
    }

    /// All entries (deterministically ordered by signature) for reports.
    pub fn entries(&self) -> Vec<CatalogEntry> {
        let inner = self.inner.lock();
        let mut out: Vec<CatalogEntry> = inner.entries.values().cloned().collect();
        out.sort_by(|a, b| a.signature.cmp(&b.signature));
        out
    }

    /// Total bytes currently materialized (physical footprint).
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().total_bytes
    }

    /// Bytes charged against `owner`'s storage budget. The solo owner is
    /// charged the whole catalog (single-session semantics, and legacy
    /// entries have no owner records); a named tenant is charged the full
    /// size of every artifact it stored, shared or not — conservative,
    /// simple, and deterministic.
    pub fn used_bytes_for(&self, owner: &str) -> u64 {
        let inner = self.inner.lock();
        if owner == SOLO_OWNER {
            inner.total_bytes
        } else {
            inner.owned_bytes.get(owner).copied().unwrap_or(0)
        }
    }

    /// [`used_bytes_for`](Self::used_bytes_for) for several owners under
    /// a *single* lock hold (the scheduler refreshes every queued
    /// tenant's DRF byte usage once per pick round; one acquisition
    /// instead of one per tenant).
    pub fn used_bytes_for_many(&self, owners: &[String]) -> Vec<u64> {
        let inner = self.inner.lock();
        owners
            .iter()
            .map(|owner| {
                if owner == SOLO_OWNER {
                    inner.total_bytes
                } else {
                    inner.owned_bytes.get(owner.as_str()).copied().unwrap_or(0)
                }
            })
            .collect()
    }

    /// Monotonic byte-accounting epoch: changes iff some owner's charged
    /// bytes (or the physical total) may have changed since it was last
    /// read. Lets per-round byte refreshes (the scheduler's
    /// `set_tenant_bytes` walk) become a single lock-and-compare when
    /// nothing stored, claimed, released, or evicted in between.
    pub fn dirty_epoch(&self) -> u64 {
        self.inner.lock().byte_epoch
    }

    /// Reuse/usage statistics for an owner (zeroes if never seen).
    pub fn owner_stats(&self, owner: &str) -> OwnerStats {
        self.inner.lock().stats.get(owner).cloned().unwrap_or_default()
    }

    /// Number of artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no artifacts are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load-time estimate for OEP: always the bandwidth-model estimate
    /// from the artifact size — a pure function of (size, disk profile),
    /// so the `l_i` a plan sees never depends on whether, when, or how
    /// often the artifact was loaded. (`measured_load_nanos` is retained
    /// as observability metadata only; consulting it here would let
    /// values persisted by older builds — real measurements — flip plans
    /// mid-session after the first load overwrote them.)
    pub fn estimated_load_nanos(&self, sig: Signature) -> Option<Nanos> {
        let inner = self.inner.lock();
        let entry = inner.entries.get(&sig)?;
        Some(self.disk.estimate_load_nanos(entry.bytes))
    }

    /// Materialize `value` under `sig` for the solo owner.
    pub fn store(
        &self,
        sig: Signature,
        node_name: &str,
        iteration: u64,
        value: &Value,
    ) -> Result<(u64, Nanos)> {
        self.store_owned(sig, SOLO_OWNER, node_name, iteration, value)
    }

    /// Materialize `value` under `sig`, recording `owner` in the artifact's
    /// owner set. Returns `(encoded bytes, write nanoseconds)`. Overwrites
    /// any previous artifact for the signature (owners accumulate).
    pub fn store_owned(
        &self,
        sig: Signature,
        owner: &str,
        node_name: &str,
        iteration: u64,
        value: &Value,
    ) -> Result<(u64, Nanos)> {
        let encoded = encode_value(value);
        let bytes = encoded.len() as u64;
        let file = format!("{}.hxm", sig.to_hex());
        let path = self.root.join(&file);
        // Artifact writes are atomic too: concurrent stores of the same
        // signature (two tenants finishing the same node) each rename a
        // private temp file into place — readers never see a torn file.
        let tmp =
            self.root.join(format!("{}.tmp-{}", file, UNIQUE.fetch_add(1, Ordering::Relaxed)));
        let (io_result, write_nanos) = self.disk.run_write(bytes, || {
            std::fs::write(&tmp, &encoded)?;
            std::fs::rename(&tmp, &path)
        });
        io_result?;
        self.register_entry(sig, owner, node_name, iteration, file, bytes, write_nanos, None);
        self.journal_commit(&[JournalOp::Upsert(sig)])?;
        Ok((bytes, write_nanos))
    }

    /// Stage a materialization: all index bookkeeping happens *now* —
    /// entry visible, owners/writers recorded, quota charged, loads
    /// servable from the retained bytes — but the throttled file write is
    /// deferred to [`complete_stage`](Self::complete_stage) (which also
    /// seals the entry's journal frame) and the journal fsync to
    /// [`commit_staged`](Self::commit_staged). The
    /// reported write time is the disk model's *target* for the size (the
    /// deterministic cost a serial engine would have paid); the measured
    /// time is recorded on the entry when the write lands.
    ///
    /// Returns `(encoded bytes, modeled write nanos, encoded frame)`; the
    /// frame must be handed to `complete_stage` unchanged.
    pub fn stage_owned(
        &self,
        sig: Signature,
        owner: &str,
        node_name: &str,
        iteration: u64,
        value: &Value,
    ) -> Result<(u64, Nanos, Arc<Vec<u8>>)> {
        let encoded = Arc::new(encode_value(value));
        let bytes = encoded.len() as u64;
        let write_nanos = self.disk.write_target(bytes);
        let file = format!("{}.hxm", sig.to_hex());
        self.register_entry(
            sig,
            owner,
            node_name,
            iteration,
            file,
            bytes,
            write_nanos,
            Some(Arc::clone(&encoded)),
        );
        Ok((bytes, write_nanos, encoded))
    }

    /// Land a staged write: the throttled temp-write + atomic rename a
    /// background writer performs off the critical path. Returns the
    /// measured write time (zero when the stage was already stale).
    ///
    /// Staleness is detected by `Arc` identity against the pending map:
    /// if the entry was released, quota-evicted, or re-stored between
    /// `stage_owned` and now, this write no longer speaks for the
    /// catalog. A stale stage detected *before* the write skips it
    /// entirely; one that turns stale mid-write leaves its file in place
    /// — a newer writer for the signature overwrites the same path, and
    /// a file nobody ends up referencing is swept at the next open.
    /// Crucially, this path never unlinks: deciding "orphan" here and
    /// deleting outside the lock could destroy a concurrent
    /// `store_owned`'s freshly renamed artifact for the same signature.
    pub fn complete_stage(&self, sig: Signature, encoded: &Arc<Vec<u8>>) -> Result<Nanos> {
        let fresh = |inner: &Inner| match inner.pending.get(&sig) {
            Some(current) => Arc::ptr_eq(current, encoded),
            None => false,
        };
        if !fresh(&self.inner.lock()) {
            return Ok(0);
        }
        let bytes = encoded.len() as u64;
        let file = format!("{}.hxm", sig.to_hex());
        let path = self.root.join(&file);
        let tmp =
            self.root.join(format!("{}.tmp-{}", file, UNIQUE.fetch_add(1, Ordering::Relaxed)));
        let (io_result, write_nanos) = self.disk.run_write(bytes, || {
            std::fs::write(&tmp, encoded.as_slice())?;
            std::fs::rename(&tmp, &path)
        });
        io_result?;
        let landed = {
            let mut inner = self.inner.lock();
            if fresh(&inner) {
                inner.pending.remove(&sig);
                if let Some(entry) = inner.entries.get_mut(&sig) {
                    entry.write_nanos = write_nanos;
                }
                true
            } else {
                // Turned stale mid-write: leave the file (see doc
                // comment).
                false
            }
        };
        if landed {
            // The file is durable (renamed into place), so seal its
            // journal frame now: a crash before `commit_staged` recovers
            // this entry — exactly what a serial engine crash after the
            // same store would leave.
            self.journal_commit(&[JournalOp::Upsert(sig)])?;
        }
        Ok(write_nanos)
    }

    /// Fsync the journal after a background writer drained its queue —
    /// the durability point of a staged batch. Each landed stage sealed
    /// its own `Upsert` frame in [`complete_stage`](Self::complete_stage)
    /// already (entries still pending are excluded from every frame, so
    /// calling this early is safe, just not final); this drains any
    /// remaining dirty metadata and flushes the lot to stable storage.
    pub fn commit_staged(&self) -> Result<()> {
        self.journal_commit(&[])?;
        let _span = helix_obs::span(helix_obs::layer::STORAGE, "journal.fsync");
        self.journal.lock().sync()
    }

    /// Number of staged entries whose file write has not landed yet.
    pub fn pending_stages(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Shared index bookkeeping for `store_owned` and `stage_owned`.
    #[allow(clippy::too_many_arguments)]
    fn register_entry(
        &self,
        sig: Signature,
        owner: &str,
        node_name: &str,
        iteration: u64,
        file: String,
        bytes: u64,
        write_nanos: Nanos,
        pending: Option<Arc<Vec<u8>>>,
    ) {
        let mut inner = self.inner.lock();
        // Owners and writers accumulate across re-stores of the same
        // signature.
        let (prior_owners, prior_writers) = inner
            .entries
            .get(&sig)
            .map(|e| (e.owners().to_vec(), e.writers().to_vec()))
            .unwrap_or_default();
        inner.remove_entry(sig);
        let mut entry = CatalogEntry {
            signature: sig.to_hex(),
            file,
            bytes,
            node_name: node_name.to_string(),
            created_iteration: iteration,
            write_nanos,
            measured_load_nanos: None,
            owners: (!prior_owners.is_empty()).then_some(prior_owners),
            writers: (!prior_writers.is_empty()).then_some(prior_writers),
        };
        entry.add_owner(owner);
        entry.add_writer(owner);
        let owners = entry.owners().to_vec();
        inner.total_bytes += bytes;
        inner.credit(&owners, bytes);
        inner.entries.insert(sig, entry);
        if let Some(encoded) = pending {
            inner.pending.insert(sig, encoded);
        }
        let stats = inner.stats.entry(owner.to_string()).or_default();
        stats.stores += 1;
        stats.stored_bytes += bytes;
    }

    /// Load the artifact for `sig` (solo owner), recording the measured
    /// load time. Returns `(value, load nanoseconds)`.
    pub fn load(&self, sig: Signature) -> Result<(Value, Nanos)> {
        let (value, nanos, _) = self.load_for(sig, SOLO_OWNER)?;
        Ok((value, nanos))
    }

    /// Load the artifact for `sig` on behalf of `owner`, recording the
    /// load time and attributing the hit. The reported (and remembered)
    /// load time is the disk model's *estimate* for the entry size — a
    /// deterministic value that also equals the pre-load estimate, so
    /// the `l_i` statistics that feed OEP are identical across reruns,
    /// worker counts, pipelining modes, and load counts (wall-clock
    /// still pays the real, throttled cost). The third tuple field
    /// is `true` when this was a *cross-tenant* hit — `owner` never
    /// *wrote* these bytes; some other tenant computed them. (The writer
    /// set, not the claim set, drives attribution: a tenant that pinned
    /// another's artifact still scores cross hits on every reuse.)
    ///
    /// A cross-tenant load also records the loader as a **co-owner**: the
    /// artifact is now part of the loader's working set, so the
    /// producer's later deprecation (`release`) must not delete it, and
    /// its bytes count against the loader's quota. Planned loads are
    /// normally claimed earlier, at plan time
    /// ([`claim_if_present`](Self::claim_if_present)); this is the
    /// belt-and-braces path for direct `load_for` callers. The claim is
    /// applied in memory immediately and persisted at the next journal
    /// commit (loads stay write-free on the hot path).
    pub fn load_for(&self, sig: Signature, owner: &str) -> Result<(Value, Nanos, bool)> {
        let (file, bytes, cross, staged) = {
            let inner = self.inner.lock();
            let entry = inner
                .entries
                .get(&sig)
                .ok_or_else(|| HelixError::not_found("catalog entry", sig.to_hex()))?;
            let cross = !entry.writers().is_empty() && !entry.is_written_by(owner);
            (entry.file.clone(), entry.bytes, cross, inner.pending.get(&sig).cloned())
        };
        // A staged entry's file may not have landed yet: serve the
        // retained frame from memory (decoded straight from the shared
        // buffer — no copy), still paying the disk throttle so the wall
        // cost matches what a durable read would be.
        let value = match staged {
            Some(frame) => {
                self.disk.run_read(bytes, || ());
                decode_value(&frame)?
            }
            None => {
                let path = self.root.join(&file);
                let (io_result, _) = self.disk.run_read(bytes, || std::fs::read(&path));
                decode_value(&io_result?)?
            }
        };
        // The remembered value *exactly* equals `estimate_load_nanos` for
        // the same size (no rounding), so an entry's planning cost is
        // identical before and after its first load — deterministic `l_i`
        // across reruns, worker counts, and pipelining modes, and no
        // spurious speculation read-set mismatch at the first-load
        // boundary (wall-clock still pays the real, throttled cost
        // above). The planner applies its own `max(1)` floor.
        let load_nanos = self.disk.estimate_load_nanos(bytes);
        {
            let mut inner = self.inner.lock();
            let mut claim: Option<u64> = None;
            if let Some(entry) = inner.entries.get_mut(&sig) {
                entry.measured_load_nanos = Some(load_nanos);
                if !entry.is_owned_by(owner) {
                    entry.add_owner(owner);
                    claim = Some(entry.bytes);
                }
                // Metadata drifted from the journal; persisted lazily at
                // the next commit (loads stay write-free).
                inner.dirty.insert(sig);
            }
            if let Some(bytes) = claim {
                inner.credit(&[owner.to_string()], bytes);
            }
            let stats = inner.stats.entry(owner.to_string()).or_default();
            if cross {
                stats.cross_hits += 1;
            } else {
                stats.self_hits += 1;
            }
        }
        Ok((value, load_nanos, cross))
    }

    /// Atomically pin `sig` into `owner`'s working set if it still
    /// exists: adds a lifecycle claim (and the quota charge) under the
    /// catalog lock and returns `true`; returns `false` when the
    /// artifact is gone.
    ///
    /// Sessions call this for every `Load` in a freshly computed plan,
    /// which closes the plan-to-execution race: once claimed, another
    /// tenant's `release` only drops *its* claim and quota eviction
    /// skips co-owned artifacts, so the bytes survive until this owner
    /// releases them. A `false` means the plan raced a deletion — the
    /// caller replans (the node falls back to `Compute`).
    pub fn claim_if_present(&self, sig: Signature, owner: &str) -> bool {
        let mut inner = self.inner.lock();
        let mut claim: Option<u64> = None;
        let present = match inner.entries.get_mut(&sig) {
            None => false,
            Some(entry) => {
                if !entry.is_owned_by(owner) {
                    entry.add_owner(owner);
                    claim = Some(entry.bytes);
                }
                true
            }
        };
        if present {
            inner.dirty.insert(sig);
        }
        if let Some(bytes) = claim {
            inner.credit(&[owner.to_string()], bytes);
        }
        present
    }

    /// [`claim_if_present`](Self::claim_if_present) that also takes one
    /// transient pin on the artifact — claim and pin land under a
    /// *single* lock hold, so there is no window in which a concurrent
    /// [`evict_global`](Self::evict_global) can observe the artifact as
    /// claimed-but-unpinned and delete it out from under the plan.
    /// Sessions use this for every planned `Load`; the matching unpins
    /// are released when the prepared iteration retires.
    pub fn claim_and_pin_if_present(&self, sig: Signature, owner: &str) -> bool {
        let mut inner = self.inner.lock();
        let mut claim: Option<u64> = None;
        let present = match inner.entries.get_mut(&sig) {
            None => false,
            Some(entry) => {
                if !entry.is_owned_by(owner) {
                    entry.add_owner(owner);
                    claim = Some(entry.bytes);
                }
                true
            }
        };
        if present {
            *inner.pins.entry(sig).or_insert(0) += 1;
            inner.dirty.insert(sig);
        }
        if let Some(bytes) = claim {
            inner.credit(&[owner.to_string()], bytes);
        }
        present
    }

    /// Remove a deprecated artifact unconditionally (single-tenant
    /// semantics). Returns whether anything was removed.
    pub fn purge(&self, sig: Signature) -> Result<bool> {
        let removed = self.inner.lock().remove_entry(sig);
        match removed {
            Some(file) => {
                self.remove_file(&file)?;
                self.journal_commit(&[JournalOp::Remove(sig)])?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drop `owner`'s claim on `sig`; the artifact (and file) goes away
    /// only when no owner remains. Legacy entries without owner records
    /// are treated as releasable by anyone. Returns `true` when the
    /// artifact was fully removed.
    ///
    /// This is the multi-tenant-safe spelling of the paper's §6.6 purge:
    /// tenant A deprecating a signature must not delete bytes tenant B
    /// still plans to load. Entries transiently pinned by an in-flight
    /// iteration ([`pin_many`](Self::pin_many)) are never unlinked here,
    /// for the same reason they are never eviction victims — the claim
    /// a sibling session *of the same tenant* takes on a planned load
    /// adds no co-owner, so without the pin check this session's
    /// deprecation could delete an artifact that sibling is about to
    /// load. A pinned release is a no-op (`false`); the deprecated entry
    /// lingers until the pin drops and a later release or eviction
    /// reclaims it.
    pub fn release(&self, sig: Signature, owner: &str) -> Result<bool> {
        enum Outcome {
            Removed(String),
            OwnerDropped,
            Untouched,
        }
        let outcome = {
            let mut inner = self.inner.lock();
            // Only the *unlink* outcomes are gated on pins: dropping one
            // owner of several never removes the file, so it stays safe
            // while pinned.
            let pinned = inner.pins.contains_key(&sig);
            match inner.entries.get_mut(&sig) {
                None => Outcome::Untouched,
                Some(entry) => {
                    let legacy = entry.owners().is_empty();
                    if (legacy || entry.owners() == [owner]) && pinned {
                        Outcome::Untouched
                    } else if legacy {
                        Outcome::Removed(inner.remove_entry(sig).expect("entry exists"))
                    } else if entry.is_owned_by(owner) {
                        if entry.owners().len() == 1 {
                            Outcome::Removed(inner.remove_entry(sig).expect("entry exists"))
                        } else {
                            let bytes = entry.bytes;
                            if let Some(owners) = entry.owners.as_mut() {
                                owners.retain(|o| o != owner);
                            }
                            inner.debit(&[owner.to_string()], bytes);
                            Outcome::OwnerDropped
                        }
                    } else {
                        Outcome::Untouched
                    }
                }
            }
        };
        match outcome {
            Outcome::Removed(file) => {
                self.remove_file(&file)?;
                self.journal_commit(&[JournalOp::Remove(sig)])?;
                Ok(true)
            }
            Outcome::OwnerDropped => {
                self.journal_commit(&[JournalOp::Upsert(sig)])?;
                Ok(false)
            }
            Outcome::Untouched => Ok(false),
        }
    }

    /// Quota eviction: free at least `bytes_needed` bytes of `owner`'s
    /// *sole-owned* artifacts (for the solo owner, legacy unowned entries
    /// qualify too), oldest first, then by signature — a deterministic
    /// order, so identical histories evict identically. Entries whose
    /// signature is in `protected` (the current iteration's plan) or
    /// transiently pinned by any in-flight iteration
    /// ([`pin_many`](Self::pin_many)) are never touched — the pin check
    /// matters for *sibling sessions of the same tenant*: a claim on an
    /// artifact the tenant already owns adds no co-owner, so without the
    /// pin one session's mandatory store could quota-evict a sole-owned
    /// artifact another session of the same tenant is about to load.
    /// Returns the bytes actually freed, which may fall short when
    /// nothing evictable remains.
    pub fn evict_owned(
        &self,
        owner: &str,
        bytes_needed: u64,
        protected: &HashSet<Signature>,
    ) -> Result<u64> {
        // Selection and index removal happen under ONE lock hold: a
        // concurrent `claim_if_present`/`load_for` that co-owns an
        // artifact either lands before (the entry is no longer
        // sole-owned and is skipped) or after (the entry is already
        // gone and the claim fails, so the claimant replans) — never in
        // between.
        let eviction_span =
            helix_obs::span(helix_obs::layer::STORAGE, "evict.quota").tenant(owner.to_string());
        let mut freed = 0u64;
        let victims: Vec<(Signature, String)> = {
            let mut inner = self.inner.lock();
            let mut candidates: Vec<(Signature, u64, String)> = inner
                .entries
                .iter()
                .filter(|(sig, entry)| {
                    if protected.contains(sig) || inner.pins.contains_key(sig) {
                        return false;
                    }
                    let owners = entry.owners();
                    owners == [owner] || (owner == SOLO_OWNER && owners.is_empty())
                })
                .map(|(sig, entry)| (*sig, entry.created_iteration, entry.signature.clone()))
                .collect();
            candidates.sort_by(|a, b| (a.1, &a.2).cmp(&(b.1, &b.2)));
            let mut victims = Vec::new();
            for (sig, _, _) in candidates {
                if freed >= bytes_needed {
                    break;
                }
                let meta = inner
                    .entries
                    .get(&sig)
                    .map(|e| (e.bytes, e.node_name.clone(), e.owners().to_vec()));
                if let Some((bytes, node_name, owners)) = meta {
                    if let Some(file) = inner.remove_entry(sig) {
                        freed += bytes;
                        victims.push((sig, file));
                        inner.stats.entry(owner.to_string()).or_default().quota_evictions += 1;
                        inner.log_eviction(EvictionRecord {
                            signature: sig.to_hex(),
                            node_name,
                            bytes,
                            owners,
                            trigger: owner.to_string(),
                            kind: EvictionKind::Quota,
                        });
                    }
                }
            }
            victims
        };
        let _eviction_span = eviction_span.amount(freed);
        if victims.is_empty() {
            return Ok(0);
        }
        for (_, file) in &victims {
            self.remove_file(file)?;
        }
        let ops: Vec<JournalOp> = victims.iter().map(|(sig, _)| JournalOp::Remove(*sig)).collect();
        self.journal_commit(&ops)?;
        Ok(freed)
    }

    /// Set (or clear) the catalog's *global* byte budget. `helix-serve`
    /// sets its service-wide storage budget here at startup; solo
    /// sessions leave it unset (their per-tenant budget already caps the
    /// whole catalog).
    pub fn set_global_budget(&self, budget: Option<u64>) {
        self.inner.lock().global_budget = budget;
    }

    /// The global byte budget in force, if any.
    pub fn global_budget(&self) -> Option<u64> {
        self.inner.lock().global_budget
    }

    /// Transiently pin `sigs` for the duration of an iteration: pinned
    /// entries are never global-pressure victims. Pins nest (refcounts);
    /// the session layer holds them RAII-style from plan-claim time until
    /// the iteration retires, which closes the cross-session race a
    /// caller-local `protected` set cannot see — tenant A's store must
    /// not evict an artifact tenant B's *executing* plan is about to
    /// load.
    pub fn pin_many(&self, sigs: &[Signature]) {
        let mut inner = self.inner.lock();
        for sig in sigs {
            *inner.pins.entry(*sig).or_insert(0) += 1;
        }
    }

    /// Release pins taken by [`pin_many`](Self::pin_many).
    pub fn unpin_many(&self, sigs: &[Signature]) {
        let mut inner = self.inner.lock();
        for sig in sigs {
            if let Some(count) = inner.pins.get_mut(sig) {
                *count -= 1;
                if *count == 0 {
                    inner.pins.remove(sig);
                }
            }
        }
    }

    /// Number of distinct signatures currently pinned (tests).
    pub fn pinned_count(&self) -> usize {
        self.inner.lock().pins.len()
    }

    /// The bounded eviction-attribution log, oldest first (at most
    /// [`EVICTION_LOG_CAP`] events).
    pub fn eviction_log(&self) -> Vec<EvictionRecord> {
        self.inner.lock().eviction_log.to_vec()
    }

    /// Global-pressure eviction: free at least `bytes_needed` bytes
    /// across *all* tenants, in deterministic **retention-score** order.
    /// The score ranks victims:
    ///
    /// 1. **popularity class** — artifacts with writer/reader refcount
    ///    ≤ 1 (sole-owned or unowned) evict first; cross-tenant artifacts
    ///    with refcount > 1 are retained longer and fall only when
    ///    freeing every unpopular candidate was not enough;
    /// 2. **age** — `created_iteration` ascending;
    /// 3. **signature** — hex ascending (a total order, so identical
    ///    catalog states always evict identically).
    ///
    /// Entries in the caller's `protected` set (its current plan) or
    /// pinned by any in-flight iteration ([`pin_many`](Self::pin_many))
    /// are never victims. Evictions are attributed: every owner's
    /// `global_evictions` counter increments and the bounded
    /// [`eviction_log`](Self::eviction_log) records the victim with
    /// `trigger` (the tenant whose store created the pressure). Returns
    /// the bytes actually freed, which may fall short when everything
    /// left is protected or pinned.
    pub fn evict_global(
        &self,
        trigger: &str,
        bytes_needed: u64,
        protected: &HashSet<Signature>,
    ) -> Result<u64> {
        // Selection and index removal under ONE lock hold, exactly like
        // quota eviction: a concurrent claim lands entirely before (the
        // refcount rose — at worst the entry evicts a class later) or
        // entirely after (the claim fails and the claimant replans).
        let eviction_span =
            helix_obs::span(helix_obs::layer::STORAGE, "evict.global").tenant(trigger.to_string());
        let mut freed = 0u64;
        let victims: Vec<(Signature, String)> = {
            let mut inner = self.inner.lock();
            let mut candidates: Vec<(Signature, u8, u64, String)> = inner
                .entries
                .iter()
                .filter(|(sig, _)| !protected.contains(sig) && !inner.pins.contains_key(sig))
                .map(|(sig, entry)| {
                    let popular = u8::from(entry.owners().len() > 1);
                    (*sig, popular, entry.created_iteration, entry.signature.clone())
                })
                .collect();
            candidates.sort_by(|a, b| (a.1, a.2, &a.3).cmp(&(b.1, b.2, &b.3)));
            let mut victims = Vec::new();
            for (sig, _, _, _) in candidates {
                if freed >= bytes_needed {
                    break;
                }
                let meta = inner
                    .entries
                    .get(&sig)
                    .map(|e| (e.bytes, e.node_name.clone(), e.owners().to_vec()));
                if let Some((bytes, node_name, owners)) = meta {
                    if let Some(file) = inner.remove_entry(sig) {
                        freed += bytes;
                        victims.push((sig, file));
                        for owner in &owners {
                            inner.stats.entry(owner.clone()).or_default().global_evictions += 1;
                        }
                        inner.log_eviction(EvictionRecord {
                            signature: sig.to_hex(),
                            node_name,
                            bytes,
                            owners,
                            trigger: trigger.to_string(),
                            kind: EvictionKind::GlobalPressure,
                        });
                    }
                }
            }
            victims
        };
        let _eviction_span = eviction_span.amount(freed);
        if victims.is_empty() {
            return Ok(0);
        }
        for (_, file) in &victims {
            self.remove_file(file)?;
        }
        let ops: Vec<JournalOp> = victims.iter().map(|(sig, _)| JournalOp::Remove(*sig)).collect();
        self.journal_commit(&ops)?;
        Ok(freed)
    }

    /// Remove every artifact.
    pub fn clear(&self) -> Result<()> {
        let files: Vec<String> = {
            let mut inner = self.inner.lock();
            let files = inner.entries.values().map(|e| e.file.clone()).collect();
            inner.entries.clear();
            inner.pending.clear();
            inner.dirty.clear();
            inner.total_bytes = 0;
            inner.owned_bytes.clear();
            inner.byte_epoch += 1;
            files
        };
        for file in files {
            self.remove_file(&file)?;
        }
        self.journal_commit(&[JournalOp::Clear])
    }

    /// What the last [`open`](Self::open) found and repaired.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    fn remove_file(&self, file: &str) -> Result<()> {
        let path = self.root.join(file);
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }

    fn entry_payload(entry: &CatalogEntry) -> Result<Vec<u8>> {
        serde_json::to_vec(entry)
            .map_err(|e| HelixError::codec(format!("catalog entry serialize error: {e}")))
    }

    /// Serialize the live, non-pending entry set as one snapshot payload
    /// (sorted by signature, so identical states are byte-identical).
    /// The journal never references a file that is not yet durable.
    fn snapshot_payload(inner: &Inner) -> Result<Vec<u8>> {
        let mut entries: Vec<CatalogEntry> = inner
            .entries
            .iter()
            .filter(|(sig, _)| !inner.pending.contains_key(sig))
            .map(|(_, e)| e.clone())
            .collect();
        entries.sort_by(|a, b| a.signature.cmp(&b.signature));
        serde_json::to_vec(&SnapshotRecord { format_version: Self::FORMAT_VERSION, entries })
            .map_err(|e| HelixError::codec(format!("snapshot serialize error: {e}")))
    }

    /// Record `ops` — plus any metadata that drifted since the last
    /// commit (the dirty set) — as journal frames: one O(entry) append
    /// each, serialized by the journal lock. Payloads are snapshotted
    /// under both locks (journal → inner), so a slower committer can
    /// never append an older state after a newer one. Entries whose file
    /// write is still pending are skipped (their frame seals at
    /// `complete_stage`). Compacts when the journal has grown well past
    /// the live entry count.
    fn journal_commit(&self, ops: &[JournalOp]) -> Result<()> {
        let mut journal = self.journal.lock();
        let (frames, live_entries) = {
            let mut inner = self.inner.lock();
            let mut dirty: Vec<Signature> = inner.dirty.drain().collect();
            dirty.sort();
            let mut frames: Vec<(FrameKind, Vec<u8>)> = Vec::new();
            for sig in dirty {
                if inner.pending.contains_key(&sig) {
                    continue;
                }
                if let Some(entry) = inner.entries.get(&sig) {
                    frames.push((FrameKind::Upsert, Self::entry_payload(entry)?));
                }
            }
            for op in ops {
                match op {
                    JournalOp::Upsert(sig) => {
                        if inner.pending.contains_key(sig) {
                            continue;
                        }
                        if let Some(entry) = inner.entries.get(sig) {
                            frames.push((FrameKind::Upsert, Self::entry_payload(entry)?));
                        }
                    }
                    JournalOp::Remove(sig) => {
                        let payload = serde_json::to_vec(&RemoveRecord { signature: sig.to_hex() })
                            .map_err(|e| {
                                HelixError::codec(format!("remove record serialize error: {e}"))
                            })?;
                        frames.push((FrameKind::Remove, payload));
                    }
                    JournalOp::Clear => frames.push((FrameKind::Clear, Vec::new())),
                }
            }
            (frames, inner.entries.len() as u64)
        };
        {
            let _span = helix_obs::span(helix_obs::layer::STORAGE, "journal.append")
                .amount(frames.len() as u64);
            for (kind, payload) in &frames {
                journal.append(*kind, payload)?;
            }
        }
        self.maybe_compact(&mut journal, live_entries)
    }

    /// Rewrite the journal as one snapshot frame once it carries more
    /// than `4 × live entries + COMPACT_SLACK` frames, so recovery scans
    /// stay O(catalog) no matter how long the session ran.
    fn maybe_compact(&self, journal: &mut JournalWriter, live_entries: u64) -> Result<()> {
        if journal.frames() <= 4 * live_entries + Self::COMPACT_SLACK {
            return Ok(());
        }
        let _span =
            helix_obs::span(helix_obs::layer::STORAGE, "journal.compact").amount(journal.frames());
        let payload = Self::snapshot_payload(&self.inner.lock())?;
        let path = journal.path().to_path_buf();
        *journal = JournalWriter::rewrite(&path, [(FrameKind::Snapshot, payload.as_slice())])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Scalar;

    fn scalar(v: f64) -> Value {
        Value::Scalar(Scalar::F64(v))
    }

    fn temp_catalog() -> MaterializationCatalog {
        MaterializationCatalog::open_temp(DiskProfile::unthrottled()).unwrap()
    }

    #[test]
    fn store_load_roundtrip() {
        let cat = temp_catalog();
        let sig = Signature::of_str("census/rows@v1");
        assert!(!cat.contains(sig));
        let (bytes, _) = cat.store(sig, "rows", 0, &scalar(0.5)).unwrap();
        assert!(bytes > 0);
        assert!(cat.contains(sig));
        let (value, load_nanos) = cat.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(0.5));
        assert!(load_nanos > 0);
        // Load time is remembered for OEP statistics.
        assert_eq!(cat.entry(sig).unwrap().measured_load_nanos, Some(load_nanos));
        assert_eq!(cat.estimated_load_nanos(sig), Some(load_nanos));
    }

    #[test]
    fn dirty_epoch_tracks_byte_accounting_changes() {
        let cat = temp_catalog();
        let sig = Signature::of_str("epoch/a");
        let e0 = cat.dirty_epoch();
        assert_eq!(cat.dirty_epoch(), e0, "reads do not advance the epoch");
        cat.store_owned(sig, "alice", "n", 0, &scalar(1.0)).unwrap();
        let e1 = cat.dirty_epoch();
        assert!(e1 > e0, "a store changes byte accounting");
        let _ = cat.used_bytes_for_many(&["alice".to_string()]);
        assert_eq!(cat.dirty_epoch(), e1, "byte reads leave it unchanged");
        assert!(cat.claim_if_present(sig, "bob"));
        let e2 = cat.dirty_epoch();
        assert!(e2 > e1, "a claim credits the co-owner");
        assert!(!cat.release(sig, "bob").unwrap(), "alice still owns the entry");
        let e3 = cat.dirty_epoch();
        assert!(e3 > e2, "a release debits");
        cat.clear().unwrap();
        assert!(cat.dirty_epoch() > e3, "clear resets accounting");
    }

    #[test]
    fn missing_signature_errors() {
        let cat = temp_catalog();
        let sig = Signature::of_str("never-stored");
        assert!(cat.load(sig).is_err());
        assert_eq!(cat.estimated_load_nanos(sig), None);
        assert!(!cat.purge(sig).unwrap());
        assert!(!cat.release(sig, "anyone").unwrap());
    }

    #[test]
    fn overwrite_replaces_bytes_accounting() {
        let cat = temp_catalog();
        let sig = Signature::of_str("x");
        cat.store(sig, "x", 0, &Value::Scalar(Scalar::Text("small".into()))).unwrap();
        let b1 = cat.total_bytes();
        cat.store(sig, "x", 1, &Value::Scalar(Scalar::Text("much much larger".repeat(10))))
            .unwrap();
        let b2 = cat.total_bytes();
        assert!(b2 > b1);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn purge_frees_space_and_files() {
        let cat = temp_catalog();
        let a = Signature::of_str("a");
        let b = Signature::of_str("b");
        cat.store(a, "a", 0, &scalar(1.0)).unwrap();
        cat.store(b, "b", 0, &scalar(2.0)).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.purge(a).unwrap());
        assert_eq!(cat.len(), 1);
        assert!(!cat.contains(a));
        assert!(cat.contains(b));
        let bytes_after = cat.total_bytes();
        assert_eq!(bytes_after, cat.entry(b).unwrap().bytes, "only b's bytes remain accounted");
    }

    #[test]
    fn catalog_survives_reopen() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("persistent");
        cat.store(sig, "node", 3, &scalar(9.0)).unwrap();
        drop(cat);

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(sig));
        let entry = reopened.entry(sig).unwrap();
        assert_eq!(entry.node_name, "node");
        assert_eq!(entry.created_iteration, 3);
        let (value, _) = reopened.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn reopen_drops_entries_with_missing_files() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("vanishing");
        cat.store(sig, "node", 0, &scalar(1.0)).unwrap();
        let file = root.join(&cat.entry(sig).unwrap().file);
        drop(cat);
        std::fs::remove_file(file).unwrap();
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(!reopened.contains(sig));
        assert_eq!(reopened.total_bytes(), 0);
    }

    #[test]
    fn clear_removes_everything() {
        let cat = temp_catalog();
        for i in 0..5 {
            cat.store(Signature::of_str(&format!("n{i}")), "n", 0, &scalar(i as f64)).unwrap();
        }
        assert_eq!(cat.len(), 5);
        cat.clear().unwrap();
        assert_eq!(cat.len(), 0);
        assert_eq!(cat.total_bytes(), 0);
        assert!(cat.is_empty());
    }

    #[test]
    fn throttled_store_and_load_meet_bandwidth_floor() {
        let cat = MaterializationCatalog::open_temp(DiskProfile::scaled(10_000_000, 0)).unwrap();
        let big = Value::Scalar(Scalar::Text("x".repeat(100_000)));
        let sig = Signature::of_str("big");
        let (bytes, write_nanos) = cat.store(sig, "big", 0, &big).unwrap();
        // 100 KB at 10 MB/s = 10 ms.
        let floor = bytes * 100; // ns per byte at 10 MB/s
        assert!(write_nanos >= floor, "write {write_nanos} < floor {floor}");
        let (_, load_nanos) = cat.load(sig).unwrap();
        assert!(load_nanos >= floor, "load {load_nanos} < floor {floor}");
    }

    // ----- multi-tenant ownership, hits, quotas -----

    #[test]
    fn owners_accumulate_and_release_deletes_only_when_last_owner_leaves() {
        let cat = temp_catalog();
        let sig = Signature::of_str("shared");
        cat.store_owned(sig, "alice", "n", 0, &scalar(1.0)).unwrap();
        cat.store_owned(sig, "bob", "n", 1, &scalar(1.0)).unwrap();
        let entry = cat.entry(sig).unwrap();
        assert_eq!(entry.owners(), ["alice", "bob"]);
        assert!(cat.used_bytes_for("alice") > 0);
        assert_eq!(cat.used_bytes_for("alice"), cat.used_bytes_for("bob"));

        // A non-owner's release is a no-op.
        assert!(!cat.release(sig, "mallory").unwrap());
        assert!(cat.contains(sig));

        // Alice leaves: artifact must survive for bob.
        assert!(!cat.release(sig, "alice").unwrap());
        assert!(cat.contains(sig), "bob still owns the artifact");
        assert_eq!(cat.used_bytes_for("alice"), 0);
        assert!(cat.root().join(&cat.entry(sig).unwrap().file).exists());

        // Bob leaves: now it is gone, file included.
        let file = cat.entry(sig).unwrap().file.clone();
        assert!(cat.release(sig, "bob").unwrap());
        assert!(!cat.contains(sig));
        assert!(!cat.root().join(file).exists());
        assert_eq!(cat.total_bytes(), 0);
    }

    #[test]
    fn load_for_attributes_self_and_cross_hits() {
        let cat = temp_catalog();
        let sig = Signature::of_str("produced-by-alice");
        cat.store_owned(sig, "alice", "n", 0, &scalar(2.0)).unwrap();

        let (_, _, cross) = cat.load_for(sig, "alice").unwrap();
        assert!(!cross, "own artifact is a self hit");
        let (_, _, cross) = cat.load_for(sig, "bob").unwrap();
        assert!(cross, "other tenant's artifact is a cross hit");

        let alice = cat.owner_stats("alice");
        assert_eq!((alice.self_hits, alice.cross_hits, alice.stores), (1, 0, 1));
        let bob = cat.owner_stats("bob");
        assert_eq!((bob.self_hits, bob.cross_hits), (0, 1));
        assert_eq!(bob.cross_hit_rate(), 1.0);
        assert_eq!(cat.owner_stats("nobody").loads(), 0);
    }

    #[test]
    fn quota_eviction_is_oldest_first_deterministic_and_scoped() {
        let cat = temp_catalog();
        let old = Signature::of_str("old");
        let newer = Signature::of_str("newer");
        let shared = Signature::of_str("shared");
        let other = Signature::of_str("other-tenant");
        cat.store_owned(old, "alice", "old", 0, &scalar(1.0)).unwrap();
        cat.store_owned(newer, "alice", "newer", 5, &scalar(2.0)).unwrap();
        cat.store_owned(shared, "alice", "shared", 1, &scalar(3.0)).unwrap();
        cat.store_owned(shared, "bob", "shared", 1, &scalar(3.0)).unwrap();
        cat.store_owned(other, "bob", "other", 0, &scalar(4.0)).unwrap();

        // Need one artifact's worth: the *oldest sole-owned* goes first.
        let one = cat.entry(old).unwrap().bytes;
        let freed = cat.evict_owned("alice", one, &HashSet::new()).unwrap();
        assert_eq!(freed, one);
        assert!(!cat.contains(old), "oldest sole-owned evicted");
        assert!(cat.contains(newer));
        assert!(cat.contains(shared), "co-owned artifacts are never quota victims");
        assert!(cat.contains(other), "other tenants' artifacts untouched");
        assert_eq!(cat.owner_stats("alice").quota_evictions, 1);

        // Protection wins over need.
        let mut protected = HashSet::new();
        protected.insert(newer);
        let freed = cat.evict_owned("alice", u64::MAX, &protected).unwrap();
        assert_eq!(freed, 0, "only sole-owned candidate is protected");
        assert!(cat.contains(newer));
    }

    // ----- global-pressure eviction, retention, pins -----

    #[test]
    fn global_eviction_scores_by_popularity_then_age() {
        let cat = temp_catalog();
        let old_solo = Signature::of_str("old-solo");
        let new_solo = Signature::of_str("new-solo");
        let popular = Signature::of_str("popular");
        cat.store_owned(old_solo, "alice", "old", 0, &scalar(1.0)).unwrap();
        cat.store_owned(new_solo, "alice", "new", 7, &scalar(2.0)).unwrap();
        cat.store_owned(popular, "alice", "pop", 0, &scalar(3.0)).unwrap();
        assert!(cat.claim_if_present(popular, "bob"), "reader claim raises the refcount");

        let freed = cat.evict_global("trigger", 1, &HashSet::new()).unwrap();
        assert!(freed > 0);
        assert!(!cat.contains(old_solo), "oldest unpopular entry evicts first");
        assert!(cat.contains(new_solo) && cat.contains(popular));

        cat.evict_global("trigger", 1, &HashSet::new()).unwrap();
        assert!(!cat.contains(new_solo), "unpopular candidates exhaust next");
        assert!(cat.contains(popular), "refcount > 1 retained while alternatives exist");

        cat.evict_global("trigger", u64::MAX, &HashSet::new()).unwrap();
        assert!(!cat.contains(popular), "popular entries still fall under extreme pressure");
        assert_eq!(cat.total_bytes(), 0);

        // Attribution: every owner of a victim is debited; the log names
        // the triggering tenant and the kind.
        assert_eq!(cat.owner_stats("alice").global_evictions, 3);
        assert_eq!(cat.owner_stats("bob").global_evictions, 1);
        let log = cat.eviction_log();
        assert_eq!(log.len(), 3);
        assert!(log
            .iter()
            .all(|r| r.kind == EvictionKind::GlobalPressure && r.trigger == "trigger"));
        assert_eq!(log[0].node_name, "old");
    }

    #[test]
    fn pinned_and_protected_entries_are_never_global_victims() {
        let cat = temp_catalog();
        let pinned = Signature::of_str("pinned");
        let planned = Signature::of_str("planned");
        let victim = Signature::of_str("victim");
        cat.store_owned(pinned, "a", "pinned", 0, &scalar(1.0)).unwrap();
        cat.store_owned(planned, "a", "planned", 0, &scalar(2.0)).unwrap();
        cat.store_owned(victim, "a", "victim", 0, &scalar(3.0)).unwrap();
        cat.pin_many(&[pinned]);
        let protected: HashSet<Signature> = [planned].into_iter().collect();

        cat.evict_global("a", u64::MAX, &protected).unwrap();
        assert!(!cat.contains(victim));
        assert!(cat.contains(pinned), "pinned entry survives unlimited pressure");
        assert!(cat.contains(planned), "protected entry survives unlimited pressure");

        // Pins nest and release; once gone the entry is fair game.
        cat.pin_many(&[pinned]);
        cat.unpin_many(&[pinned]);
        assert_eq!(cat.pinned_count(), 1);
        cat.unpin_many(&[pinned]);
        assert_eq!(cat.pinned_count(), 0);
        cat.evict_global("a", u64::MAX, &protected).unwrap();
        assert!(!cat.contains(pinned));
    }

    #[test]
    fn pins_shield_sole_owned_artifacts_from_sibling_quota_eviction() {
        // Two sessions of ONE tenant: session 1 claims + pins a
        // sole-owned artifact (the claim adds no co-owner — the tenant
        // already owns it — so the pin is the only shield); session 2's
        // quota eviction must not take it.
        let cat = temp_catalog();
        let planned = Signature::of_str("sibling-planned-load");
        let spare = Signature::of_str("spare");
        cat.store_owned(planned, "alice", "p", 0, &scalar(1.0)).unwrap();
        cat.store_owned(spare, "alice", "s", 1, &scalar(2.0)).unwrap();
        assert!(cat.claim_and_pin_if_present(planned, "alice"));
        assert_eq!(cat.entry(planned).unwrap().owners(), ["alice"], "no co-owner added");

        cat.evict_owned("alice", u64::MAX, &HashSet::new()).unwrap();
        assert!(cat.contains(planned), "pinned sole-owned artifact survives quota pressure");
        assert!(!cat.contains(spare), "unpinned sole-owned artifact is still evictable");

        cat.unpin_many(&[planned]);
        cat.evict_owned("alice", u64::MAX, &HashSet::new()).unwrap();
        assert!(!cat.contains(planned), "after the iteration retires it is fair game");
    }

    #[test]
    fn claim_and_pin_is_atomic_and_shields_from_global_eviction() {
        let cat = temp_catalog();
        let sig = Signature::of_str("planned-load");
        cat.store_owned(sig, "alice", "n", 0, &scalar(1.0)).unwrap();
        assert!(cat.claim_and_pin_if_present(sig, "bob"));
        assert_eq!(cat.pinned_count(), 1);
        assert!(cat.entry(sig).unwrap().is_owned_by("bob"), "claim landed");
        assert!(cat.used_bytes_for("bob") > 0, "claim charges the claimant");

        cat.evict_global("alice", u64::MAX, &HashSet::new()).unwrap();
        assert!(cat.contains(sig), "pinned entry survives unlimited global pressure");

        cat.unpin_many(&[sig]);
        cat.evict_global("alice", u64::MAX, &HashSet::new()).unwrap();
        assert!(!cat.contains(sig), "unpinned (though co-owned) entry is evictable");

        // A vanished signature claims nothing and pins nothing.
        assert!(!cat.claim_and_pin_if_present(Signature::of_str("gone"), "bob"));
        assert_eq!(cat.pinned_count(), 0);
    }

    #[test]
    fn eviction_log_is_bounded() {
        let cat = temp_catalog();
        for i in 0..(EVICTION_LOG_CAP + 6) {
            let sig = Signature::of_str(&format!("bulk-{i}"));
            cat.store_owned(sig, "a", "n", i as u64, &scalar(i as f64)).unwrap();
        }
        cat.evict_global("a", u64::MAX, &HashSet::new()).unwrap();
        let log = cat.eviction_log();
        assert_eq!(log.len(), EVICTION_LOG_CAP, "log capped at {EVICTION_LOG_CAP}");
        // The oldest events were dropped: the first retained victim is
        // the 7th in eviction order (6 dropped).
        assert_eq!(cat.owner_stats("a").global_evictions as usize, EVICTION_LOG_CAP + 6);
    }

    #[test]
    fn quota_evictions_are_logged_too() {
        let cat = temp_catalog();
        let sig = Signature::of_str("quota-victim");
        cat.store_owned(sig, "alice", "n", 0, &scalar(1.0)).unwrap();
        cat.evict_owned("alice", u64::MAX, &HashSet::new()).unwrap();
        let log = cat.eviction_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, EvictionKind::Quota);
        assert_eq!(log[0].trigger, "alice");
    }

    #[test]
    fn global_budget_is_settable_and_readable() {
        let cat = temp_catalog();
        assert_eq!(cat.global_budget(), None, "unbounded by default");
        cat.set_global_budget(Some(1 << 20));
        assert_eq!(cat.global_budget(), Some(1 << 20));
        cat.set_global_budget(None);
        assert_eq!(cat.global_budget(), None);
    }

    #[test]
    fn repeat_cross_loads_keep_scoring_cross_hits() {
        // Attribution follows the *writer* set: a tenant that pinned
        // another's artifact still never computed it, so every reuse is
        // a cross hit (and the pin must not flip it to self).
        let cat = temp_catalog();
        let sig = Signature::of_str("alice-made-this");
        cat.store_owned(sig, "alice", "n", 0, &scalar(1.0)).unwrap();
        for _ in 0..3 {
            let (_, _, cross) = cat.load_for(sig, "bob").unwrap();
            assert!(cross);
        }
        assert_eq!(cat.owner_stats("bob").cross_hits, 3);
        assert!(cat.entry(sig).unwrap().is_owned_by("bob"), "pinned after first load");
        assert!(!cat.entry(sig).unwrap().is_written_by("bob"));
    }

    #[test]
    fn claim_pins_artifacts_against_release_and_eviction() {
        let cat = temp_catalog();
        let sig = Signature::of_str("claimed");
        cat.store_owned(sig, "alice", "n", 0, &scalar(5.0)).unwrap();

        // Bob's planner claims the artifact before executing.
        assert!(cat.claim_if_present(sig, "bob"));
        assert!(cat.used_bytes_for("bob") > 0, "claims charge the claimant's quota");

        // Alice deprecates and quota-evicts: the artifact must survive.
        assert!(!cat.release(sig, "alice").unwrap());
        assert!(cat.contains(sig), "bob's claim keeps the artifact alive");
        let freed = cat.evict_owned("alice", u64::MAX, &HashSet::new()).unwrap();
        assert_eq!(freed, 0, "co-owned artifacts are not quota victims");

        // Bob's planned load still works — and is a cross hit.
        let (value, _, cross) = cat.load_for(sig, "bob").unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(5.0));
        assert!(cross);

        // A claim on a vanished signature reports failure (replan cue).
        assert!(!cat.claim_if_present(Signature::of_str("never-there"), "bob"));
        // Idempotent re-claim does not double-charge.
        let charged = cat.used_bytes_for("bob");
        assert!(cat.claim_if_present(sig, "bob"));
        assert_eq!(cat.used_bytes_for("bob"), charged);
    }

    // ----- staged (deferred) commits -----

    #[test]
    fn staged_entry_is_visible_loadable_and_charged_before_the_file_lands() {
        let cat = temp_catalog();
        let sig = Signature::of_str("staged");
        let (bytes, modeled, frame) = cat.stage_owned(sig, "alice", "n", 0, &scalar(4.5)).unwrap();
        assert!(bytes > 0);
        assert_eq!(modeled, cat.disk().write_target(bytes));
        assert!(cat.contains(sig), "index updated at stage time");
        assert_eq!(cat.pending_stages(), 1);
        assert_eq!(cat.used_bytes_for("alice"), bytes, "quota charged at stage time");
        assert!(!cat.root().join(&cat.entry(sig).unwrap().file).exists(), "file deferred");

        // Loads are served from the retained frame meanwhile — cross-hit
        // attribution included.
        let (value, _, cross) = cat.load_for(sig, "bob").unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(4.5));
        assert!(cross);

        let measured = cat.complete_stage(sig, &frame).unwrap();
        assert_eq!(cat.pending_stages(), 0);
        assert!(cat.root().join(&cat.entry(sig).unwrap().file).exists());
        assert_eq!(cat.entry(sig).unwrap().write_nanos, measured);
        cat.commit_staged().unwrap();

        // Durable across reopen once committed.
        let root = cat.root().to_path_buf();
        drop(cat);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        let (value, _) = reopened.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(4.5));
    }

    /// All journal record payloads, concatenated as a lossy string
    /// (enough to check which signatures the journal references).
    fn journal_text(root: &Path) -> String {
        let scan = journal::scan_file(&root.join("catalog.journal")).unwrap().unwrap();
        scan.records
            .iter()
            .map(|(_, payload)| String::from_utf8_lossy(payload).into_owned())
            .collect()
    }

    #[test]
    fn journal_never_references_unlanded_files() {
        let cat = temp_catalog();
        let durable = Signature::of_str("durable");
        let staged = Signature::of_str("staged");
        cat.store(durable, "d", 0, &scalar(1.0)).unwrap();
        let (_, _, frame) = cat.stage_owned(staged, "", "s", 0, &scalar(2.0)).unwrap();
        // A commit while the stage is pending (any serial store triggers
        // one) must exclude the staged entry.
        cat.store(Signature::of_str("d2"), "d2", 0, &scalar(3.0)).unwrap();
        let text = journal_text(cat.root());
        assert!(!text.contains(&staged.to_hex()), "pending entry leaked into the journal");
        assert!(text.contains(&durable.to_hex()));
        // After completion + commit it appears.
        cat.complete_stage(staged, &frame).unwrap();
        cat.commit_staged().unwrap();
        let text = journal_text(cat.root());
        assert!(text.contains(&staged.to_hex()));
    }

    #[test]
    fn release_of_a_pending_stage_cancels_the_background_write() {
        let cat = temp_catalog();
        let sig = Signature::of_str("cancelled");
        let (_, _, frame) = cat.stage_owned(sig, "alice", "n", 0, &scalar(9.0)).unwrap();
        assert!(cat.release(sig, "alice").unwrap(), "sole owner release removes the entry");
        assert_eq!(cat.pending_stages(), 0, "pending claim dropped with the entry");
        // The write lands late, detects staleness, and leaves no orphan.
        cat.complete_stage(sig, &frame).unwrap();
        assert!(!cat.root().join(format!("{}.hxm", sig.to_hex())).exists());
        assert!(!cat.contains(sig));
    }

    #[test]
    fn release_never_unlinks_a_pinned_entry() {
        // Two sessions of the SAME tenant: session A pins a planned load
        // (the claim adds no co-owner — the tenant already owns it), then
        // session B deprecates the signature. The release must not unlink
        // the artifact out from under A's in-flight iteration; once the
        // pin drops, a later release reclaims it normally.
        let cat = temp_catalog();
        let sig = Signature::of_str("pinned-load");
        cat.store_owned(sig, "t0", "n", 0, &scalar(4.0)).unwrap();
        cat.pin_many(&[sig]);
        assert!(!cat.release(sig, "t0").unwrap(), "pinned release is a no-op");
        assert!(cat.contains(sig), "entry survives");
        let (value, _, _) = cat.load_for(sig, "t0").unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(4.0));
        cat.unpin_many(&[sig]);
        assert!(cat.release(sig, "t0").unwrap(), "unpinned release removes it");
        assert!(!cat.contains(sig));
        assert!(!cat.root().join(format!("{}.hxm", sig.to_hex())).exists());
    }

    #[test]
    fn restage_supersedes_an_inflight_write() {
        let cat = temp_catalog();
        let sig = Signature::of_str("superseded");
        let (_, _, old_frame) = cat.stage_owned(sig, "a", "n", 0, &scalar(1.0)).unwrap();
        let (_, _, new_frame) = cat.stage_owned(sig, "a", "n", 1, &scalar(1.0)).unwrap();
        // The old write completes late: it must not clear the newer stage.
        cat.complete_stage(sig, &old_frame).unwrap();
        assert_eq!(cat.pending_stages(), 1, "newer stage still pending");
        cat.complete_stage(sig, &new_frame).unwrap();
        assert_eq!(cat.pending_stages(), 0);
        let (value, _) = cat.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn staged_then_crashed_reopen_is_consistent() {
        // Crash windows, in order of the staged protocol:
        //  (1) staged, file never landed, frame never sealed;
        //  (2) file landed + frame sealed, journal never fsynced.
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let kept = Signature::of_str("kept");
        cat.store(kept, "k", 0, &scalar(1.0)).unwrap();

        // Window 1: stage only. Dropping the catalog simulates the kill —
        // nothing of the stage is on disk.
        let never_landed = Signature::of_str("never-landed");
        let (_, _, _frame) = cat.stage_owned(never_landed, "", "n", 0, &scalar(2.0)).unwrap();

        // Window 2: stage + complete, no commit_staged.
        let landed = Signature::of_str("landed-uncommitted");
        let (_, _, frame) = cat.stage_owned(landed, "", "n", 0, &scalar(3.0)).unwrap();
        cat.complete_stage(landed, &frame).unwrap();
        drop(cat);

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(kept), "durable entries survive");
        assert!(!reopened.contains(never_landed), "window-1 stage is simply absent");
        assert!(
            reopened.contains(landed),
            "window-2 stage survives: its file is durable and its frame was sealed \
             (exactly what a serial engine crash after the store would leave)"
        );
        let (value, _) = reopened.load(landed).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(3.0));
        // And every referenced file exists.
        for entry in reopened.entries() {
            assert!(root.join(&entry.file).exists());
        }
    }

    // ----- crash consistency -----

    #[test]
    fn orphaned_artifact_temp_files_are_swept_on_open() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("kept");
        cat.store(sig, "n", 0, &scalar(1.0)).unwrap();
        drop(cat);
        // Simulate a crash mid-artifact-write: an orphaned temp next to
        // real artifacts.
        let orphan = root.join(format!("{}.hxm.tmp-99", Signature::of_str("dead").to_hex()));
        std::fs::write(&orphan, b"half-written").unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(!orphan.exists(), "orphaned artifact temp swept on open");
        assert!(reopened.contains(sig), "real artifacts untouched");
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_prefix_replayed() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let kept = Signature::of_str("kept");
        cat.store(kept, "n", 2, &scalar(1.5)).unwrap();
        drop(cat);
        // Crash mid-append: garbage bytes at the journal tail.
        let journal = root.join("catalog.journal");
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(b"HXF3\x03half-a-frame");
        std::fs::write(&journal, &bytes).unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(kept), "valid prefix replayed");
        assert_eq!(reopened.entry(kept).unwrap().created_iteration, 2, "metadata intact");
        let stats = reopened.recovery_stats();
        assert!(stats.recovered);
        assert!(stats.journal_tail_bytes > 0, "torn tail measured");
        assert!(stats.journal_rewritten, "damaged journal compacted to a fresh snapshot");
        // The repaired journal reopens clean.
        drop(reopened);
        let again = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(again.contains(kept));
        assert!(!again.recovery_stats().recovered, "second reopen is healthy");
    }

    #[test]
    fn mid_journal_bit_rot_replays_exactly_the_valid_prefix() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let first = Signature::of_str("first");
        let second = Signature::of_str("second");
        cat.store(first, "a", 0, &scalar(1.0)).unwrap();
        let boundary = {
            let scan = journal::scan_file(&root.join("catalog.journal")).unwrap().unwrap();
            scan.valid_bytes as usize
        };
        cat.store(second, "b", 1, &scalar(2.0)).unwrap();
        drop(cat);
        // Flip a bit inside the *second* store's frame.
        let journal = root.join("catalog.journal");
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes[boundary + 20] ^= 0x40;
        std::fs::write(&journal, &bytes).unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(first), "frames before the damage replay");
        assert!(!reopened.contains(second), "frames at/after the damage do not");
        let stats = reopened.recovery_stats();
        assert!(stats.recovered);
        assert!(stats.journal_stop.is_some(), "the stop reason is surfaced");
        // The second store's artifact file is now unreferenced: swept.
        assert!(!root.join(format!("{}.hxm", second.to_hex())).exists());
        assert!(stats.swept_files >= 1);
    }

    #[test]
    fn lost_journal_with_current_marker_salvages_by_artifact_scan() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("scanned");
        cat.store(sig, "n", 0, &scalar(3.25)).unwrap();
        drop(cat);
        // The journal vanishes (crash before the first journal write, or
        // manual deletion); the marker proves current-format keying.
        std::fs::remove_file(root.join("catalog.journal")).unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(sig), "artifact scan resurrects the entry");
        let (value, _) = reopened.load(sig).unwrap();
        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(3.25));
        assert_eq!(reopened.entry(sig).unwrap().node_name, "(recovered)");
        assert!(reopened.recovery_stats().salvaged_by_scan);
        assert!(reopened.recovery_stats().journal_rewritten);
    }

    #[test]
    fn stale_legacy_manifest_tmp_is_swept_and_reported() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("durable");
        cat.store(sig, "n", 0, &scalar(7.0)).unwrap();
        drop(cat);
        // A leftover from a pre-journal build's interrupted flush.
        std::fs::write(root.join("manifest.json.tmp"), b"{ \"entries\": [ TRUNC").unwrap();
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(sig), "journal wins");
        assert!(!root.join("manifest.json.tmp").exists(), "stale temp swept");
        assert!(reopened.recovery_stats().swept_files >= 1);
    }

    #[test]
    fn undeletable_sweep_target_is_reported_not_swallowed() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let kept = Signature::of_str("kept");
        cat.store(kept, "n", 0, &scalar(1.0)).unwrap();
        drop(cat);
        // An unreferenced artifact that `remove_file` cannot delete (it
        // is a directory) — the closest portable stand-in for a
        // permission failure.
        let stuck = root.join(format!("{}.hxm", Signature::of_str("stuck").to_hex()));
        std::fs::create_dir(&stuck).unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(kept), "open still succeeds");
        let stats = reopened.recovery_stats();
        assert_eq!(stats.sweep_failures.len(), 1, "failure surfaced: {stats:?}");
        assert!(stats.sweep_failures[0].file.ends_with(".hxm"));
        assert!(!stats.sweep_failures[0].error.is_empty());
        assert!(stats.stranded_bytes > 0, "undeletable bytes stay visible");
        assert!(stuck.exists(), "the stuck file is still there — but reported");
        std::fs::remove_dir(&stuck).unwrap();
    }

    #[test]
    fn recovery_stats_reconcile_disk_against_accounting() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        cat.store(Signature::of_str("a"), "a", 0, &scalar(1.0)).unwrap();
        cat.store(Signature::of_str("b"), "b", 0, &scalar(2.0)).unwrap();
        drop(cat);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        let stats = reopened.recovery_stats();
        assert_eq!(stats.accounted_bytes_after_open, reopened.total_bytes());
        assert!(
            stats.disk_bytes_after_open >= stats.accounted_bytes_after_open,
            "disk holds at least the accounted artifact bytes"
        );
        // The overhead is exactly journal + marker (nothing stranded).
        let overhead = stats.disk_bytes_after_open - stats.accounted_bytes_after_open;
        let journal = std::fs::metadata(root.join("catalog.journal")).unwrap().len();
        let marker = std::fs::metadata(root.join("format.version")).unwrap().len();
        assert_eq!(overhead, journal + marker);
        assert_eq!(stats.stranded_bytes, 0);
    }

    #[test]
    fn long_journals_compact_to_a_snapshot() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("churn");
        // Many commits against few live entries: the journal must not
        // grow without bound.
        for i in 0..300 {
            cat.store(sig, "n", i, &scalar(i as f64)).unwrap();
        }
        let scan = journal::scan_file(&root.join("catalog.journal")).unwrap().unwrap();
        let live_entries = 1;
        assert!(
            scan.frames <= 4 * live_entries + MaterializationCatalog::COMPACT_SLACK + 1,
            "journal compacted during churn (frames = {})",
            scan.frames
        );
        assert_eq!(scan.stop, None);
        // State is intact after all that churn.
        drop(cat);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.entry(sig).unwrap().created_iteration, 299);
    }

    // ----- concurrency -----

    #[test]
    fn concurrent_store_load_purge_stress() {
        let cat = temp_catalog();
        let threads = 8usize;
        let per_thread = 24usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cat = &cat;
                scope.spawn(move || {
                    let owner = format!("tenant-{t}");
                    for i in 0..per_thread {
                        let sig = Signature::of_str(&format!("s-{t}-{i}"));
                        cat.store_owned(sig, &owner, "n", i as u64, &scalar(i as f64)).unwrap();
                        let (value, _, cross) = cat.load_for(sig, &owner).unwrap();
                        assert_eq!(value.as_scalar().unwrap().as_f64(), Some(i as f64));
                        assert!(!cross);
                        // Everyone also hammers a shared signature.
                        let shared = Signature::of_str("shared-hotspot");
                        cat.store_owned(shared, &owner, "hot", 0, &scalar(42.0)).unwrap();
                        let (hot, _, _) = cat.load_for(shared, &owner).unwrap();
                        assert_eq!(hot.as_scalar().unwrap().as_f64(), Some(42.0));
                        if i % 3 == 0 {
                            cat.release(sig, &owner).unwrap();
                        }
                    }
                });
            }
        });
        // Deterministic survivor count: each thread released ceil(24/3)=8.
        let expected = threads * (per_thread - per_thread.div_ceil(3)) + 1;
        assert_eq!(cat.len(), expected);
        // Accounting is exact after the melee.
        let total: u64 = cat.entries().iter().map(|e| e.bytes).sum();
        assert_eq!(cat.total_bytes(), total);
        // And the journal on disk replays to a consistent state.
        let root = cat.root().to_path_buf();
        drop(cat);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert_eq!(reopened.len(), expected);
        assert_eq!(reopened.total_bytes(), total);
    }

    #[test]
    fn journal_entries_without_owner_fields_still_parse() {
        // Optional metadata fields (owners/writers) may be absent in
        // frames written by builds that predate them; replay must default
        // them to "unowned", and solo sessions can still deprecate such
        // entries.
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        let sig = Signature::of_str("legacy");
        cat.store(sig, "n", 1, &scalar(6.0)).unwrap();
        let bytes = cat.entry(sig).unwrap().bytes;
        drop(cat);
        // Rewrite the journal with a snapshot whose entry omits the
        // optional fields entirely.
        let payload = format!(
            r#"{{"format_version":{},"entries":[{{"signature":"{hex}","file":"{hex}.hxm","bytes":{bytes},"node_name":"n","created_iteration":1,"write_nanos":0,"measured_load_nanos":null}}]}}"#,
            MaterializationCatalog::FORMAT_VERSION,
            hex = sig.to_hex(),
        );
        JournalWriter::rewrite(
            &root.join("catalog.journal"),
            [(FrameKind::Snapshot, payload.as_bytes())],
        )
        .unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.contains(sig));
        assert!(reopened.entry(sig).unwrap().owners().is_empty(), "legacy entry is unowned");
        // Solo sessions can still deprecate legacy entries.
        assert!(reopened.release(sig, SOLO_OWNER).unwrap());
        assert!(!reopened.contains(sig));
    }

    // ----- durable format versioning -----

    /// Create a directory that looks exactly like a pre-journal catalog:
    /// artifact files plus a legacy `manifest.json` (and, when `version`
    /// is set, the matching marker file), no journal.
    fn fake_legacy_catalog(version: Option<u32>) -> (PathBuf, Vec<String>) {
        let root = std::env::temp_dir().join(format!(
            "helix-legacy-test-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&root).unwrap();
        let mut files = Vec::new();
        let mut entries = Vec::new();
        for (i, name) in ["old-a", "old-b"].iter().enumerate() {
            let sig = Signature::of_str(name);
            let file = format!("{}.hxm", sig.to_hex());
            std::fs::write(root.join(&file), b"legacy artifact bytes").unwrap();
            entries.push(format!(
                r#"{{"signature":"{}","file":"{file}","bytes":21,"node_name":"{name}","created_iteration":{i},"write_nanos":0,"measured_load_nanos":null,"owners":null,"writers":null}}"#,
                sig.to_hex(),
            ));
            files.push(file);
        }
        let version_field = version.map(|v| format!("\"format_version\":{v},")).unwrap_or_default();
        std::fs::write(
            root.join("manifest.json"),
            format!("{{{version_field}\"entries\":[{}]}}", entries.join(",")),
        )
        .unwrap();
        if let Some(v) = version {
            std::fs::write(root.join("format.version"), format!("{v}\n")).unwrap();
        }
        (root, files)
    }

    #[test]
    fn journal_snapshot_records_the_current_format_version() {
        let cat = temp_catalog();
        cat.store(Signature::of_str("v"), "n", 0, &scalar(1.0)).unwrap();
        let scan = journal::scan_file(&cat.root().join("catalog.journal")).unwrap().unwrap();
        assert_eq!(scan.records[0].0, FrameKind::Snapshot, "journal opens with a snapshot");
        let text = String::from_utf8_lossy(&scan.records[0].1).into_owned();
        assert!(
            text.contains(&format!(
                "\"format_version\":{}",
                MaterializationCatalog::FORMAT_VERSION
            )),
            "snapshot must name its keying format: {text}"
        );
    }

    #[test]
    fn pre_provenance_manifest_is_invalidated_not_misread() {
        // A v1 (pre-provenance, pre-journal) catalog: its signatures were
        // computed without seeds in the chain, so its entries must not be
        // served under the current scheme. Open must drop the entries,
        // sweep the manifest and artifact files, and leave a consistent,
        // journal-backed, empty catalog — no panic, and a second reopen
        // must be clean too.
        let (root, files) = fake_legacy_catalog(None);
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.is_empty(), "pre-provenance entries dropped");
        assert_eq!(reopened.total_bytes(), 0);
        for file in &files {
            assert!(!root.join(file).exists(), "stale artifact {file} must be swept");
        }
        assert!(!root.join("manifest.json").exists(), "legacy manifest swept");
        let stats = reopened.recovery_stats();
        assert_eq!(stats.migrated_from, Some(1));
        assert!(stats.recovered);
        assert!(stats.swept_bytes > 0);
        // The migrated catalog is journal-backed from here on.
        reopened.store(Signature::of_str("fresh"), "n", 0, &scalar(3.0)).unwrap();
        drop(reopened);
        let again = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert_eq!(again.len(), 1);
        assert!(again.contains(Signature::of_str("fresh")));
        assert_eq!(again.recovery_stats().migrated_from, None, "second open is native");
    }

    #[test]
    fn v2_manifest_catalog_migrates_by_invalidation_too() {
        // v2 keyed signatures correctly but persisted through the
        // rewrite-the-whole-manifest scheme; the journal replaced it.
        let (root, files) = fake_legacy_catalog(Some(2));
        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.is_empty(), "pre-journal entries dropped");
        for file in &files {
            assert!(!root.join(file).exists());
        }
        assert_eq!(reopened.recovery_stats().migrated_from, Some(2));
        assert!(reopened.recovery_stats().journal_rewritten);
    }

    #[test]
    fn torn_legacy_manifest_still_migrates_cleanly() {
        // Crash-consistency across the version boundary: a legacy catalog
        // that died mid-flush (tmp holds the snapshot, primary torn) must
        // still migrate by invalidation, not panic or misread.
        let (root, files) = fake_legacy_catalog(None);
        let good = std::fs::read_to_string(root.join("manifest.json")).unwrap();
        std::fs::write(root.join("manifest.json.tmp"), &good).unwrap();
        std::fs::write(root.join("manifest.json"), &good[..good.len() / 2]).unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.is_empty(), "legacy entries dropped even on the recovery path");
        for file in &files {
            assert!(!root.join(file).exists(), "artifact {file} swept");
        }
        assert!(!root.join("manifest.json.tmp").exists());
        drop(reopened);
        let again = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(again.is_empty(), "second reopen stays clean");
    }

    #[test]
    fn unmarked_artifacts_are_swept_not_trusted() {
        // Artifact files with no journal, no manifest, and no marker
        // predate provenance keying: the salvage scan must NOT resurrect
        // them under the current scheme. They are swept (recomputable by
        // definition).
        let root = std::env::temp_dir().join(format!(
            "helix-unmarked-test-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&root).unwrap();
        let sig = Signature::of_str("pre-provenance");
        let file = format!("{}.hxm", sig.to_hex());
        std::fs::write(root.join(&file), b"unversioned bytes").unwrap();

        let reopened = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(reopened.is_empty(), "unversioned salvage must be refused");
        assert!(!root.join(&file).exists(), "pre-provenance artifact swept");
        assert!(reopened.recovery_stats().migrated_from.is_some());
        // The marker + journal now exist, so a current-format crash in
        // the same directory salvages normally from here on.
        reopened.store(sig, "n", 0, &scalar(2.0)).unwrap();
        drop(reopened);
        std::fs::remove_file(root.join("catalog.journal")).unwrap();
        let again = MaterializationCatalog::open(&root, DiskProfile::unthrottled()).unwrap();
        assert!(again.contains(sig), "marked catalog still salvages via artifact scan");
        assert!(again.recovery_stats().salvaged_by_scan);
    }

    #[test]
    fn newer_format_catalogs_are_rejected_with_a_clear_error() {
        let cat = temp_catalog();
        let root = cat.root().to_path_buf();
        cat.store(Signature::of_str("future"), "n", 0, &scalar(1.0)).unwrap();
        drop(cat);
        let newer = MaterializationCatalog::FORMAT_VERSION + 1;

        // (a) A newer snapshot format version inside the journal.
        let payload = format!(r#"{{"format_version":{newer},"entries":[]}}"#);
        JournalWriter::rewrite(
            &root.join("catalog.journal"),
            [(FrameKind::Snapshot, payload.as_bytes())],
        )
        .unwrap();
        let err = match MaterializationCatalog::open(&root, DiskProfile::unthrottled()) {
            Err(err) => format!("{err}"),
            Ok(_) => panic!("newer-format journal must be refused"),
        };
        assert!(err.contains("newer"), "error must explain the refusal: {err}");
        // Nothing was destroyed: the future build's data is intact.
        assert!(root.join(format!("{}.hxm", Signature::of_str("future").to_hex())).exists());

        // (b) A newer standalone marker refuses even before the scan.
        std::fs::write(root.join("format.version"), format!("{newer}\n")).unwrap();
        let err = match MaterializationCatalog::open(&root, DiskProfile::unthrottled()) {
            Err(err) => format!("{err}"),
            Ok(_) => panic!("newer marker must be refused"),
        };
        assert!(err.contains("newer"));
    }
}
