//! Disk bandwidth emulation.
//!
//! The paper's single-node experiments ran against a 2 TB HDD with
//! "170MB/s as both the read and write speeds" (§6.3), and the entire
//! OEP/OMP trade-off hinges on load times being *comparable* to compute
//! times. Modern NVMe laptops would hide that trade-off, so the catalog
//! pipes all I/O through a [`DiskProfile`] that enforces a target bandwidth
//! by sleeping for the residual time after the real I/O completes. The real
//! bytes still hit the filesystem — throttling only shapes latency.
//!
//! `DiskProfile::unthrottled()` turns this off for unit tests.

use helix_common::timing::Nanos;
use std::time::{Duration, Instant};

/// Emulated storage hardware characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskProfile {
    /// Sequential read bandwidth in bytes/second (`None` = unthrottled).
    pub read_bytes_per_sec: Option<u64>,
    /// Sequential write bandwidth in bytes/second (`None` = unthrottled).
    pub write_bytes_per_sec: Option<u64>,
    /// Fixed per-operation latency (seek + open) in nanoseconds.
    pub seek_nanos: Nanos,
}

impl DiskProfile {
    /// No throttling at all (unit tests, CI).
    pub fn unthrottled() -> DiskProfile {
        DiskProfile { read_bytes_per_sec: None, write_bytes_per_sec: None, seek_nanos: 0 }
    }

    /// The paper's evaluation hardware: 170 MB/s reads and writes
    /// (§6.3), with a token 2 ms HDD seek.
    pub fn paper_hdd() -> DiskProfile {
        DiskProfile {
            read_bytes_per_sec: Some(170 * 1_000_000),
            write_bytes_per_sec: Some(170 * 1_000_000),
            seek_nanos: 2_000_000,
        }
    }

    /// A scaled profile for fast experiment runs: same *ratio* of bandwidth
    /// to our scaled-down datasets as the paper's HDD had to theirs.
    pub fn scaled(bytes_per_sec: u64, seek_nanos: Nanos) -> DiskProfile {
        DiskProfile {
            read_bytes_per_sec: Some(bytes_per_sec),
            write_bytes_per_sec: Some(bytes_per_sec),
            seek_nanos,
        }
    }

    /// Target duration for reading `bytes` bytes.
    pub fn read_target(&self, bytes: u64) -> Nanos {
        Self::target(self.read_bytes_per_sec, self.seek_nanos, bytes)
    }

    /// Target duration for writing `bytes` bytes.
    pub fn write_target(&self, bytes: u64) -> Nanos {
        Self::target(self.write_bytes_per_sec, self.seek_nanos, bytes)
    }

    fn target(bw: Option<u64>, seek: Nanos, bytes: u64) -> Nanos {
        match bw {
            None => 0,
            Some(bps) => {
                let transfer = (bytes as u128 * 1_000_000_000u128 / bps.max(1) as u128)
                    .min(u64::MAX as u128) as u64;
                seek.saturating_add(transfer)
            }
        }
    }

    /// Estimated load time for an artifact of `bytes` bytes — the `l_i`
    /// OEP/OMP use *before* a measurement exists (paper §5.3:
    /// `l_i = s_i / (disk read speed)`).
    pub fn estimate_load_nanos(&self, bytes: u64) -> Nanos {
        match self.read_bytes_per_sec {
            Some(_) => self.read_target(bytes),
            // Unthrottled: assume a fast local disk (2 GB/s) so estimates
            // stay finite and ordering-correct.
            None => 1_000 + bytes / 2,
        }
    }

    /// Run `op`, then sleep until at least `target(bytes)` has elapsed.
    /// Returns `(result, total_nanos)`.
    pub fn run_read<T>(&self, bytes: u64, op: impl FnOnce() -> T) -> (T, Nanos) {
        Self::run_throttled(self.read_target(bytes), op)
    }

    /// Write-side twin of [`run_read`](Self::run_read).
    pub fn run_write<T>(&self, bytes: u64, op: impl FnOnce() -> T) -> (T, Nanos) {
        Self::run_throttled(self.write_target(bytes), op)
    }

    fn run_throttled<T>(target: Nanos, op: impl FnOnce() -> T) -> (T, Nanos) {
        let start = Instant::now();
        let out = op();
        let elapsed = start.elapsed();
        let elapsed_nanos = helix_common::timing::duration_to_nanos(elapsed);
        if elapsed_nanos < target {
            std::thread::sleep(Duration::from_nanos(target - elapsed_nanos));
        }
        (out, helix_common::timing::duration_to_nanos(start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_targets_are_zero() {
        let d = DiskProfile::unthrottled();
        assert_eq!(d.read_target(1 << 30), 0);
        assert_eq!(d.write_target(1 << 30), 0);
    }

    #[test]
    fn targets_scale_with_bytes() {
        let d = DiskProfile::scaled(100_000_000, 1_000_000); // 100 MB/s, 1ms seek
        assert_eq!(d.read_target(100_000_000), 1_000_000 + 1_000_000_000);
        assert_eq!(d.read_target(0), 1_000_000);
        assert!(d.read_target(10) < d.read_target(10_000_000));
    }

    #[test]
    fn paper_profile_matches_spec() {
        let d = DiskProfile::paper_hdd();
        // 170 MB at 170 MB/s = 1 s + seek.
        let t = d.read_target(170 * 1_000_000);
        assert!((t as i64 - 1_002_000_000).abs() < 1_000, "t={t}");
    }

    #[test]
    fn estimate_is_finite_and_monotonic() {
        for d in [DiskProfile::unthrottled(), DiskProfile::paper_hdd()] {
            let small = d.estimate_load_nanos(1_000);
            let big = d.estimate_load_nanos(10_000_000);
            assert!(small < big);
        }
    }

    #[test]
    fn throttle_enforces_floor() {
        let d = DiskProfile::scaled(1_000_000_000, 0); // 1 GB/s
                                                       // 5 MB at 1 GB/s = 5 ms floor even though the op is instant.
        let ((), nanos) = d.run_read(5_000_000, || ());
        assert!(nanos >= 5_000_000, "nanos={nanos}");
        assert!(nanos < 80_000_000, "sleep should be close to target, got {nanos}");
    }

    #[test]
    fn fast_target_does_not_slow_slow_ops() {
        let d = DiskProfile::scaled(u64::MAX, 0);
        let ((), nanos) = d.run_write(1, || std::thread::sleep(Duration::from_millis(2)));
        assert!(nanos >= 2_000_000);
    }
}
