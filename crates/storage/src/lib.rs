//! # helix-storage
//!
//! The materialization substrate of the HELIX reproduction (the paper ran
//! on local HDD / HDFS under Spark; we provide the equivalent single-node
//! store):
//!
//! * [`frame`] — the shared durable frame format: every persisted byte
//!   (artifact files and journal records alike) is one self-delimiting
//!   `[magic | version | kind | payload | prev-hash | crc32]` frame, so
//!   torn writes and bit rot are detected per-frame with distinct error
//!   categories (not-a-frame vs truncated vs corrupt).
//! * [`codec`] — the binary artifact codec for every
//!   [`helix_data::Value`]: one sealed artifact frame whose payload is
//!   varint-framed, little-endian fields; decoding rejects bad magic,
//!   unknown versions, truncation, and bit rot, and enforces exact-length
//!   consumption.
//! * [`journal`] — the append-only, hash-chained catalog journal: each
//!   commit appends one O(entry) frame; recovery scans, verifies CRC +
//!   chain linkage, and replays the longest valid prefix.
//! * [`disk`] — [`DiskProfile`]: bandwidth/seek throttling that emulates
//!   the paper's storage hardware (§6.3: 170 MB/s HDD) on top of real file
//!   I/O, so compute-vs-load trade-offs keep the paper's shape on fast
//!   local disks. Unthrottled profiles are used in unit tests.
//! * [`catalog`] — the [`MaterializationCatalog`]: a directory of artifacts
//!   keyed by 128-bit operator-output signatures, made durable by the
//!   journal, with byte accounting for the storage budget (paper §6.3
//!   uses 10 GB), purge support for deprecated results, measured
//!   load/write times that feed OPT-EXEC-PLAN, and [`RecoveryStats`]
//!   describing what the last open had to repair.

pub mod catalog;
pub mod codec;
pub mod disk;
pub mod frame;
pub mod journal;

pub use catalog::{
    CatalogEntry, EvictionKind, EvictionRecord, MaterializationCatalog, RecoveryStats, SweepFailure,
};
pub use codec::{decode_value, encode_value};
pub use disk::DiskProfile;
pub use frame::{FrameError, FrameKind};
