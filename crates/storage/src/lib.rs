//! # helix-storage
//!
//! The materialization substrate of the HELIX reproduction (the paper ran
//! on local HDD / HDFS under Spark; we provide the equivalent single-node
//! store):
//!
//! * [`codec`] — a checksummed, versioned binary format for every
//!   [`helix_data::Value`]. Varint-framed, little-endian, CRC-32 trailer;
//!   decoding rejects bad magic, unknown versions, truncation, and bit rot.
//! * [`disk`] — [`DiskProfile`]: bandwidth/seek throttling that emulates
//!   the paper's storage hardware (§6.3: 170 MB/s HDD) on top of real file
//!   I/O, so compute-vs-load trade-offs keep the paper's shape on fast
//!   local disks. Unthrottled profiles are used in unit tests.
//! * [`catalog`] — the [`MaterializationCatalog`]: a directory of artifacts
//!   keyed by 128-bit operator-output signatures, with a JSON manifest,
//!   byte accounting for the storage budget (paper §6.3 uses 10 GB), purge
//!   support for deprecated results, and measured load/write times that
//!   feed OPT-EXEC-PLAN.

pub mod catalog;
pub mod codec;
pub mod disk;

pub use catalog::{CatalogEntry, EvictionKind, EvictionRecord, MaterializationCatalog};
pub use codec::{decode_value, encode_value};
pub use disk::DiskProfile;
