//! Binary codec for [`Value`]s.
//!
//! An artifact is one [`frame`]-sealed
//! [`FrameKind::Artifact`] frame (the same versioned header, length
//! field, and CRC-32 trailer the catalog journal uses; `prev_hash` is
//! [`GENESIS_HASH`](crate::frame::GENESIS_HASH) — artifacts stand
//! alone). The payload is the value kind byte followed by varint-framed
//! fields: integers are varint-encoded (zig-zag for signed), floats are
//! IEEE-754 little-endian bit patterns (exact round trip, NaN-safe).
//! Decoding enforces exact-length consumption at both levels: the frame
//! must span the input exactly, and the payload must be fully consumed.
//! The format is self-contained per artifact: no cross-file references,
//! so a catalog entry can be loaded in a fresh process — exactly what
//! cross-iteration reuse needs.

use crate::frame::{self, FrameError, FrameKind};
use helix_common::{HelixError, Result};
use helix_data::{
    BucketizerModel, CentroidModel, DataCollection, EmbeddingModel, Example, ExampleBatch,
    FeatureBundle, FeatureSpace, FeatureVector, FieldValue, IndexerModel, LinearModel, Model,
    NaiveBayesModel, Record, RecordBatch, Scalar, ScalerModel, Schema, SemanticUnit, Split,
    TransformModel, UnitBatch, Value, ValueKind,
};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Low-level writer / reader
// ---------------------------------------------------------------------

/// Append-only byte sink with varint framing.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// New writer with `capacity` bytes pre-allocated. The codec sits on
    /// the prefetch/background-write hot path, so `encode_value` passes a
    /// cheap size hint here instead of letting the buffer double its way
    /// up through reallocations.
    pub fn with_capacity(capacity: usize) -> Writer {
        Writer { buf: Vec::with_capacity(capacity) }
    }

    /// Finished bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn put_zigzag(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    fn put_opt_str(&mut self, s: Option<&str>) {
        match s {
            None => self.put_u8(0),
            Some(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
        }
    }

    fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.put_u8(0),
            Some(v) => {
                self.put_u8(1);
                self.put_f64(v);
            }
        }
    }

    fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_varint(vs.len() as u64);
        // One reservation for the whole slice: dense vectors and model
        // weight matrices dominate artifact payloads, and growing the
        // buffer 8 bytes at a time would reallocate log₂(n) times.
        self.buf.reserve(vs.len() * 8);
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Cursor over encoded bytes with bounds and format checking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn get_u8(&mut self) -> Result<u8> {
        let b =
            *self.buf.get(self.pos).ok_or_else(|| HelixError::codec("unexpected end of frame"))?;
        self.pos += 1;
        Ok(b)
    }

    fn get_varint(&mut self) -> Result<u64> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(HelixError::codec("varint overflow"));
            }
            out |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    fn get_zigzag(&mut self) -> Result<i64> {
        let raw = self.get_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    fn get_f64(&mut self) -> Result<f64> {
        if self.pos + 8 > self.buf.len() {
            return Err(HelixError::codec("truncated f64"));
        }
        let bits = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(f64::from_bits(bits))
    }

    fn get_len(&mut self, elem_floor: usize) -> Result<usize> {
        // Compare in u64 BEFORE any usize cast: on a 32-bit target a
        // corrupt declared length of 2^32 + k would otherwise truncate to
        // k and decode garbage as a valid shorter field.
        let len = self.get_varint()?;
        // Defensive bound: a declared length can never exceed the number of
        // elements that could possibly fit in the remaining bytes.
        let remaining = (self.buf.len() - self.pos) as u64;
        if elem_floor > 0 && len > remaining / elem_floor as u64 + 1 {
            return Err(HelixError::codec(format!(
                "declared length {len} exceeds remaining frame ({remaining} bytes)"
            )));
        }
        if len > usize::MAX as u64 {
            return Err(HelixError::codec(format!(
                "declared length {len} exceeds the address space"
            )));
        }
        Ok(len as usize)
    }

    fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_len(1)?;
        if self.pos + len > self.buf.len() {
            return Err(HelixError::codec("truncated byte field"));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn get_str(&mut self) -> Result<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| HelixError::codec("invalid utf-8"))
    }

    fn get_opt_str(&mut self) -> Result<Option<String>> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_str()?)),
            t => Err(HelixError::codec(format!("bad option tag {t}"))),
        }
    }

    fn get_opt_f64(&mut self) -> Result<Option<f64>> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_f64()?)),
            t => Err(HelixError::codec(format!("bad option tag {t}"))),
        }
    }

    fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.get_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// Field-level encode/decode
// ---------------------------------------------------------------------

fn put_split(w: &mut Writer, s: Split) {
    w.put_u8(s.to_byte());
}

fn get_split(r: &mut Reader) -> Result<Split> {
    let b = r.get_u8()?;
    Split::from_byte(b).ok_or_else(|| HelixError::codec(format!("bad split byte {b}")))
}

fn put_field_value(w: &mut Writer, v: &FieldValue) {
    match v {
        FieldValue::Null => w.put_u8(0),
        FieldValue::Int(i) => {
            w.put_u8(1);
            w.put_zigzag(*i);
        }
        FieldValue::Float(f) => {
            w.put_u8(2);
            w.put_f64(*f);
        }
        FieldValue::Text(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
    }
}

fn get_field_value(r: &mut Reader) -> Result<FieldValue> {
    Ok(match r.get_u8()? {
        0 => FieldValue::Null,
        1 => FieldValue::Int(r.get_zigzag()?),
        2 => FieldValue::Float(r.get_f64()?),
        3 => FieldValue::Text(r.get_str()?),
        t => return Err(HelixError::codec(format!("bad field-value tag {t}"))),
    })
}

fn put_feature_vector(w: &mut Writer, v: &FeatureVector) {
    match v {
        FeatureVector::Dense(d) => {
            w.put_u8(0);
            w.put_f64_slice(d);
        }
        FeatureVector::Sparse { dim, indices, values } => {
            w.put_u8(1);
            w.put_varint(*dim as u64);
            w.put_varint(indices.len() as u64);
            for i in indices {
                w.put_varint(*i as u64);
            }
            for v in values {
                w.put_f64(*v);
            }
        }
    }
}

fn get_feature_vector(r: &mut Reader) -> Result<FeatureVector> {
    Ok(match r.get_u8()? {
        0 => FeatureVector::Dense(r.get_f64_vec()?),
        1 => {
            let dim = r.get_varint()? as u32;
            let nnz = r.get_len(9)?;
            let mut indices = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                indices.push(r.get_varint()? as u32);
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(r.get_f64()?);
            }
            FeatureVector::Sparse { dim, indices, values }
        }
        t => return Err(HelixError::codec(format!("bad feature-vector tag {t}"))),
    })
}

fn put_bundle(w: &mut Writer, b: &FeatureBundle) {
    match b {
        FeatureBundle::Categorical(kv) => {
            w.put_u8(0);
            w.put_varint(kv.len() as u64);
            for (k, v) in kv {
                w.put_str(k);
                w.put_str(v);
            }
        }
        FeatureBundle::Numeric(kv) => {
            w.put_u8(1);
            w.put_varint(kv.len() as u64);
            for (k, v) in kv {
                w.put_str(k);
                w.put_f64(*v);
            }
        }
        FeatureBundle::Vector(v) => {
            w.put_u8(2);
            put_feature_vector(w, v);
        }
        FeatureBundle::Tokens(ts) => {
            w.put_u8(3);
            w.put_varint(ts.len() as u64);
            for t in ts {
                w.put_str(t);
            }
        }
        FeatureBundle::Empty => w.put_u8(4),
    }
}

fn get_bundle(r: &mut Reader) -> Result<FeatureBundle> {
    Ok(match r.get_u8()? {
        0 => {
            let n = r.get_len(2)?;
            let mut kv = Vec::with_capacity(n);
            for _ in 0..n {
                kv.push((r.get_str()?, r.get_str()?));
            }
            FeatureBundle::Categorical(kv)
        }
        1 => {
            let n = r.get_len(9)?;
            let mut kv = Vec::with_capacity(n);
            for _ in 0..n {
                kv.push((r.get_str()?, r.get_f64()?));
            }
            FeatureBundle::Numeric(kv)
        }
        2 => FeatureBundle::Vector(get_feature_vector(r)?),
        3 => {
            let n = r.get_len(1)?;
            let mut ts = Vec::with_capacity(n);
            for _ in 0..n {
                ts.push(r.get_str()?);
            }
            FeatureBundle::Tokens(ts)
        }
        4 => FeatureBundle::Empty,
        t => return Err(HelixError::codec(format!("bad bundle tag {t}"))),
    })
}

fn put_records(w: &mut Writer, batch: &RecordBatch) {
    w.put_varint(batch.schema.arity() as u64);
    for c in batch.schema.columns() {
        w.put_str(c);
    }
    w.put_varint(batch.rows.len() as u64);
    for row in &batch.rows {
        put_split(w, row.split);
        for v in &row.values {
            put_field_value(w, v);
        }
    }
}

fn get_records(r: &mut Reader) -> Result<RecordBatch> {
    let arity = r.get_len(1)?;
    let mut cols = Vec::with_capacity(arity);
    for _ in 0..arity {
        cols.push(r.get_str()?);
    }
    let schema = Schema::new(cols);
    let n = r.get_len(1)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let split = get_split(r)?;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(get_field_value(r)?);
        }
        rows.push(Record { values, split });
    }
    RecordBatch::new(schema, rows)
}

fn put_units(w: &mut Writer, batch: &UnitBatch) {
    w.put_varint(batch.units.len() as u64);
    for u in &batch.units {
        w.put_varint(u.origin as u64);
        put_split(w, u.split);
        put_bundle(w, &u.features);
        w.put_opt_str(u.key.as_deref());
    }
}

fn get_units(r: &mut Reader) -> Result<UnitBatch> {
    let n = r.get_len(3)?;
    let mut units = Vec::with_capacity(n);
    for _ in 0..n {
        let origin = r.get_varint()? as u32;
        let split = get_split(r)?;
        let features = get_bundle(r)?;
        let key = r.get_opt_str()?;
        units.push(SemanticUnit { origin, split, features, key });
    }
    Ok(UnitBatch::new(units))
}

fn put_examples(w: &mut Writer, batch: &ExampleBatch) {
    let entries: Vec<(&str, u32)> = batch.space.entries().collect();
    w.put_varint(entries.len() as u64);
    for (name, owner) in entries {
        w.put_str(name);
        w.put_varint(owner as u64);
    }
    w.put_varint(batch.examples.len() as u64);
    for e in &batch.examples {
        put_feature_vector(w, &e.features);
        w.put_opt_f64(e.label);
        put_split(w, e.split);
        w.put_opt_f64(e.prediction);
        w.put_opt_str(e.tag.as_deref());
    }
}

fn get_examples(r: &mut Reader) -> Result<ExampleBatch> {
    let n_feat = r.get_len(2)?;
    let mut entries = Vec::with_capacity(n_feat);
    for _ in 0..n_feat {
        entries.push((r.get_str()?, r.get_varint()? as u32));
    }
    let space = Arc::new(FeatureSpace::from_entries(entries));
    let n = r.get_len(4)?;
    let mut examples = Vec::with_capacity(n);
    for _ in 0..n {
        let features = get_feature_vector(r)?;
        let label = r.get_opt_f64()?;
        let split = get_split(r)?;
        let prediction = r.get_opt_f64()?;
        let tag = r.get_opt_str()?;
        examples.push(Example { features, label, split, prediction, tag });
    }
    Ok(ExampleBatch::new(space, examples))
}

fn put_model(w: &mut Writer, model: &Model) {
    match model {
        Model::Linear(m) => {
            w.put_u8(0);
            w.put_varint(m.dim as u64);
            w.put_varint(m.weights.len() as u64);
            for ws in &m.weights {
                w.put_f64_slice(ws);
            }
            w.put_f64_slice(&m.bias);
        }
        Model::Centroids(m) => {
            w.put_u8(1);
            w.put_varint(m.dim as u64);
            w.put_f64(m.inertia);
            w.put_varint(m.centroids.len() as u64);
            for c in &m.centroids {
                w.put_f64_slice(c);
            }
        }
        Model::Embeddings(m) => {
            w.put_u8(2);
            w.put_varint(m.dim as u64);
            w.put_varint(m.vocab.len() as u64);
            // Deterministic order for byte-stable artifacts.
            let mut entries: Vec<(&String, &u32)> = m.vocab.iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            for (token, row) in entries {
                w.put_str(token);
                w.put_varint(*row as u64);
            }
            w.put_f64_slice(&m.vectors);
        }
        Model::NaiveBayes(m) => {
            w.put_u8(3);
            w.put_varint(m.dim as u64);
            w.put_f64_slice(&m.log_priors);
            w.put_f64_slice(&m.log_likelihoods);
        }
        Model::Transform(t) => {
            w.put_u8(4);
            match t {
                TransformModel::Scaler(s) => {
                    w.put_u8(0);
                    w.put_f64_slice(&s.means);
                    w.put_f64_slice(&s.stds);
                }
                TransformModel::Bucketizer(b) => {
                    w.put_u8(1);
                    w.put_f64_slice(&b.boundaries);
                }
                TransformModel::Indexer(i) => {
                    w.put_u8(2);
                    w.put_varint(i.vocab.len() as u64);
                    let mut entries: Vec<(&String, &u32)> = i.vocab.iter().collect();
                    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
                    for (k, v) in entries {
                        w.put_str(k);
                        w.put_varint(*v as u64);
                    }
                }
                TransformModel::RandomFourier { projection, offsets, dim_in, dim_out } => {
                    w.put_u8(3);
                    w.put_varint(*dim_in as u64);
                    w.put_varint(*dim_out as u64);
                    w.put_f64_slice(projection);
                    w.put_f64_slice(offsets);
                }
            }
        }
    }
}

fn get_model(r: &mut Reader) -> Result<Model> {
    Ok(match r.get_u8()? {
        0 => {
            let dim = r.get_varint()? as u32;
            let classes = r.get_len(2)?;
            let mut weights = Vec::with_capacity(classes);
            for _ in 0..classes {
                weights.push(r.get_f64_vec()?);
            }
            let bias = r.get_f64_vec()?;
            Model::Linear(LinearModel { weights, bias, dim })
        }
        1 => {
            let dim = r.get_varint()? as u32;
            let inertia = r.get_f64()?;
            let k = r.get_len(2)?;
            let mut centroids = Vec::with_capacity(k);
            for _ in 0..k {
                centroids.push(r.get_f64_vec()?);
            }
            Model::Centroids(CentroidModel { centroids, dim, inertia })
        }
        2 => {
            let dim = r.get_varint()? as u32;
            let n = r.get_len(2)?;
            let mut vocab = HashMap::with_capacity(n);
            for _ in 0..n {
                let token = r.get_str()?;
                let row = r.get_varint()? as u32;
                vocab.insert(token, row);
            }
            let vectors = r.get_f64_vec()?;
            Model::Embeddings(EmbeddingModel { vocab, vectors, dim })
        }
        3 => {
            let dim = r.get_varint()? as u32;
            let log_priors = r.get_f64_vec()?;
            let log_likelihoods = r.get_f64_vec()?;
            Model::NaiveBayes(NaiveBayesModel { log_priors, log_likelihoods, dim })
        }
        4 => Model::Transform(match r.get_u8()? {
            0 => TransformModel::Scaler(ScalerModel {
                means: r.get_f64_vec()?,
                stds: r.get_f64_vec()?,
            }),
            1 => TransformModel::Bucketizer(BucketizerModel { boundaries: r.get_f64_vec()? }),
            2 => {
                let n = r.get_len(2)?;
                let mut vocab = HashMap::with_capacity(n);
                for _ in 0..n {
                    let k = r.get_str()?;
                    let v = r.get_varint()? as u32;
                    vocab.insert(k, v);
                }
                TransformModel::Indexer(IndexerModel { vocab })
            }
            3 => {
                let dim_in = r.get_varint()? as u32;
                let dim_out = r.get_varint()? as u32;
                let projection = r.get_f64_vec()?;
                let offsets = r.get_f64_vec()?;
                TransformModel::RandomFourier { projection, offsets, dim_in, dim_out }
            }
            t => return Err(HelixError::codec(format!("bad transform tag {t}"))),
        }),
        t => return Err(HelixError::codec(format!("bad model tag {t}"))),
    })
}

fn put_scalar(w: &mut Writer, s: &Scalar) {
    match s {
        Scalar::F64(v) => {
            w.put_u8(0);
            w.put_f64(*v);
        }
        Scalar::I64(v) => {
            w.put_u8(1);
            w.put_zigzag(*v);
        }
        Scalar::Text(t) => {
            w.put_u8(2);
            w.put_str(t);
        }
        Scalar::Metrics(m) => {
            w.put_u8(3);
            w.put_varint(m.len() as u64);
            for (k, v) in m {
                w.put_str(k);
                w.put_f64(*v);
            }
        }
    }
}

fn get_scalar(r: &mut Reader) -> Result<Scalar> {
    Ok(match r.get_u8()? {
        0 => Scalar::F64(r.get_f64()?),
        1 => Scalar::I64(r.get_zigzag()?),
        2 => Scalar::Text(r.get_str()?),
        3 => {
            let n = r.get_len(9)?;
            let mut m = Vec::with_capacity(n);
            for _ in 0..n {
                m.push((r.get_str()?, r.get_f64()?));
            }
            Scalar::Metrics(m)
        }
        t => return Err(HelixError::codec(format!("bad scalar tag {t}"))),
    })
}

// ---------------------------------------------------------------------
// Top-level frame
// ---------------------------------------------------------------------

/// Encode a value into one self-contained, sealed [`FrameKind::Artifact`]
/// frame.
pub fn encode_value(value: &Value) -> Vec<u8> {
    // `byte_size` is a cheap in-memory estimate (no encoding work) that
    // tracks the encoded size closely for the float-dominated payloads
    // that matter; a slightly-off hint costs at most one reallocation.
    use helix_data::ByteSized;
    let hint = (value.byte_size() as usize).saturating_add(64);
    let mut w = Writer { buf: frame::begin_frame(FrameKind::Artifact, hint) };
    w.put_u8(value.kind().to_byte());
    match value {
        Value::Collection(DataCollection::Records(b)) => put_records(&mut w, b),
        Value::Collection(DataCollection::Units(b)) => put_units(&mut w, b),
        Value::Collection(DataCollection::Examples(b)) => put_examples(&mut w, b),
        Value::Model(m) => put_model(&mut w, m),
        Value::Scalar(s) => put_scalar(&mut w, s),
    }
    frame::seal_frame(w.into_bytes(), frame::GENESIS_HASH)
}

/// Decode a frame produced by [`encode_value`], verifying — in this
/// order, so the error names the actual problem — magic, version, frame
/// truncation, CRC, and exact-length consumption. A non-HELIX input
/// reports *bad magic*, never a misleading checksum mismatch; the three
/// corruption categories (`not a HELIX frame` / `truncated` /
/// `checksum mismatch`) stay distinct so callers (and the journal
/// scanner, which shares the parser) can act on them.
pub fn decode_value(bytes: &[u8]) -> Result<Value> {
    let parsed = frame::parse_frame(bytes).map_err(|e| match e {
        FrameError::NotAFrame => HelixError::codec("bad magic (not a HELIX artifact)"),
        FrameError::Truncated => HelixError::codec("truncated artifact frame"),
        FrameError::Corrupt => HelixError::codec("checksum mismatch (corrupt artifact)"),
        other => HelixError::from(other),
    })?;
    // Exact-length consumption, frame level: bytes beyond the sealed
    // frame mean the file was appended to or spliced.
    if parsed.len != bytes.len() {
        return Err(HelixError::codec("trailing bytes after artifact frame"));
    }
    if parsed.kind != FrameKind::Artifact {
        return Err(HelixError::codec(format!(
            "not an artifact (frame kind {:#04x} is a catalog-journal record)",
            parsed.kind.to_byte()
        )));
    }
    let mut r = Reader::new(parsed.payload);
    let kind_byte = r.get_u8()?;
    let kind = ValueKind::from_byte(kind_byte)
        .ok_or_else(|| HelixError::codec(format!("bad value kind {kind_byte}")))?;
    let value = match kind {
        ValueKind::Records => Value::records(get_records(&mut r)?),
        ValueKind::Units => Value::units(get_units(&mut r)?),
        ValueKind::Examples => Value::examples(get_examples(&mut r)?),
        ValueKind::Model => Value::Model(get_model(&mut r)?),
        ValueKind::Scalar => Value::Scalar(get_scalar(&mut r)?),
    };
    if !r.finished() {
        return Err(HelixError::codec("trailing bytes after payload"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_common::crc32::crc32;

    fn sample_records() -> Value {
        let schema = Schema::new(["age", "education", "target"]);
        let batch = RecordBatch::new(
            schema,
            vec![
                Record::train(vec![
                    FieldValue::Int(39),
                    FieldValue::Text("Bachelors".into()),
                    FieldValue::Int(0),
                ]),
                Record::test(vec![FieldValue::Float(50.5), FieldValue::Null, FieldValue::Int(1)]),
            ],
        )
        .unwrap();
        Value::records(batch)
    }

    fn roundtrip(v: &Value) -> Value {
        decode_value(&encode_value(v)).expect("roundtrip")
    }

    #[test]
    fn records_roundtrip() {
        let v = sample_records();
        let back = roundtrip(&v);
        let (a, b) = (v.as_collection().unwrap(), back.as_collection().unwrap());
        assert_eq!(a.as_records().unwrap(), b.as_records().unwrap());
    }

    #[test]
    fn units_roundtrip() {
        let batch = UnitBatch::new(vec![
            SemanticUnit::new(
                0,
                Split::Train,
                FeatureBundle::Categorical(vec![("edu".into(), "BS".into())]),
            ),
            SemanticUnit::keyed(
                1,
                Split::Test,
                FeatureBundle::Tokens(vec!["gene".into(), "tp53".into()]),
                "tp53",
            ),
            SemanticUnit::new(2, Split::Train, FeatureBundle::Numeric(vec![("age".into(), 3.5)])),
            SemanticUnit::new(
                3,
                Split::Train,
                FeatureBundle::Vector(FeatureVector::sparse_from_pairs(5, vec![(1, 2.0)])),
            ),
            SemanticUnit::new(4, Split::Test, FeatureBundle::Empty),
        ]);
        let v = Value::units(batch);
        let back = roundtrip(&v);
        assert_eq!(
            v.as_collection().unwrap().as_units().unwrap(),
            back.as_collection().unwrap().as_units().unwrap()
        );
    }

    #[test]
    fn examples_roundtrip_preserves_space_and_provenance() {
        let mut space = FeatureSpace::new();
        space.intern("edu=BS", 4);
        space.intern("ageBucket_3", 7);
        let batch = ExampleBatch::new(
            Arc::new(space),
            vec![
                Example {
                    features: FeatureVector::sparse_from_pairs(2, vec![(0, 1.0)]),
                    label: Some(1.0),
                    split: Split::Train,
                    prediction: Some(0.83),
                    tag: Some("row-0".into()),
                },
                Example::new(FeatureVector::Dense(vec![0.5, -2.0]), None, Split::Test),
            ],
        );
        let v = Value::examples(batch);
        let back = roundtrip(&v);
        let decoded = back.as_collection().unwrap().as_examples().unwrap();
        assert_eq!(decoded.space.dim(), 2);
        assert_eq!(decoded.space.owner(1), Some(7));
        assert_eq!(decoded.space.name(0), Some("edu=BS"));
        assert_eq!(decoded.examples[0].prediction, Some(0.83));
        assert_eq!(decoded.examples[0].tag.as_deref(), Some("row-0"));
        assert_eq!(decoded.examples[1].label, None);
    }

    #[test]
    fn all_model_variants_roundtrip() {
        let models = vec![
            Model::Linear(LinearModel {
                weights: vec![vec![0.1, -0.2], vec![0.3, 0.4]],
                bias: vec![0.01, -0.02],
                dim: 2,
            }),
            Model::Centroids(CentroidModel {
                centroids: vec![vec![1.0, 2.0], vec![-1.0, 0.0]],
                dim: 2,
                inertia: 12.5,
            }),
            Model::Embeddings(EmbeddingModel {
                vocab: [("brca1".to_string(), 0u32), ("tp53".to_string(), 1u32)]
                    .into_iter()
                    .collect(),
                vectors: vec![0.1, 0.2, 0.3, 0.4],
                dim: 2,
            }),
            Model::NaiveBayes(NaiveBayesModel {
                log_priors: vec![-0.7, -0.7],
                log_likelihoods: vec![-1.0, -2.0, -3.0, -4.0],
                dim: 2,
            }),
            Model::Transform(TransformModel::Scaler(ScalerModel {
                means: vec![1.0],
                stds: vec![2.0],
            })),
            Model::Transform(TransformModel::Bucketizer(BucketizerModel {
                boundaries: vec![10.0, 20.0],
            })),
            Model::Transform(TransformModel::Indexer(IndexerModel {
                vocab: [("a".to_string(), 0u32)].into_iter().collect(),
            })),
            Model::Transform(TransformModel::RandomFourier {
                projection: vec![0.5; 6],
                offsets: vec![0.1, 0.2],
                dim_in: 3,
                dim_out: 2,
            }),
        ];
        for m in models {
            let v = Value::Model(m);
            let back = roundtrip(&v);
            assert_eq!(v.as_model().unwrap(), back.as_model().unwrap());
        }
    }

    #[test]
    fn scalar_variants_roundtrip() {
        for s in [
            Scalar::F64(0.913),
            Scalar::F64(f64::NEG_INFINITY),
            Scalar::I64(-42),
            Scalar::Text("accuracy report".into()),
            Scalar::Metrics(vec![("acc".into(), 0.9), ("f1".into(), 0.8)]),
        ] {
            let v = Value::Scalar(s);
            let back = roundtrip(&v);
            assert_eq!(v.as_scalar().unwrap(), back.as_scalar().unwrap());
        }
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = Value::Scalar(Scalar::F64(f64::NAN));
        let back = roundtrip(&v);
        match back.as_scalar().unwrap() {
            Scalar::F64(f) => assert!(f.is_nan()),
            _ => panic!("wrong scalar"),
        }
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode_value(&sample_records());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode_value(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_value(&sample_records());
        for cut in [0, 3, 8, bytes.len() - 5] {
            assert!(decode_value(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_magic_and_version_detected() {
        let mut bytes = encode_value(&Value::Scalar(Scalar::I64(7)));
        bytes[0] = b'Z';
        // Re-stamp CRC so only the magic check can fire.
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(decode_value(&bytes).unwrap_err().to_string().contains("magic"));

        let mut bytes = encode_value(&Value::Scalar(Scalar::I64(7)));
        bytes[4] = 99; // version
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(decode_value(&bytes).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode_value(&Value::Scalar(Scalar::I64(7)));
        // Insert a junk byte before the CRC and restamp: payload now has
        // trailing content.
        let insert_at = bytes.len() - 4;
        bytes.insert(insert_at, 0xAB);
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn non_helix_file_reports_bad_magic_not_corruption() {
        // Feeding a random non-Helix file must say "not ours", never the
        // misleading "checksum mismatch" the old decoder led with.
        for junk in [&b"PK\x03\x04zip archive bytes"[..], b"{\"json\": true}", b"\x00\x01\x02"] {
            let err = decode_value(junk).unwrap_err().to_string();
            assert!(err.contains("magic"), "want magic error, got: {err}");
            assert!(!err.contains("checksum"), "must not claim corruption: {err}");
        }
    }

    #[test]
    fn error_categories_stay_distinct() {
        let good = encode_value(&Value::Scalar(Scalar::I64(7)));
        // Truncated: the frame header declares more than is present.
        let err = decode_value(&good[..good.len() - 3]).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");
        // Corrupt: correctly delimited, CRC broken.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        let err = decode_value(&bad).unwrap_err().to_string();
        assert!(err.contains("checksum"), "{err}");
        // Not an artifact: a CRC-valid *journal* frame is refused by kind.
        let mut journal = frame::begin_frame(FrameKind::Upsert, 2);
        journal.extend_from_slice(b"{}");
        let journal = frame::seal_frame(journal, frame::GENESIS_HASH);
        let err = decode_value(&journal).unwrap_err().to_string();
        assert!(err.contains("not an artifact"), "{err}");
    }

    #[test]
    fn declared_length_past_u32_boundary_is_rejected_not_truncated() {
        // Regression: `get_len` used to cast the declared u64 to usize
        // BEFORE bounds-checking — on a 32-bit target 2^32 + 3 truncates
        // to 3 and decodes garbage as a valid shorter field. The bound
        // must be checked in u64.
        let mut w = Writer::new();
        w.put_varint((1u64 << 32) + 3);
        w.buf.extend_from_slice(b"abc");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.get_bytes().unwrap_err().to_string();
        assert!(err.contains("exceeds"), "a truncating cast would have returned \"abc\": {err}");
    }

    #[test]
    fn varint_boundaries() {
        let mut w = Writer::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert!(r.finished());
    }

    #[test]
    fn zigzag_boundaries() {
        let mut w = Writer::new();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456] {
            w.put_zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456] {
            assert_eq!(r.get_zigzag().unwrap(), v);
        }
    }
}
