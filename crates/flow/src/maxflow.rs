//! Edmonds–Karp MAX-FLOW with min-cut extraction.
//!
//! The paper (§5.2) solves OPT-EXEC-PLAN through the Project Selection
//! Problem, "an application of MAX-FLOW", using "the Edmonds-Karp algorithm
//! …, which runs in time O(|N|·|E|²)". This module is that algorithm:
//! BFS-based augmenting paths over an adjacency-list residual graph with
//! paired forward/backward edges (the classic XOR-partner layout).
//!
//! Capacities are `i64`. Callers use [`MaxFlow::INF`] for uncuttable edges
//! (prerequisites in PSP); the implementation guards against overflow by
//! capping augmentation at `INF`.

/// Maximum-flow solver over a fixed node set.
#[derive(Clone, Debug)]
pub struct MaxFlow {
    /// Flattened edge array; edge `2k` and `2k+1` are partners.
    to: Vec<u32>,
    cap: Vec<i64>,
    /// Head of adjacency list per node (index into `next`), `u32::MAX` = none.
    head: Vec<u32>,
    /// Next edge in adjacency list, parallel to `to`.
    next: Vec<u32>,
}

impl MaxFlow {
    /// Effectively-infinite capacity (safe to sum many times in `i64`).
    pub const INF: i64 = i64::MAX / 1024;

    const NONE: u32 = u32::MAX;

    /// Create a solver over `nodes` vertices (ids `0..nodes`).
    pub fn new(nodes: usize) -> MaxFlow {
        MaxFlow { to: Vec::new(), cap: Vec::new(), head: vec![Self::NONE; nodes], next: Vec::new() }
    }

    /// Number of vertices.
    pub fn nodes(&self) -> usize {
        self.head.len()
    }

    /// Add a directed edge `u → v` with capacity `c ≥ 0`. The reverse edge
    /// gets capacity 0 (pure directed flow).
    pub fn add_edge(&mut self, u: usize, v: usize, c: i64) {
        debug_assert!(c >= 0, "capacity must be non-negative");
        debug_assert!(u < self.nodes() && v < self.nodes());
        let e = self.to.len() as u32;
        // forward
        self.to.push(v as u32);
        self.cap.push(c.min(Self::INF));
        self.next.push(self.head[u]);
        self.head[u] = e;
        // backward (residual)
        self.to.push(u as u32);
        self.cap.push(0);
        self.next.push(self.head[v]);
        self.head[v] = e + 1;
    }

    /// Run Edmonds–Karp from `s` to `t`; returns the max-flow value.
    /// Residual capacities are left in place so [`min_cut_source_side`](Self::min_cut_source_side)
    /// can be queried afterwards.
    pub fn run(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.nodes();
        let mut total: i64 = 0;
        let mut parent_edge = vec![Self::NONE; n];
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        loop {
            // BFS for a shortest augmenting path.
            parent_edge.iter_mut().for_each(|p| *p = Self::NONE);
            queue.clear();
            queue.push(s as u32);
            let mut found = false;
            let mut qi = 0;
            'bfs: while qi < queue.len() {
                let u = queue[qi] as usize;
                qi += 1;
                let mut e = self.head[u];
                while e != Self::NONE {
                    let v = self.to[e as usize] as usize;
                    if self.cap[e as usize] > 0 && parent_edge[v] == Self::NONE && v != s {
                        parent_edge[v] = e;
                        if v == t {
                            found = true;
                            break 'bfs;
                        }
                        queue.push(v as u32);
                    }
                    e = self.next[e as usize];
                }
            }
            if !found {
                return total;
            }
            // Bottleneck along the path.
            let mut bottleneck = Self::INF;
            let mut v = t;
            while v != s {
                let e = parent_edge[v] as usize;
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1] as usize;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let e = parent_edge[v] as usize;
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1] as usize;
            }
            total = total.saturating_add(bottleneck);
        }
    }

    /// After [`run`](Self::run), the set of vertices on the source side of
    /// a minimum cut: vertices reachable from `s` in the residual graph.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.nodes()];
        let mut stack = vec![s];
        side[s] = true;
        while let Some(u) = stack.pop() {
            let mut e = self.head[u];
            while e != Self::NONE {
                let v = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && !side[v] {
                    side[v] = true;
                    stack.push(v);
                }
                e = self.next[e as usize];
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut f = MaxFlow::new(2);
        f.add_edge(0, 1, 7);
        assert_eq!(f.run(0, 1), 7);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Figure 26.1-style network; max flow = 23.
        let mut f = MaxFlow::new(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        f.add_edge(s, v1, 16);
        f.add_edge(s, v2, 13);
        f.add_edge(v1, v3, 12);
        f.add_edge(v2, v1, 4);
        f.add_edge(v2, v4, 14);
        f.add_edge(v3, v2, 9);
        f.add_edge(v3, t, 20);
        f.add_edge(v4, v3, 7);
        f.add_edge(v4, t, 4);
        assert_eq!(f.run(s, t), 23);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut f = MaxFlow::new(3);
        f.add_edge(0, 1, 5);
        assert_eq!(f.run(0, 2), 0);
    }

    #[test]
    fn parallel_edges_sum() {
        let mut f = MaxFlow::new(2);
        f.add_edge(0, 1, 3);
        f.add_edge(0, 1, 4);
        assert_eq!(f.run(0, 1), 7);
    }

    #[test]
    fn min_cut_separates_source_and_sink() {
        // s -> a (cap 1) -> t (cap 10): cut must sever s->a.
        let mut f = MaxFlow::new(3);
        f.add_edge(0, 1, 1);
        f.add_edge(1, 2, 10);
        assert_eq!(f.run(0, 2), 1);
        let side = f.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[1], "s->a is the bottleneck, so a falls on the sink side");
        assert!(!side[2]);
    }

    #[test]
    fn min_cut_value_equals_flow() {
        // Verify max-flow = capacity across the extracted cut on a diamond.
        let mut f = MaxFlow::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        f.add_edge(s, a, 3);
        f.add_edge(s, b, 2);
        f.add_edge(a, t, 2);
        f.add_edge(b, t, 3);
        f.add_edge(a, b, 1);
        let flow = f.run(s, t);
        assert_eq!(flow, 5);
        let side = f.min_cut_source_side(s);
        // Recompute cut capacity from the original capacities.
        let mut fresh = MaxFlow::new(4);
        fresh.add_edge(s, a, 3);
        fresh.add_edge(s, b, 2);
        fresh.add_edge(a, t, 2);
        fresh.add_edge(b, t, 3);
        fresh.add_edge(a, b, 1);
        let mut cut = 0;
        for e in (0..fresh.to.len()).step_by(2) {
            let u = fresh.to[e ^ 1] as usize;
            let v = fresh.to[e] as usize;
            if side[u] && !side[v] {
                cut += fresh.cap[e];
            }
        }
        assert_eq!(cut, flow);
    }

    #[test]
    fn inf_edges_never_cut() {
        // s -> a INF, a -> t 4: flow limited by 4.
        let mut f = MaxFlow::new(3);
        f.add_edge(0, 1, MaxFlow::INF);
        f.add_edge(1, 2, 4);
        assert_eq!(f.run(0, 2), 4);
        let side = f.min_cut_source_side(0);
        assert!(side[1], "INF edge keeps a on source side");
    }

    #[test]
    fn large_capacities_no_overflow() {
        let mut f = MaxFlow::new(4);
        f.add_edge(0, 1, MaxFlow::INF);
        f.add_edge(0, 2, MaxFlow::INF);
        f.add_edge(1, 3, MaxFlow::INF);
        f.add_edge(2, 3, MaxFlow::INF);
        let flow = f.run(0, 3);
        assert!(flow >= MaxFlow::INF, "two INF paths saturate");
    }
}
