//! The Project Selection Problem (paper Problem 2).
//!
//! Given projects with real-valued profits and prerequisite edges (selecting
//! a project requires selecting all of its prerequisites, transitively),
//! find the closed subset with maximum total profit. Solved by the textbook
//! min-cut construction (Kleinberg–Tardos, the paper's citation 34):
//!
//! * source `s → i` with capacity `pᵢ` for every positive-profit project;
//! * `i → t` with capacity `−pᵢ` for every negative-profit project;
//! * `i → j` with capacity ∞ whenever `j` is a prerequisite of `i`.
//!
//! The source side of a minimum cut is an optimal closed selection, and
//! `max profit = Σ positive profits − min cut`.

use crate::maxflow::MaxFlow;

/// A project: a profit plus prerequisite project indices.
#[derive(Clone, Debug, Default)]
pub struct Project {
    /// Profit (may be negative).
    pub profit: i128,
    /// Indices of projects that must also be selected if this one is.
    pub prerequisites: Vec<usize>,
}

/// Project-selection instance.
#[derive(Clone, Debug, Default)]
pub struct ProjectSelection {
    projects: Vec<Project>,
}

/// Result of solving a [`ProjectSelection`].
#[derive(Clone, Debug)]
pub struct PspSolution {
    /// `selected[i]` — whether project `i` is in the optimal closed set.
    pub selected: Vec<bool>,
    /// Total profit of the selection.
    pub profit: i128,
}

impl ProjectSelection {
    /// Empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a project, returning its index.
    pub fn add_project(&mut self, profit: i128) -> usize {
        self.projects.push(Project { profit, prerequisites: Vec::new() });
        self.projects.len() - 1
    }

    /// Declare that selecting `project` requires selecting `prerequisite`.
    pub fn add_prerequisite(&mut self, project: usize, prerequisite: usize) {
        debug_assert!(project < self.projects.len() && prerequisite < self.projects.len());
        self.projects[project].prerequisites.push(prerequisite);
    }

    /// Number of projects.
    pub fn len(&self) -> usize {
        self.projects.len()
    }

    /// True when there are no projects.
    pub fn is_empty(&self) -> bool {
        self.projects.is_empty()
    }

    /// Profits are scaled into `i64` flow capacities. Callers keep profits
    /// within ±`MaxFlow::INF / 4` per project; the OEP reduction guarantees
    /// this by capping cost inputs.
    fn to_cap(p: i128) -> i64 {
        let bound = (MaxFlow::INF / 4) as i128;
        p.clamp(-bound, bound) as i64
    }

    /// Solve via min-cut. Runs in `O(V·E²)` (Edmonds–Karp).
    pub fn solve(&self) -> PspSolution {
        let n = self.projects.len();
        if n == 0 {
            return PspSolution { selected: Vec::new(), profit: 0 };
        }
        let s = n;
        let t = n + 1;
        let mut flow = MaxFlow::new(n + 2);
        let mut positive_total: i128 = 0;
        for (i, p) in self.projects.iter().enumerate() {
            let cap = Self::to_cap(p.profit);
            if cap > 0 {
                positive_total += cap as i128;
                flow.add_edge(s, i, cap);
            } else if cap < 0 {
                flow.add_edge(i, t, -cap);
            }
            for &q in &p.prerequisites {
                flow.add_edge(i, q, MaxFlow::INF);
            }
        }
        let cut = flow.run(s, t) as i128;
        let side = flow.min_cut_source_side(s);
        let selected: Vec<bool> = (0..n).map(|i| side[i]).collect();
        PspSolution { selected, profit: positive_total - cut }
    }

    /// Exhaustive solver for testing (`n ≤ ~20`): enumerate closed subsets.
    pub fn solve_brute_force(&self) -> PspSolution {
        let n = self.projects.len();
        assert!(n <= 20, "brute force only for tiny instances");
        let mut best_mask = 0u32;
        let mut best_profit: i128 = 0; // empty set is always closed with profit 0
        'subset: for mask in 0u32..(1u32 << n) {
            let mut profit: i128 = 0;
            for i in 0..n {
                if mask & (1 << i) == 0 {
                    continue;
                }
                for &q in &self.projects[i].prerequisites {
                    if mask & (1 << q) == 0 {
                        continue 'subset;
                    }
                }
                profit += self.projects[i].profit;
            }
            if profit > best_profit {
                best_profit = profit;
                best_mask = mask;
            }
        }
        PspSolution {
            selected: (0..n).map(|i| best_mask & (1 << i) != 0).collect(),
            profit: best_profit,
        }
    }
}

/// Check that a selection is *closed* under prerequisites.
pub fn is_closed(psp: &ProjectSelection, selected: &[bool]) -> bool {
    psp.projects
        .iter()
        .enumerate()
        .all(|(i, p)| !selected[i] || p.prerequisites.iter().all(|&q| selected[q]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_common::SplitMix64;

    #[test]
    fn empty_instance() {
        let psp = ProjectSelection::new();
        let sol = psp.solve();
        assert_eq!(sol.profit, 0);
        assert!(sol.selected.is_empty());
    }

    #[test]
    fn all_negative_selects_nothing() {
        let mut psp = ProjectSelection::new();
        psp.add_project(-5);
        psp.add_project(-1);
        let sol = psp.solve();
        assert_eq!(sol.profit, 0);
        assert!(sol.selected.iter().all(|&x| !x));
    }

    #[test]
    fn profitable_chain_selected() {
        // p0 = +10 requires p1 = -4: net +6 → select both.
        let mut psp = ProjectSelection::new();
        let a = psp.add_project(10);
        let b = psp.add_project(-4);
        psp.add_prerequisite(a, b);
        let sol = psp.solve();
        assert!(sol.selected[a] && sol.selected[b]);
        assert_eq!(sol.profit, 6);
    }

    #[test]
    fn unprofitable_chain_skipped() {
        let mut psp = ProjectSelection::new();
        let a = psp.add_project(3);
        let b = psp.add_project(-7);
        psp.add_prerequisite(a, b);
        let sol = psp.solve();
        assert!(!sol.selected[a] && !sol.selected[b]);
        assert_eq!(sol.profit, 0);
    }

    #[test]
    fn shared_prerequisite_amortized() {
        // Two +5 projects share one -8 prerequisite: worth it together.
        let mut psp = ProjectSelection::new();
        let a = psp.add_project(5);
        let b = psp.add_project(5);
        let c = psp.add_project(-8);
        psp.add_prerequisite(a, c);
        psp.add_prerequisite(b, c);
        let sol = psp.solve();
        assert!(sol.selected[a] && sol.selected[b] && sol.selected[c]);
        assert_eq!(sol.profit, 2);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = SplitMix64::new(0x5057);
        for trial in 0..200 {
            let n = 2 + (trial % 9);
            let mut psp = ProjectSelection::new();
            for _ in 0..n {
                psp.add_project(rng.next_below(41) as i128 - 20);
            }
            // Random forward-only prerequisites (acyclic by construction).
            for i in 1..n {
                for j in 0..i {
                    if rng.chance(0.3) {
                        psp.add_prerequisite(i, j);
                    }
                }
            }
            let fast = psp.solve();
            let slow = psp.solve_brute_force();
            assert!(is_closed(&psp, &fast.selected), "trial {trial}: selection not closed");
            assert_eq!(fast.profit, slow.profit, "trial {trial}: profit mismatch");
            // Verify reported profit matches the selected set.
            let recomputed: i128 = psp
                .projects
                .iter()
                .enumerate()
                .filter(|(i, _)| fast.selected[*i])
                .map(|(_, p)| p.profit)
                .sum();
            assert_eq!(recomputed, fast.profit, "trial {trial}: profit accounting");
        }
    }
}
