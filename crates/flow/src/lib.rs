//! # helix-flow
//!
//! Graph machinery behind HELIX's compile-time optimizer:
//!
//! * [`dag`] — a small, deterministic directed-acyclic-graph container used
//!   for Workflow DAGs (paper Definition 1), with topological ordering,
//!   reachability, and program slicing support (paper §5.4).
//! * [`maxflow`] — Edmonds–Karp MAX-FLOW / min-cut on integer capacities,
//!   `O(V · E²)` exactly as cited by the paper (§5.2, citation 23).
//! * [`psp`] — the Project Selection Problem (profits + prerequisites)
//!   reduced to min-cut (Kleinberg–Tardos construction, paper Problem 2).
//! * [`oep`] — OPT-EXEC-PLAN (paper Problem 1): Algorithm 1's linear-time
//!   reduction from node states {Compute, Load, Prune} to PSP, plus an
//!   exhaustive solver used to property-test optimality.
//!
//! All costs are integer nanoseconds (`helix_common::Nanos`); profits are
//! `i128` so big-M forcing terms can never overflow.

pub mod dag;
pub mod maxflow;
pub mod oep;
pub mod psp;

pub use dag::{Dag, NodeId};
pub use maxflow::MaxFlow;
pub use oep::{NodeCosts, OepProblem, OepSolution, State};
pub use psp::{Project, ProjectSelection};
