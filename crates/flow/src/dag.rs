//! A deterministic DAG container for Workflow DAGs.
//!
//! The Workflow DAG (paper Definition 1) has nodes for operator outputs and
//! edges for input–output relationships. This container is intentionally
//! simple: `u32` node ids, `Vec`-based adjacency in insertion order (so all
//! downstream decisions — topological order, slicing, state assignment —
//! are bit-for-bit reproducible across runs), and cycle detection at
//! `topo_order` time.

use helix_common::{HelixError, Result};

/// Index of a node within a [`Dag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Usize view for indexing.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph intended to be acyclic, with node payloads of type `T`.
///
/// Acyclicity is validated by [`topo_order`](Dag::topo_order); insertion
/// itself only rejects self-loops, duplicate edges, and dangling endpoints.
#[derive(Clone, Debug)]
pub struct Dag<T> {
    payloads: Vec<T>,
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
}

impl<T> Default for Dag<T> {
    fn default() -> Self {
        Dag { payloads: Vec::new(), children: Vec::new(), parents: Vec::new() }
    }
}

impl<T> Dag<T> {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, payload: T) -> NodeId {
        let id = NodeId(self.payloads.len() as u32);
        self.payloads.push(payload);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Add an edge `from → to` (from is an input of to).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if from.ix() >= self.len() || to.ix() >= self.len() {
            return Err(HelixError::graph(format!("edge endpoint out of range: {from}->{to}")));
        }
        if from == to {
            return Err(HelixError::graph(format!("self-loop on {from}")));
        }
        if self.children[from.ix()].contains(&to) {
            return Ok(()); // idempotent
        }
        self.children[from.ix()].push(to);
        self.parents[to.ix()].push(from);
        Ok(())
    }

    /// Payload of a node.
    pub fn payload(&self, n: NodeId) -> &T {
        &self.payloads[n.ix()]
    }

    /// Mutable payload of a node.
    pub fn payload_mut(&mut self, n: NodeId) -> &mut T {
        &mut self.payloads[n.ix()]
    }

    /// Direct predecessors (operator inputs), in insertion order.
    pub fn parents(&self, n: NodeId) -> &[NodeId] {
        &self.parents[n.ix()]
    }

    /// Direct successors (dependent operators), in insertion order.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.ix()]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.payloads.len() as u32).map(NodeId)
    }

    /// Iterate `(id, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.payloads.iter().enumerate().map(|(i, p)| (NodeId(i as u32), p))
    }

    /// All edges as `(from, to)` pairs in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.children
            .iter()
            .enumerate()
            .flat_map(|(i, cs)| cs.iter().map(move |c| (NodeId(i as u32), *c)))
    }

    /// Roots (no parents), in insertion order.
    pub fn roots(&self) -> Vec<NodeId> {
        self.node_ids().filter(|n| self.parents(*n).is_empty()).collect()
    }

    /// Sinks (no children), in insertion order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids().filter(|n| self.children(*n).is_empty()).collect()
    }

    /// Kahn topological order; errors on cycles. Ties are broken by node id
    /// so the order is deterministic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.parents[i].len()).collect();
        // Min-id-first frontier: a sorted insertion queue (the DAGs here are
        // small; clarity beats a heap).
        let mut frontier: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|id| indegree[id.ix()] == 0).collect();
        frontier.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < frontier.len() {
            let next = frontier[cursor];
            cursor += 1;
            order.push(next);
            for &c in &self.children[next.ix()] {
                indegree[c.ix()] -= 1;
                if indegree[c.ix()] == 0 {
                    // Keep the unexplored tail sorted.
                    let tail = &frontier[cursor..];
                    let pos = cursor + tail.partition_point(|x| *x < c);
                    frontier.insert(pos, c);
                }
            }
        }
        if order.len() != n {
            return Err(HelixError::graph("workflow graph contains a cycle"));
        }
        Ok(order)
    }

    /// Every node from which some node in `targets` is reachable,
    /// *including* the targets — i.e. the backward slice used by workflow
    /// pruning (paper §5.4: "traverses the DAG backwards from the output
    /// nodes and prunes away any nodes not visited").
    pub fn ancestors_of(&self, targets: &[NodeId]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = targets.to_vec();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.ix()], true) {
                continue;
            }
            stack.extend_from_slice(self.parents(n));
        }
        seen
    }

    /// Every node reachable from `sources`, including the sources — the
    /// forward slice used to propagate originality to descendants
    /// (paper Definition 2: equivalence requires equivalent parents).
    pub fn descendants_of(&self, sources: &[NodeId]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = sources.to_vec();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.ix()], true) {
                continue;
            }
            stack.extend_from_slice(self.children(n));
        }
        seen
    }

    /// In-degree (parent count) per node, aligned with node ids.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.parents.iter().map(Vec::len).collect()
    }

    /// Longest-path depth from the roots per node (roots are level 0);
    /// errors on cycles. Nodes sharing a level form an antichain — none
    /// depends on another — so each level is a maximal co-schedulable set.
    pub fn levels(&self) -> Result<Vec<usize>> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.len()];
        for id in order {
            for &c in self.children(id) {
                level[c.ix()] = level[c.ix()].max(level[id.ix()] + 1);
            }
        }
        Ok(level)
    }

    /// Nodes grouped by [`levels`](Self::levels): `result[k]` is the
    /// antichain of nodes at depth `k`, ascending by node id. The maximum
    /// antichain width bounds the useful engine worker count.
    pub fn level_sets(&self) -> Result<Vec<Vec<NodeId>>> {
        let levels = self.levels()?;
        let depth = levels.iter().copied().max().map_or(0, |d| d + 1);
        let mut sets = vec![Vec::new(); depth];
        for id in self.node_ids() {
            sets[levels[id.ix()]].push(id);
        }
        Ok(sets)
    }

    /// Start a [`Frontier`] over this DAG for incremental ready-set
    /// scheduling.
    pub fn frontier(&self) -> Frontier<'_, T> {
        Frontier::new(self)
    }

    /// Render Graphviz DOT using `label` for node captions (for docs and
    /// debugging).
    pub fn to_dot(&self, mut label: impl FnMut(NodeId, &T) -> String) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=TB;\n");
        for (id, payload) in self.iter() {
            out.push_str(&format!("  {} [label=\"{}\"];\n", id, label(id, payload)));
        }
        for (a, b) in self.edges() {
            out.push_str(&format!("  {a} -> {b};\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental ready-frontier tracking over a [`Dag`].
///
/// The engine's parallel scheduler (paper §2.1's execution layer, made
/// concurrent) asks two questions repeatedly: *which nodes are ready now*
/// (all parents completed) and *what became ready after this completion*.
/// `Frontier` answers both in O(out-degree) per completion by maintaining
/// remaining in-degrees. All orderings are ascending by node id, so
/// dispatch order is deterministic for a given completion order.
#[derive(Clone, Debug)]
pub struct Frontier<'a, T> {
    dag: &'a Dag<T>,
    indegree: Vec<usize>,
    completed: Vec<bool>,
    ready: Vec<NodeId>,
    outstanding: usize,
}

impl<'a, T> Frontier<'a, T> {
    /// Fresh frontier: every root is ready, nothing is completed.
    pub fn new(dag: &'a Dag<T>) -> Frontier<'a, T> {
        let indegree = dag.in_degrees();
        let ready: Vec<NodeId> = dag.node_ids().filter(|n| indegree[n.ix()] == 0).collect();
        Frontier { dag, indegree, completed: vec![false; dag.len()], ready, outstanding: dag.len() }
    }

    /// Currently ready, not-yet-dispatched nodes, ascending by id.
    pub fn ready(&self) -> &[NodeId] {
        &self.ready
    }

    /// Remove and return the smallest-id ready node. Draining a DAG with
    /// `pop_min` + [`complete`](Self::complete) visits nodes in exactly
    /// the canonical min-id Kahn order of [`Dag::topo_order`].
    pub fn pop_min(&mut self) -> Option<NodeId> {
        if self.ready.is_empty() {
            None
        } else {
            Some(self.ready.remove(0))
        }
    }

    /// Nodes not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True once every node has completed.
    pub fn is_complete(&self) -> bool {
        self.outstanding == 0
    }

    /// Record `node` as completed, returning the nodes that became ready
    /// *because of it* (ascending by id). The same nodes are also added to
    /// [`ready`](Self::ready) for callers that poll instead. Panics on
    /// double completion or on completing a node with unfinished parents —
    /// both are scheduler bugs worth failing loudly for.
    pub fn complete(&mut self, node: NodeId) -> Vec<NodeId> {
        assert!(!std::mem::replace(&mut self.completed[node.ix()], true), "{node} completed twice");
        assert_eq!(self.indegree[node.ix()], 0, "{node} completed with unfinished parents");
        self.outstanding -= 1;
        let mut newly: Vec<NodeId> = Vec::new();
        for &c in self.dag.children(node) {
            self.indegree[c.ix()] -= 1;
            if self.indegree[c.ix()] == 0 {
                newly.push(c);
            }
        }
        newly.sort_unstable();
        for &n in &newly {
            let pos = self.ready.partition_point(|x| *x < n);
            self.ready.insert(pos, n);
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the 8-node example DAG of paper Figure 4:
    /// 1→4, 2→4, 3→5, 4→6, 5→6, 5→8, 6→7, 7→8 (1-indexed in the paper).
    fn figure4() -> (Dag<&'static str>, Vec<NodeId>) {
        let mut g = Dag::new();
        let ns: Vec<NodeId> = (1..=8)
            .map(|i| g.add_node(Box::leak(format!("n{i}").into_boxed_str()) as &str))
            .collect();
        let edge = |g: &mut Dag<&str>, a: usize, b: usize| {
            g.add_edge(ns[a - 1], ns[b - 1]).unwrap();
        };
        edge(&mut g, 1, 4);
        edge(&mut g, 2, 4);
        edge(&mut g, 3, 5);
        edge(&mut g, 4, 6);
        edge(&mut g, 5, 6);
        edge(&mut g, 5, 8);
        edge(&mut g, 6, 7);
        edge(&mut g, 7, 8);
        (g, ns)
    }

    #[test]
    fn construction_and_adjacency() {
        let (g, ns) = figure4();
        assert_eq!(g.len(), 8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.parents(ns[3]), &[ns[0], ns[1]]);
        assert_eq!(g.children(ns[4]), &[ns[5], ns[7]]);
        assert_eq!(g.roots(), vec![ns[0], ns[1], ns[2]]);
        assert_eq!(g.sinks(), vec![ns[7]]);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_and_dangling_rejected() {
        let mut g = Dag::new();
        let a = g.add_node(());
        assert!(g.add_edge(a, a).is_err());
        assert!(g.add_edge(a, NodeId(9)).is_err());
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let (g, _) = figure4();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 8);
        let mut position = [0usize; 8];
        for (pos, n) in order.iter().enumerate() {
            position[n.ix()] = pos;
        }
        for (a, b) in g.edges() {
            assert!(position[a.ix()] < position[b.ix()], "{a} must precede {b}");
        }
        // Deterministic tie-break by id.
        assert_eq!(order, g.topo_order().unwrap());
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn cycles_detected() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn backward_slice_matches_paper_pruning() {
        // Census Figure 3b: raceExt has no path to the output and is pruned.
        let mut g = Dag::new();
        let data = g.add_node("data");
        let rows = g.add_node("rows");
        let race_ext = g.add_node("raceExt");
        let edu_ext = g.add_node("eduExt");
        let income = g.add_node("income");
        let checked = g.add_node("checked");
        g.add_edge(data, rows).unwrap();
        g.add_edge(rows, race_ext).unwrap();
        g.add_edge(rows, edu_ext).unwrap();
        g.add_edge(edu_ext, income).unwrap();
        g.add_edge(income, checked).unwrap();
        let live = g.ancestors_of(&[checked]);
        assert!(live[data.ix()] && live[rows.ix()] && live[edu_ext.ix()]);
        assert!(!live[race_ext.ix()], "raceExt must be sliced away");
    }

    #[test]
    fn forward_slice_propagates_originality() {
        let (g, ns) = figure4();
        let dirty = g.descendants_of(&[ns[4]]); // n5 changed
        for i in [4, 5, 6, 7] {
            assert!(dirty[i], "n{} downstream of n5", i + 1);
        }
        for i in [0, 1, 2, 3] {
            assert!(!dirty[i], "n{} not downstream of n5", i + 1);
        }
    }

    #[test]
    fn in_degrees_align_with_node_ids() {
        let (g, _) = figure4();
        assert_eq!(g.in_degrees(), vec![0, 0, 0, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn levels_are_longest_paths() {
        let (g, _) = figure4();
        // 1,2,3 roots; 4,5 depend on roots; 6 on 4&5; 7 on 6; 8 on 5&7.
        assert_eq!(g.levels().unwrap(), vec![0, 0, 0, 1, 1, 2, 3, 4]);
        let sets = g.level_sets().unwrap();
        assert_eq!(sets.len(), 5);
        assert_eq!(sets[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sets[1], vec![NodeId(3), NodeId(4)]);
        assert_eq!(sets[4], vec![NodeId(7)]);
        // Antichain property: no edges inside a level.
        for set in &sets {
            for a in set {
                for b in set {
                    assert!(!g.children(*a).contains(b), "{a}->{b} within a level");
                }
            }
        }
    }

    #[test]
    fn levels_error_on_cycle() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        assert!(g.levels().is_err());
        assert!(g.level_sets().is_err());
    }

    #[test]
    fn frontier_tracks_ready_sets() {
        let (g, ns) = figure4();
        let mut frontier = g.frontier();
        assert_eq!(frontier.ready(), &[ns[0], ns[1], ns[2]]);
        assert_eq!(frontier.outstanding(), 8);

        assert_eq!(frontier.pop_min(), Some(ns[0]));
        assert_eq!(frontier.pop_min(), Some(ns[1]));
        assert_eq!(frontier.pop_min(), Some(ns[2]));
        assert!(frontier.ready().is_empty());

        // n1 alone does not ready n4 (needs n2 as well).
        assert!(frontier.complete(ns[0]).is_empty());
        assert_eq!(frontier.complete(ns[1]), vec![ns[3]]);
        // n3 readies n5.
        assert_eq!(frontier.complete(ns[2]), vec![ns[4]]);
        // Both newly-ready nodes are also visible via ready().
        assert_eq!(frontier.ready(), &[ns[3], ns[4]]);

        assert!(frontier.complete(ns[3]).is_empty());
        assert_eq!(frontier.complete(ns[4]), vec![ns[5]]);
        assert_eq!(frontier.complete(ns[5]), vec![ns[6]]);
        assert_eq!(frontier.complete(ns[6]), vec![ns[7]]);
        assert!(!frontier.is_complete());
        assert!(frontier.complete(ns[7]).is_empty());
        assert!(frontier.is_complete());
        assert_eq!(frontier.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn frontier_rejects_double_completion() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let mut frontier = g.frontier();
        frontier.complete(a);
        frontier.complete(a);
    }

    #[test]
    #[should_panic(expected = "unfinished parents")]
    fn frontier_rejects_premature_completion() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b).unwrap();
        let mut frontier = g.frontier();
        frontier.complete(b);
    }

    #[test]
    fn frontier_full_drain_visits_every_node_in_topo_order() {
        let (g, _) = figure4();
        let mut frontier = g.frontier();
        let mut seen = Vec::new();
        while let Some(n) = frontier.pop_min() {
            seen.push(n);
            frontier.complete(n);
        }
        assert!(frontier.is_complete());
        assert_eq!(seen.len(), 8);
        // Min-id-first frontier drain reproduces the canonical topo order.
        assert_eq!(seen, g.topo_order().unwrap());
    }

    #[test]
    fn pop_min_interleaves_with_completions() {
        let (g, ns) = figure4();
        let mut frontier = g.frontier();
        assert_eq!(frontier.pop_min(), Some(ns[0]));
        assert_eq!(frontier.pop_min(), Some(ns[1]));
        // Nothing new ready yet (n4 needs both n1 and n2 *completed*).
        assert_eq!(frontier.pop_min(), Some(ns[2]));
        assert_eq!(frontier.pop_min(), None);
        frontier.complete(ns[0]);
        frontier.complete(ns[1]);
        // n4 became ready through complete() and is visible to pop_min.
        assert_eq!(frontier.pop_min(), Some(ns[3]));
    }

    #[test]
    fn dot_rendering_contains_nodes_and_edges() {
        let (g, _) = figure4();
        let dot = g.to_dot(|_, name| name.to_string());
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n3"));
        assert!(dot.contains("label=\"n8\""));
    }
}
