//! A deterministic DAG container for Workflow DAGs.
//!
//! The Workflow DAG (paper Definition 1) has nodes for operator outputs and
//! edges for input–output relationships. This container is intentionally
//! simple: `u32` node ids, `Vec`-based adjacency in insertion order (so all
//! downstream decisions — topological order, slicing, state assignment —
//! are bit-for-bit reproducible across runs), and cycle detection at
//! `topo_order` time.

use helix_common::{HelixError, Result};

/// Index of a node within a [`Dag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Usize view for indexing.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph intended to be acyclic, with node payloads of type `T`.
///
/// Acyclicity is validated by [`topo_order`](Dag::topo_order); insertion
/// itself only rejects self-loops, duplicate edges, and dangling endpoints.
#[derive(Clone, Debug)]
pub struct Dag<T> {
    payloads: Vec<T>,
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
}

impl<T> Default for Dag<T> {
    fn default() -> Self {
        Dag { payloads: Vec::new(), children: Vec::new(), parents: Vec::new() }
    }
}

impl<T> Dag<T> {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, payload: T) -> NodeId {
        let id = NodeId(self.payloads.len() as u32);
        self.payloads.push(payload);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Add an edge `from → to` (from is an input of to).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        if from.ix() >= self.len() || to.ix() >= self.len() {
            return Err(HelixError::graph(format!("edge endpoint out of range: {from}->{to}")));
        }
        if from == to {
            return Err(HelixError::graph(format!("self-loop on {from}")));
        }
        if self.children[from.ix()].contains(&to) {
            return Ok(()); // idempotent
        }
        self.children[from.ix()].push(to);
        self.parents[to.ix()].push(from);
        Ok(())
    }

    /// Payload of a node.
    pub fn payload(&self, n: NodeId) -> &T {
        &self.payloads[n.ix()]
    }

    /// Mutable payload of a node.
    pub fn payload_mut(&mut self, n: NodeId) -> &mut T {
        &mut self.payloads[n.ix()]
    }

    /// Direct predecessors (operator inputs), in insertion order.
    pub fn parents(&self, n: NodeId) -> &[NodeId] {
        &self.parents[n.ix()]
    }

    /// Direct successors (dependent operators), in insertion order.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.ix()]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.payloads.len() as u32).map(NodeId)
    }

    /// Iterate `(id, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.payloads.iter().enumerate().map(|(i, p)| (NodeId(i as u32), p))
    }

    /// All edges as `(from, to)` pairs in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.children
            .iter()
            .enumerate()
            .flat_map(|(i, cs)| cs.iter().map(move |c| (NodeId(i as u32), *c)))
    }

    /// Roots (no parents), in insertion order.
    pub fn roots(&self) -> Vec<NodeId> {
        self.node_ids().filter(|n| self.parents(*n).is_empty()).collect()
    }

    /// Sinks (no children), in insertion order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids().filter(|n| self.children(*n).is_empty()).collect()
    }

    /// Kahn topological order; errors on cycles. Ties are broken by node id
    /// so the order is deterministic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.len();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.parents[i].len()).collect();
        // Min-id-first frontier: a sorted insertion queue (the DAGs here are
        // small; clarity beats a heap).
        let mut frontier: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|id| indegree[id.ix()] == 0).collect();
        frontier.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < frontier.len() {
            let next = frontier[cursor];
            cursor += 1;
            order.push(next);
            for &c in &self.children[next.ix()] {
                indegree[c.ix()] -= 1;
                if indegree[c.ix()] == 0 {
                    // Keep the unexplored tail sorted.
                    let tail = &frontier[cursor..];
                    let pos = cursor + tail.partition_point(|x| *x < c);
                    frontier.insert(pos, c);
                }
            }
        }
        if order.len() != n {
            return Err(HelixError::graph("workflow graph contains a cycle"));
        }
        Ok(order)
    }

    /// Every node from which some node in `targets` is reachable,
    /// *including* the targets — i.e. the backward slice used by workflow
    /// pruning (paper §5.4: "traverses the DAG backwards from the output
    /// nodes and prunes away any nodes not visited").
    pub fn ancestors_of(&self, targets: &[NodeId]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = targets.to_vec();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.ix()], true) {
                continue;
            }
            stack.extend_from_slice(self.parents(n));
        }
        seen
    }

    /// Every node reachable from `sources`, including the sources — the
    /// forward slice used to propagate originality to descendants
    /// (paper Definition 2: equivalence requires equivalent parents).
    pub fn descendants_of(&self, sources: &[NodeId]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = sources.to_vec();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.ix()], true) {
                continue;
            }
            stack.extend_from_slice(self.children(n));
        }
        seen
    }

    /// Render Graphviz DOT using `label` for node captions (for docs and
    /// debugging).
    pub fn to_dot(&self, mut label: impl FnMut(NodeId, &T) -> String) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=TB;\n");
        for (id, payload) in self.iter() {
            out.push_str(&format!("  {} [label=\"{}\"];\n", id, label(id, payload)));
        }
        for (a, b) in self.edges() {
            out.push_str(&format!("  {a} -> {b};\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the 8-node example DAG of paper Figure 4:
    /// 1→4, 2→4, 3→5, 4→6, 5→6, 5→8, 6→7, 7→8 (1-indexed in the paper).
    fn figure4() -> (Dag<&'static str>, Vec<NodeId>) {
        let mut g = Dag::new();
        let ns: Vec<NodeId> =
            (1..=8).map(|i| g.add_node(Box::leak(format!("n{i}").into_boxed_str()) as &str)).collect();
        let edge = |g: &mut Dag<&str>, a: usize, b: usize| {
            g.add_edge(ns[a - 1], ns[b - 1]).unwrap();
        };
        edge(&mut g, 1, 4);
        edge(&mut g, 2, 4);
        edge(&mut g, 3, 5);
        edge(&mut g, 4, 6);
        edge(&mut g, 5, 6);
        edge(&mut g, 5, 8);
        edge(&mut g, 6, 7);
        edge(&mut g, 7, 8);
        (g, ns)
    }

    #[test]
    fn construction_and_adjacency() {
        let (g, ns) = figure4();
        assert_eq!(g.len(), 8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.parents(ns[3]), &[ns[0], ns[1]]);
        assert_eq!(g.children(ns[4]), &[ns[5], ns[7]]);
        assert_eq!(g.roots(), vec![ns[0], ns[1], ns[2]]);
        assert_eq!(g.sinks(), vec![ns[7]]);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_and_dangling_rejected() {
        let mut g = Dag::new();
        let a = g.add_node(());
        assert!(g.add_edge(a, a).is_err());
        assert!(g.add_edge(a, NodeId(9)).is_err());
    }

    #[test]
    fn topo_order_is_valid_and_deterministic() {
        let (g, _) = figure4();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 8);
        let mut position = [0usize; 8];
        for (pos, n) in order.iter().enumerate() {
            position[n.ix()] = pos;
        }
        for (a, b) in g.edges() {
            assert!(position[a.ix()] < position[b.ix()], "{a} must precede {b}");
        }
        // Deterministic tie-break by id.
        assert_eq!(order, g.topo_order().unwrap());
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn cycles_detected() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn backward_slice_matches_paper_pruning() {
        // Census Figure 3b: raceExt has no path to the output and is pruned.
        let mut g = Dag::new();
        let data = g.add_node("data");
        let rows = g.add_node("rows");
        let race_ext = g.add_node("raceExt");
        let edu_ext = g.add_node("eduExt");
        let income = g.add_node("income");
        let checked = g.add_node("checked");
        g.add_edge(data, rows).unwrap();
        g.add_edge(rows, race_ext).unwrap();
        g.add_edge(rows, edu_ext).unwrap();
        g.add_edge(edu_ext, income).unwrap();
        g.add_edge(income, checked).unwrap();
        let live = g.ancestors_of(&[checked]);
        assert!(live[data.ix()] && live[rows.ix()] && live[edu_ext.ix()]);
        assert!(!live[race_ext.ix()], "raceExt must be sliced away");
    }

    #[test]
    fn forward_slice_propagates_originality() {
        let (g, ns) = figure4();
        let dirty = g.descendants_of(&[ns[4]]); // n5 changed
        for i in [4, 5, 6, 7] {
            assert!(dirty[i], "n{} downstream of n5", i + 1);
        }
        for i in [0, 1, 2, 3] {
            assert!(!dirty[i], "n{} not downstream of n5", i + 1);
        }
    }

    #[test]
    fn dot_rendering_contains_nodes_and_edges() {
        let (g, _) = figure4();
        let dot = g.to_dot(|_, name| name.to_string());
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n3"));
        assert!(dot.contains("label=\"n8\""));
    }
}
