//! OPT-EXEC-PLAN (paper §5.2, Problem 1, Algorithm 1, Theorem 2).
//!
//! Given the Workflow DAG, per-node compute times `c_i`, load times `l_i`
//! (∞ when no equivalent materialization exists), and the set of *original*
//! operators that Constraint 1 forces to recompute, assign each node a
//! state — `Compute`, `Load`, or `Prune` — minimizing total run time
//! subject to the execution-state constraint (Constraint 2: a computed
//! node's parents may not be pruned).
//!
//! The solver is Algorithm 1 verbatim: two PSP projects per node,
//!
//! * `a_i` with profit `−l_i` (selecting only `a_i` ⇔ load `n_i`),
//! * `b_i` with profit `l_i − c_i` (selecting both ⇔ compute `n_i`),
//! * prerequisite `b_i → a_i`, and `b_j → a_i` for every DAG edge
//!   `(n_i, n_j)`,
//!
//! solved via min-cut. Constraint 1 is enforced with a big-M variant of the
//! paper's trick: a forced node gets `l ← M` and `c ← −M`, so selecting
//! `{a_i, b_i}` (compute) nets `+M`, which strictly dominates any cascade of
//! real parent costs (all bounded by `M`). The paper proposes `c ← −ε`,
//! which is insufficient once a forced node has parents with nonzero cost —
//! the empty selection would win; using `−M` preserves the intended
//! semantics. We additionally support *required* nodes (workflow outputs
//! that must be available, i.e. not pruned, even when nothing changed):
//! their `a` project receives a `+4M` bonus so some non-prune state always
//! wins.
//!
//! All arithmetic is integer (`i128` profits over nanosecond costs); when
//! cost sums would exceed the flow-capacity budget the instance is uniformly
//! right-shifted, which preserves the optimum ordering up to quantization of
//! a few nanoseconds.

use crate::dag::Dag;
use crate::psp::ProjectSelection;
use helix_common::timing::Nanos;

/// Execution state of a node (paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum State {
    /// `S_c`: compute from in-memory inputs, paying `c_i`.
    Compute,
    /// `S_l`: load the materialized result from disk, paying `l_i`.
    Load,
    /// `S_p`: skip entirely.
    Prune,
}

/// Per-node cost inputs to OPT-EXEC-PLAN.
#[derive(Clone, Copy, Debug)]
pub struct NodeCosts {
    /// Compute time from in-memory inputs (`c_i`).
    pub compute: Nanos,
    /// Load time from disk, `None` when no equivalent materialization
    /// exists (`l_i = ∞`).
    pub load: Option<Nanos>,
    /// Constraint 1: this operator is *original* and must be recomputed.
    pub forced_compute: bool,
    /// This node's value must be available this iteration (workflow
    /// output): any state but `Prune`.
    pub required: bool,
}

impl NodeCosts {
    /// A plain reusable node.
    pub fn new(compute: Nanos, load: Option<Nanos>) -> NodeCosts {
        NodeCosts { compute, load, forced_compute: false, required: false }
    }

    /// Mark as original (Constraint 1).
    #[must_use]
    pub fn forced(mut self) -> NodeCosts {
        self.forced_compute = true;
        self
    }

    /// Mark as a required output.
    #[must_use]
    pub fn required(mut self) -> NodeCosts {
        self.required = true;
        self
    }
}

/// Solution to OPT-EXEC-PLAN.
#[derive(Clone, Debug)]
pub struct OepSolution {
    /// State per node, indexed by `NodeId`.
    pub states: Vec<State>,
    /// `T(W, s)` under the *real* costs (forced nodes contribute their true
    /// compute time, not the −ε used internally).
    pub total_cost: Nanos,
}

/// OPT-EXEC-PLAN instance over a borrowed DAG.
pub struct OepProblem<'a, T> {
    dag: &'a Dag<T>,
    costs: &'a [NodeCosts],
}

/// Per-cost cap: ~18 minutes per operator, keeping big-M sums far inside
/// `i64` flow capacities for DAGs of thousands of nodes.
const COST_CAP: Nanos = 1 << 40;

impl<'a, T> OepProblem<'a, T> {
    /// Bind a DAG and its node costs (`costs.len() == dag.len()`).
    pub fn new(dag: &'a Dag<T>, costs: &'a [NodeCosts]) -> Self {
        assert_eq!(dag.len(), costs.len(), "one NodeCosts per DAG node");
        OepProblem { dag, costs }
    }

    /// True run time of a state assignment (Equation 1), using real costs.
    /// Load cost of a `Load`-state node without materialization counts as
    /// unsatisfiable and is reported as `None`.
    pub fn cost_of(&self, states: &[State]) -> Option<Nanos> {
        let mut total: Nanos = 0;
        for (i, s) in states.iter().enumerate() {
            match s {
                State::Compute => total = total.saturating_add(self.costs[i].compute),
                State::Load => total = total.saturating_add(self.costs[i].load?),
                State::Prune => {}
            }
        }
        Some(total)
    }

    /// Check Constraints 1 & 2 plus availability of loads and required
    /// outputs.
    pub fn is_feasible(&self, states: &[State]) -> bool {
        if states.len() != self.dag.len() {
            return false;
        }
        for (i, s) in states.iter().enumerate() {
            let c = &self.costs[i];
            match s {
                State::Compute => {
                    let id = crate::dag::NodeId(i as u32);
                    if self.dag.parents(id).iter().any(|p| states[p.ix()] == State::Prune) {
                        return false; // Constraint 2
                    }
                }
                State::Load => {
                    if c.load.is_none() || c.forced_compute {
                        return false;
                    }
                }
                State::Prune => {
                    if c.forced_compute || c.required {
                        return false; // Constraint 1 / output availability
                    }
                }
            }
            if c.forced_compute && *s != State::Compute {
                return false;
            }
        }
        true
    }

    /// Algorithm 1: reduce to PSP, solve by min-cut, map back to states.
    pub fn solve(&self) -> OepSolution {
        let n = self.dag.len();
        if n == 0 {
            return OepSolution { states: Vec::new(), total_cost: 0 };
        }

        // Effective integer costs with the big-M forcing encodings.
        // M exceeds the sum of every finite cost, so a single +M bonus
        // dominates any cascade of real costs. If the raw nanosecond sums
        // would push the largest profit (4M) past the flow-capacity budget,
        // uniformly right-shift all costs first (pure quantization).
        let mut shift = 0u32;
        let (finite_sum, s) = loop {
            let mut finite_sum: i128 = 0;
            for c in self.costs {
                finite_sum += (c.compute.min(COST_CAP) >> shift) as i128;
                if let Some(l) = c.load {
                    finite_sum += (l.min(COST_CAP) >> shift) as i128;
                }
            }
            if 8 * (finite_sum + 1_000) < (crate::maxflow::MaxFlow::INF / 4) as i128 {
                break (finite_sum, shift);
            }
            shift += 1;
        };
        let scale = |x: Nanos| -> i128 { (x.min(COST_CAP) >> s) as i128 };
        let big_m: i128 = finite_sum + 1_000;
        let bonus: i128 = 4 * big_m + 4;

        let mut psp = ProjectSelection::new();
        // Project ids: a_i = 2i, b_i = 2i + 1.
        for (i, c) in self.costs.iter().enumerate() {
            let (load_cost, compute_cost): (i128, i128) = if c.forced_compute {
                // l ← M (deprecated materialization), c ← −M (forcing bonus).
                (big_m, -big_m)
            } else {
                (c.load.map_or(big_m, &scale), scale(c.compute))
            };
            let mut a_profit = -load_cost;
            if c.required && !c.forced_compute {
                // Output must exist: make *some* non-prune state win.
                a_profit += bonus;
            }
            let a = psp.add_project(a_profit);
            let b = psp.add_project(load_cost - compute_cost);
            debug_assert_eq!(a, 2 * i);
            debug_assert_eq!(b, 2 * i + 1);
            psp.add_prerequisite(b, a);
        }
        for (from, to) in self.dag.edges() {
            // b_j requires a_i for every edge (n_i, n_j): computing a child
            // needs its parents un-pruned (Constraint 2).
            psp.add_prerequisite(2 * to.ix() + 1, 2 * from.ix());
        }

        let sol = psp.solve();
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let a = sol.selected[2 * i];
            let b = sol.selected[2 * i + 1];
            let state = match (a, b) {
                (true, true) => State::Compute,
                (true, false) => {
                    if self.costs[i].load.is_some() && !self.costs[i].forced_compute {
                        State::Load
                    } else {
                        // Load impossible: can only arise from clamping
                        // pathologies; fall back to computing.
                        State::Compute
                    }
                }
                (false, false) => State::Prune,
                (false, true) => unreachable!("b_i selected without its prerequisite a_i"),
            };
            states.push(state);
        }
        debug_assert!(self.is_feasible(&states), "optimizer produced infeasible states");
        let total_cost = self.cost_of(&states).unwrap_or(Nanos::MAX);
        OepSolution { states, total_cost }
    }

    /// Exhaustive optimal solver for cross-validation (`n ≤ 12`).
    pub fn solve_brute_force(&self) -> OepSolution {
        let n = self.dag.len();
        assert!(n <= 12, "brute force only for tiny instances");
        let mut best: Option<(Vec<State>, Nanos)> = None;
        let mut states = vec![State::Prune; n];
        self.enumerate(0, &mut states, &mut best);
        let (states, total_cost) = best.expect("at least the all-compute assignment is feasible");
        OepSolution { states, total_cost }
    }

    fn enumerate(
        &self,
        depth: usize,
        states: &mut Vec<State>,
        best: &mut Option<(Vec<State>, Nanos)>,
    ) {
        if depth == states.len() {
            if self.is_feasible(states) {
                if let Some(cost) = self.cost_of(states) {
                    if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                        *best = Some((states.clone(), cost));
                    }
                }
            }
            return;
        }
        for s in [State::Compute, State::Load, State::Prune] {
            states[depth] = s;
            self.enumerate(depth + 1, states, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Dag, NodeId};
    use helix_common::SplitMix64;

    fn chain(n: usize) -> Dag<()> {
        let mut g = Dag::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn empty_problem() {
        let g: Dag<()> = Dag::new();
        let sol = OepProblem::new(&g, &[]).solve();
        assert!(sol.states.is_empty());
        assert_eq!(sol.total_cost, 0);
    }

    #[test]
    fn nothing_needed_prunes_everything() {
        // No forced nodes, no required outputs: the trivial minimum is to
        // prune the whole DAG (paper: "setting all nodes to S_p trivially
        // minimizes Equation 1").
        let g = chain(4);
        let costs = vec![NodeCosts::new(100, Some(10)); 4];
        let sol = OepProblem::new(&g, &costs).solve();
        assert!(sol.states.iter().all(|s| *s == State::Prune));
        assert_eq!(sol.total_cost, 0);
    }

    #[test]
    fn forced_leaf_loads_cheap_parent() {
        // chain a→b; b is original. Loading a (10) beats computing it (100).
        let g = chain(2);
        let costs = vec![NodeCosts::new(100, Some(10)), NodeCosts::new(50, Some(5)).forced()];
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(sol.states, vec![State::Load, State::Compute]);
        assert_eq!(sol.total_cost, 10 + 50);
    }

    #[test]
    fn forced_leaf_computes_cheap_parent_chain() {
        // No materialization anywhere: everything upstream must compute.
        let g = chain(3);
        let costs = vec![
            NodeCosts::new(7, None),
            NodeCosts::new(9, None),
            NodeCosts::new(4, None).forced(),
        ];
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(sol.states, vec![State::Compute; 3]);
        assert_eq!(sol.total_cost, 20);
    }

    #[test]
    fn load_cuts_off_ancestors() {
        // a→b→c, c original; b is cheap to load → a pruned.
        let g = chain(3);
        let costs = vec![
            NodeCosts::new(1_000, None),
            NodeCosts::new(500, Some(3)),
            NodeCosts::new(10, None).forced(),
        ];
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(sol.states, vec![State::Prune, State::Load, State::Compute]);
        assert_eq!(sol.total_cost, 13);
    }

    #[test]
    fn required_output_reloaded_when_unchanged() {
        // Nothing original; output must exist. Loading the sink (cost 2)
        // beats recomputing the chain (cost 30).
        let g = chain(3);
        let costs = vec![
            NodeCosts::new(10, Some(8)),
            NodeCosts::new(10, Some(8)),
            NodeCosts::new(10, Some(2)).required(),
        ];
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(sol.states, vec![State::Prune, State::Prune, State::Load]);
        assert_eq!(sol.total_cost, 2);
    }

    #[test]
    fn required_output_without_materialization_recomputes() {
        let g = chain(2);
        let costs = vec![NodeCosts::new(5, Some(1)), NodeCosts::new(7, None).required()];
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(sol.states, vec![State::Load, State::Compute]);
        assert_eq!(sol.total_cost, 8);
    }

    /// The worked example of paper Figure 4: n4, n5, n8 loaded; n6, n7
    /// computed; n1, n2, n3 pruned.
    #[test]
    fn paper_figure4_example() {
        let mut g: Dag<()> = Dag::new();
        let ns: Vec<NodeId> = (0..8).map(|_| g.add_node(())).collect();
        for (a, b) in [(1, 4), (2, 4), (3, 5), (4, 6), (5, 6), (5, 8), (6, 7), (7, 8)] {
            g.add_edge(ns[a - 1], ns[b - 1]).unwrap();
        }
        let mut costs = vec![NodeCosts::new(5, Some(5)); 8];
        costs[3] = NodeCosts::new(100, Some(1)); // n4: cheap to load
        costs[4] = NodeCosts::new(100, Some(1)); // n5: cheap to load
        costs[5] = NodeCosts::new(2, Some(100)); // n6: cheap to compute
        costs[6] = NodeCosts::new(2, Some(100)).required(); // n7: output
        costs[7] = NodeCosts::new(100, Some(1)).required(); // n8: output, cheap load
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(
            sol.states,
            vec![
                State::Prune,   // n1
                State::Prune,   // n2
                State::Prune,   // n3
                State::Load,    // n4
                State::Load,    // n5
                State::Compute, // n6
                State::Compute, // n7
                State::Load,    // n8
            ]
        );
        assert_eq!(sol.total_cost, 1 + 1 + 2 + 2 + 1);
    }

    #[test]
    fn diamond_shared_parent_counted_once() {
        //    a
        //   / \
        //  b   c   (both forced)
        let mut g: Dag<()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        let costs = vec![
            NodeCosts::new(100, Some(30)),
            NodeCosts::new(5, None).forced(),
            NodeCosts::new(6, None).forced(),
        ];
        let sol = OepProblem::new(&g, &costs).solve();
        assert_eq!(sol.states[a.ix()], State::Load);
        assert_eq!(sol.total_cost, 30 + 5 + 6);
    }

    #[test]
    fn matches_brute_force_on_random_dags() {
        let mut rng = SplitMix64::new(0x0EB);
        for trial in 0..150 {
            let n = 2 + (trial % 7);
            let mut g: Dag<()> = Dag::new();
            let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
            for i in 1..n {
                for j in 0..i {
                    if rng.chance(0.35) {
                        g.add_edge(ids[j], ids[i]).unwrap();
                    }
                }
            }
            let costs: Vec<NodeCosts> = (0..n)
                .map(|_| {
                    let compute = 1 + rng.next_below(50);
                    let load = if rng.chance(0.7) { Some(1 + rng.next_below(50)) } else { None };
                    let mut c = NodeCosts::new(compute, load);
                    if rng.chance(0.3) {
                        c = c.forced();
                    } else if rng.chance(0.2) {
                        c = c.required();
                    }
                    c
                })
                .collect();
            let problem = OepProblem::new(&g, &costs);
            let fast = problem.solve();
            let slow = problem.solve_brute_force();
            assert!(problem.is_feasible(&fast.states), "trial {trial}: infeasible");
            assert_eq!(
                fast.total_cost, slow.total_cost,
                "trial {trial}: fast={:?} slow={:?}",
                fast.states, slow.states
            );
        }
    }
}
