//! # helix-ml
//!
//! The machine-learning operator substrate of the HELIX reproduction. The
//! paper's system delegated these to Spark MLlib, CoreNLP, DeepLearning4j
//! and word2vec; we implement the required algorithms from scratch so the
//! four evaluation workloads run end-to-end in pure Rust:
//!
//! * [`logistic`] — logistic regression via mini-batch SGD with L2
//!   regularization (Census + IE workloads: `Learner(modelType="LR")`).
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding (Genomics
//!   clustering step).
//! * [`word2vec`] — skip-gram with negative sampling (Genomics embedding
//!   step, paper citation 46).
//! * [`naive_bayes`] — multinomial naive Bayes (used by ablations and as
//!   an alternative L/I operator).
//! * [`rff`] — random Fourier features (the MNIST workload's
//!   non-deterministic featurization, from the KeystoneML pipeline).
//! * [`pca`] — power-iteration PCA, the deterministic counterpart used by
//!   the volatility ablation.
//! * [`preprocess`] — learned DPR transforms: standard scaler, quantile
//!   bucketizer (Census `Bucketizer(ageExt, bins=10)`), string indexer.
//! * [`text`] — tokenization, stop words, n-grams, sentence splitting and
//!   a rule-based part-of-speech-style tagger (IE workload features; the
//!   paper used CoreNLP).
//! * [`metrics`] — accuracy, precision/recall/F1, log-loss, and normalized
//!   mutual information for clustering quality.
//! * [`linalg`] — the small shared numeric kernels.
//!
//! Every algorithm takes an explicit seed and is deterministic given it.

pub mod kmeans;
pub mod linalg;
pub mod logistic;
pub mod metrics;
pub mod naive_bayes;
pub mod pca;
pub mod preprocess;
pub mod rff;
pub mod text;
pub mod word2vec;

pub use kmeans::KMeans;
pub use logistic::LogisticRegression;
pub use naive_bayes::NaiveBayes;
pub use pca::Pca;
pub use rff::RandomFourierFeatures;
pub use word2vec::Word2Vec;
