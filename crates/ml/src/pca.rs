//! Principal component analysis via power iteration with deflation.
//!
//! An alternative learned DPR transform (the paper's basis function
//! "feature transformation … learned from the input dataset", §3.1):
//! projects examples onto the top-`k` principal directions. Used by
//! ablation experiments as a deterministic stand-in for the random Fourier
//! featurization — same DAG shape, but reusable across iterations, which
//! isolates the cost of volatility in the MNIST workload.

use helix_common::{HelixError, Result, SplitMix64};
use helix_data::FeatureVector;

/// PCA trainer configuration.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Number of principal components.
    pub components: usize,
    /// Power-iteration steps per component.
    pub iterations: usize,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for Pca {
    fn default() -> Self {
        Pca { components: 8, iterations: 50, seed: 42 }
    }
}

/// A fitted PCA basis.
#[derive(Clone, Debug, PartialEq)]
pub struct PcaModel {
    /// Per-dimension means subtracted before projection.
    pub means: Vec<f64>,
    /// Row-major component matrix (`components × dim`), orthonormal rows.
    pub components: Vec<f64>,
    /// Input dimensionality.
    pub dim: usize,
    /// Eigenvalue estimate per component (variance explained).
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit the top-`k` principal directions of `points`.
    pub fn fit(&self, points: &[FeatureVector]) -> Result<PcaModel> {
        if points.is_empty() {
            return Err(HelixError::ml("pca: empty input"));
        }
        let dim = points[0].dim();
        if points.iter().any(|p| p.dim() != dim) {
            return Err(HelixError::ml("pca: inconsistent dimensions"));
        }
        if self.components == 0 || self.components > dim {
            return Err(HelixError::ml(format!(
                "pca: components {} out of range 1..={dim}",
                self.components
            )));
        }
        let n = points.len() as f64;
        let mut means = vec![0.0f64; dim];
        for p in points {
            p.add_scaled_to(&mut means, 1.0);
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        // Centered data rows (dense; PCA is a dense transform by nature).
        let centered: Vec<Vec<f64>> = points
            .iter()
            .map(|p| {
                let mut row = p.to_dense();
                for (x, m) in row.iter_mut().zip(&means) {
                    *x -= m;
                }
                row
            })
            .collect();

        let mut rng = SplitMix64::new(self.seed);
        let mut components: Vec<Vec<f64>> = Vec::with_capacity(self.components);
        let mut explained = Vec::with_capacity(self.components);
        // Working copy for deflation.
        let mut data = centered;
        for _ in 0..self.components {
            // Power iteration on X^T X without forming it.
            let mut v: Vec<f64> = (0..dim).map(|_| rng.next_gaussian()).collect();
            normalize(&mut v);
            let mut eigenvalue = 0.0;
            for _ in 0..self.iterations {
                // w = X^T (X v)
                let mut w = vec![0.0f64; dim];
                for row in &data {
                    let score = crate::linalg::dot(row, &v);
                    crate::linalg::axpy(&mut w, row, score);
                }
                eigenvalue = crate::linalg::dot(&w, &v);
                let norm = normalize(&mut w);
                if norm < 1e-12 {
                    break; // no variance left
                }
                v = w;
            }
            // Deflate: remove the found direction from every row.
            for row in data.iter_mut() {
                let score = crate::linalg::dot(row, &v);
                crate::linalg::axpy(row, &v, -score);
            }
            explained.push((eigenvalue / n).max(0.0));
            components.push(v);
        }
        Ok(PcaModel {
            means,
            components: components.into_iter().flatten().collect(),
            dim,
            explained_variance: explained,
        })
    }

    /// Project one vector onto the fitted basis.
    pub fn transform(model: &PcaModel, x: &FeatureVector) -> Result<FeatureVector> {
        if x.dim() != model.dim {
            return Err(HelixError::ml(format!(
                "pca: input dim {} != fitted dim {}",
                x.dim(),
                model.dim
            )));
        }
        let mut centered = x.to_dense();
        for (v, m) in centered.iter_mut().zip(&model.means) {
            *v -= m;
        }
        let k = model.components.len() / model.dim;
        let mut out = Vec::with_capacity(k);
        for c in 0..k {
            let row = &model.components[c * model.dim..(c + 1) * model.dim];
            out.push(crate::linalg::dot(row, &centered));
        }
        Ok(FeatureVector::Dense(out))
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data stretched along a known direction.
    fn stretched(n: usize, seed: u64) -> Vec<FeatureVector> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let t = rng.next_gaussian() * 10.0; // dominant direction (1,1)/√2
                let noise = rng.next_gaussian() * 0.3;
                FeatureVector::Dense(vec![
                    t / 2f64.sqrt() + noise,
                    t / 2f64.sqrt() - noise,
                    rng.next_gaussian() * 0.1,
                ])
            })
            .collect()
    }

    #[test]
    fn recovers_dominant_direction() {
        let points = stretched(500, 7);
        let model = Pca { components: 1, ..Default::default() }.fit(&points).unwrap();
        let c = &model.components[..3];
        // The first component should align with (1,1,0)/√2, up to sign.
        let alignment = (c[0] + c[1]).abs() / 2f64.sqrt();
        assert!(alignment > 0.99, "component {c:?}");
        assert!(c[2].abs() < 0.1);
        assert!(model.explained_variance[0] > 50.0, "{:?}", model.explained_variance);
    }

    #[test]
    fn components_are_orthonormal() {
        let points = stretched(300, 3);
        let model = Pca { components: 3, ..Default::default() }.fit(&points).unwrap();
        let row = |i: usize| &model.components[i * 3..(i + 1) * 3];
        for i in 0..3 {
            let norm: f64 = row(i).iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "row {i} norm {norm}");
            for j in 0..i {
                let dot: f64 = row(i).iter().zip(row(j)).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-4, "rows {i},{j} dot {dot}");
            }
        }
    }

    #[test]
    fn variance_is_nonincreasing() {
        let points = stretched(300, 9);
        let model = Pca { components: 3, ..Default::default() }.fit(&points).unwrap();
        let v = &model.explained_variance;
        assert!(v[0] >= v[1] && v[1] >= v[2], "{v:?}");
    }

    #[test]
    fn transform_reduces_dimension_and_centers() {
        let points = stretched(200, 5);
        let model = Pca { components: 2, ..Default::default() }.fit(&points).unwrap();
        let projected = Pca::transform(&model, &points[0]).unwrap();
        assert_eq!(projected.dim(), 2);
        // Mean of projections ≈ 0 (data is centered before projecting).
        let mut mean = [0.0f64; 2];
        for p in &points {
            let proj = Pca::transform(&model, p).unwrap().to_dense();
            mean[0] += proj[0];
            mean[1] += proj[1];
        }
        assert!((mean[0] / points.len() as f64).abs() < 0.5);
        assert!((mean[1] / points.len() as f64).abs() < 0.5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Pca::default().fit(&[]).is_err());
        let points = stretched(10, 1);
        assert!(Pca { components: 0, ..Default::default() }.fit(&points).is_err());
        assert!(Pca { components: 99, ..Default::default() }.fit(&points).is_err());
        let model = Pca { components: 1, ..Default::default() }.fit(&points).unwrap();
        assert!(Pca::transform(&model, &FeatureVector::zeros(7)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let points = stretched(100, 2);
        let cfg = Pca { components: 2, ..Default::default() };
        let a = cfg.fit(&points).unwrap();
        let b = cfg.fit(&points).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn works_on_sparse_inputs() {
        let points: Vec<FeatureVector> = (0..50)
            .map(|i| FeatureVector::sparse_from_pairs(4, vec![(0, i as f64), (1, 2.0 * i as f64)]))
            .collect();
        let model = Pca { components: 1, ..Default::default() }.fit(&points).unwrap();
        let c = &model.components[..4];
        // Dominant direction ∝ (1, 2, 0, 0).
        let ratio = c[1] / c[0];
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }
}
