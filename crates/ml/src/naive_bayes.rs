//! Multinomial naive Bayes with Laplace smoothing.
//!
//! Provided as an alternative L/I operator (the paper's DSL treats models
//! as pluggable black boxes; ablation benches swap LR for NB to exercise
//! model-change iterations).

use helix_common::{HelixError, Result};
use helix_data::{Example, FeatureVector, NaiveBayesModel, Split};

/// Naive-Bayes trainer configuration.
#[derive(Clone, Debug)]
pub struct NaiveBayes {
    /// Laplace smoothing constant.
    pub alpha: f64,
}

impl Default for NaiveBayes {
    fn default() -> Self {
        NaiveBayes { alpha: 1.0 }
    }
}

impl NaiveBayes {
    /// Fit on the `Train` split. Features are treated as non-negative
    /// counts; labels must be integers in `0..k`.
    pub fn fit(&self, examples: &[Example], dim: usize) -> Result<NaiveBayesModel> {
        let train: Vec<&Example> =
            examples.iter().filter(|e| e.split == Split::Train && e.label.is_some()).collect();
        if train.is_empty() {
            return Err(HelixError::ml("naive bayes: no labeled training examples"));
        }
        let classes = train.iter().map(|e| e.label.unwrap_or(0.0) as usize).max().unwrap_or(0) + 1;
        let mut class_counts = vec![0.0f64; classes];
        let mut feature_counts = vec![0.0f64; classes * dim];
        for e in &train {
            let c = e.label.unwrap_or(0.0) as usize;
            class_counts[c] += 1.0;
            e.features.add_scaled_to(&mut feature_counts[c * dim..(c + 1) * dim], 1.0);
        }
        let total = train.len() as f64;
        let log_priors: Vec<f64> = class_counts
            .iter()
            .map(|c| ((c + self.alpha) / (total + self.alpha * classes as f64)).ln())
            .collect();
        let mut log_likelihoods = vec![0.0f64; classes * dim];
        for c in 0..classes {
            let row = &feature_counts[c * dim..(c + 1) * dim];
            let row_total: f64 = row.iter().sum::<f64>() + self.alpha * dim as f64;
            for (j, count) in row.iter().enumerate() {
                log_likelihoods[c * dim + j] = ((count + self.alpha) / row_total).ln();
            }
        }
        Ok(NaiveBayesModel { log_priors, log_likelihoods, dim: dim as u32 })
    }

    /// Per-class log-posterior scores (unnormalized).
    pub fn scores(model: &NaiveBayesModel, features: &FeatureVector) -> Vec<f64> {
        let dim = model.dim as usize;
        let classes = model.log_priors.len();
        (0..classes)
            .map(|c| {
                model.log_priors[c]
                    + features.dot_dense(&model.log_likelihoods[c * dim..(c + 1) * dim])
            })
            .collect()
    }

    /// Hard class prediction.
    pub fn predict(model: &NaiveBayesModel, features: &FeatureVector) -> f64 {
        crate::linalg::argmax(&Self::scores(model, features)).unwrap_or(0) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_example(counts: Vec<(u32, f64)>, dim: u32, label: f64) -> Example {
        Example::new(FeatureVector::sparse_from_pairs(dim, counts), Some(label), Split::Train)
    }

    #[test]
    fn separable_count_data_learned() {
        // Class 0 uses features {0,1}, class 1 uses {2,3}.
        let mut data = Vec::new();
        for i in 0..100 {
            if i % 2 == 0 {
                data.push(count_example(vec![(0, 3.0), (1, 2.0)], 4, 0.0));
            } else {
                data.push(count_example(vec![(2, 3.0), (3, 2.0)], 4, 1.0));
            }
        }
        let model = NaiveBayes::default().fit(&data, 4).unwrap();
        assert_eq!(
            NaiveBayes::predict(&model, &FeatureVector::sparse_from_pairs(4, vec![(0, 1.0)])),
            0.0
        );
        assert_eq!(
            NaiveBayes::predict(&model, &FeatureVector::sparse_from_pairs(4, vec![(3, 1.0)])),
            1.0
        );
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let mut data = Vec::new();
        for _ in 0..90 {
            data.push(count_example(vec![(0, 1.0)], 2, 0.0));
        }
        for _ in 0..10 {
            data.push(count_example(vec![(1, 1.0)], 2, 1.0));
        }
        let model = NaiveBayes::default().fit(&data, 2).unwrap();
        assert!(model.log_priors[0] > model.log_priors[1]);
        // A featureless vector falls back to the prior.
        let empty = FeatureVector::sparse_from_pairs(2, vec![]);
        assert_eq!(NaiveBayes::predict(&model, &empty), 0.0);
    }

    #[test]
    fn smoothing_handles_unseen_features() {
        let data =
            vec![count_example(vec![(0, 5.0)], 3, 0.0), count_example(vec![(1, 5.0)], 3, 1.0)];
        let model = NaiveBayes::default().fit(&data, 3).unwrap();
        // Feature 2 was never observed; scores must stay finite.
        let scores =
            NaiveBayes::scores(&model, &FeatureVector::sparse_from_pairs(3, vec![(2, 4.0)]));
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn empty_training_is_an_error() {
        let data = vec![Example::new(FeatureVector::zeros(2), Some(0.0), Split::Test)];
        assert!(NaiveBayes::default().fit(&data, 2).is_err());
    }
}
