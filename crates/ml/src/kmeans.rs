//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The Genomics workflow clusters learned gene embeddings "using K-Means to
//! identify functional similarity" (paper §6.2). Deterministic given the
//! seed.

use helix_common::{HelixError, Result, SplitMix64};
use helix_data::{CentroidModel, FeatureVector};

/// K-means trainer configuration.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f64,
    /// Seeding RNG.
    pub seed: u64,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans { k: 8, max_iters: 50, tolerance: 1e-6, seed: 42 }
    }
}

impl KMeans {
    /// `k`-cluster configuration with defaults elsewhere.
    pub fn with_k(k: usize) -> KMeans {
        KMeans { k, ..Default::default() }
    }

    /// Fit centroids to `points`.
    pub fn fit(&self, points: &[FeatureVector]) -> Result<CentroidModel> {
        if self.k == 0 {
            return Err(HelixError::ml("k-means requires k >= 1"));
        }
        if points.len() < self.k {
            return Err(HelixError::ml(format!(
                "k-means: {} points for k={}",
                points.len(),
                self.k
            )));
        }
        let dim = points[0].dim();
        if points.iter().any(|p| p.dim() != dim) {
            return Err(HelixError::ml("k-means: inconsistent dimensions"));
        }

        let mut rng = SplitMix64::new(self.seed);
        let mut centroids = self.plus_plus_init(points, dim, &mut rng);
        let mut assignment = vec![0usize; points.len()];

        for _ in 0..self.max_iters {
            // Assign.
            for (i, p) in points.iter().enumerate() {
                assignment[i] = Self::nearest(&centroids, p).0;
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (i, p) in points.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                p.add_scaled_to(&mut sums[c], 1.0);
            }
            let mut movement = 0.0;
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random point.
                    let p = &points[rng.index(points.len())];
                    sums[c] = p.to_dense();
                    counts[c] = 1;
                }
                for v in sums[c].iter_mut() {
                    *v /= counts[c] as f64;
                }
                movement +=
                    sums[c].iter().zip(&centroids[c]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
                centroids[c] = std::mem::take(&mut sums[c]);
            }
            if movement < self.tolerance {
                break;
            }
        }

        let inertia: f64 = points.iter().map(|p| Self::nearest(&centroids, p).1).sum();
        Ok(CentroidModel { centroids, dim: dim as u32, inertia })
    }

    /// Cluster index for one point.
    pub fn assign(model: &CentroidModel, point: &FeatureVector) -> usize {
        Self::nearest(&model.centroids, point).0
    }

    fn nearest(centroids: &[Vec<f64>], p: &FeatureVector) -> (usize, f64) {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = p.sq_dist_dense(centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        (best, best_d)
    }

    /// k-means++ seeding: first centroid uniform, the rest proportional to
    /// squared distance from the nearest chosen centroid.
    fn plus_plus_init(
        &self,
        points: &[FeatureVector],
        dim: usize,
        rng: &mut SplitMix64,
    ) -> Vec<Vec<f64>> {
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centroids.push(points[rng.index(points.len())].to_dense());
        let mut dists: Vec<f64> = points.iter().map(|p| p.sq_dist_dense(&centroids[0])).collect();
        while centroids.len() < self.k {
            let next = match rng.choose_weighted(&dists) {
                Some(i) => i,
                // All-zero distances (duplicate points): fall back uniform.
                None => rng.index(points.len()),
            };
            centroids.push(points[next].to_dense());
            let _ = dim;
            let newest = centroids.last().unwrap();
            for (d, p) in dists.iter_mut().zip(points) {
                let nd = p.sq_dist_dense(newest);
                if nd < *d {
                    *d = nd;
                }
            }
        }
        centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_blobs(per_cluster: usize, centers: &[(f64, f64)], seed: u64) -> Vec<FeatureVector> {
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_cluster {
                out.push(FeatureVector::Dense(vec![
                    cx + rng.next_gaussian() * 0.2,
                    cy + rng.next_gaussian() * 0.2,
                ]));
            }
        }
        out
    }

    #[test]
    fn recovers_planted_clusters() {
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let points = planted_blobs(60, &centers, 5);
        let model = KMeans::with_k(3).fit(&points).unwrap();
        // Each planted blob should map to a single distinct centroid.
        let mut blob_to_cluster = Vec::new();
        for b in 0..3 {
            let counts = (0..60).fold([0usize; 3], |mut acc, i| {
                acc[KMeans::assign(&model, &points[b * 60 + i])] += 1;
                acc
            });
            let majority = counts.iter().enumerate().max_by_key(|(_, c)| **c).unwrap();
            assert!(*majority.1 > 55, "blob {b} split across clusters: {counts:?}");
            blob_to_cluster.push(majority.0);
        }
        blob_to_cluster.sort_unstable();
        blob_to_cluster.dedup();
        assert_eq!(blob_to_cluster.len(), 3, "each blob has its own cluster");
        assert!(model.inertia < 60.0, "inertia {0} too high", model.inertia);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points = planted_blobs(40, &[(0.0, 0.0), (8.0, 8.0), (0.0, 8.0), (8.0, 0.0)], 9);
        let i2 = KMeans::with_k(2).fit(&points).unwrap().inertia;
        let i4 = KMeans::with_k(4).fit(&points).unwrap().inertia;
        assert!(i4 < i2, "k=4 inertia {i4} should beat k=2 {i2}");
    }

    #[test]
    fn works_on_sparse_points() {
        let points: Vec<FeatureVector> = (0..20)
            .map(|i| {
                let idx = if i % 2 == 0 { 0 } else { 5 };
                FeatureVector::sparse_from_pairs(8, vec![(idx, 10.0)])
            })
            .collect();
        let model = KMeans::with_k(2).fit(&points).unwrap();
        let a = KMeans::assign(&model, &points[0]);
        let b = KMeans::assign(&model, &points[1]);
        assert_ne!(a, b);
        assert_eq!(KMeans::assign(&model, &points[2]), a);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let points = planted_blobs(2, &[(0.0, 0.0)], 1);
        assert!(KMeans::with_k(0).fit(&points).is_err());
        assert!(KMeans::with_k(10).fit(&points).is_err());
        let mixed = vec![FeatureVector::zeros(2), FeatureVector::zeros(3)];
        assert!(KMeans::with_k(1).fit(&mixed).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let points = planted_blobs(30, &[(0.0, 0.0), (5.0, 5.0)], 3);
        let a = KMeans::with_k(2).fit(&points).unwrap();
        let b = KMeans::with_k(2).fit(&points).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_points_handled() {
        let points: Vec<FeatureVector> =
            (0..10).map(|_| FeatureVector::Dense(vec![1.0, 1.0])).collect();
        let model = KMeans::with_k(3).fit(&points).unwrap();
        assert_eq!(model.centroids.len(), 3);
        assert!(model.inertia < 1e-9);
    }
}
