//! Random Fourier features (Rahimi–Recht) — the MNIST workload's DPR.
//!
//! The paper's MNIST pipeline comes from KeystoneML's `MnistRandomFFT`
//! example: images are lifted through a *randomized* feature map before a
//! linear classifier. The randomization is why the paper calls this
//! workload's preprocessing "nondeterministic (and hence not reusable)"
//! (§6.2): re-executing the operator draws a fresh projection, deprecating
//! every downstream result. In our reproduction the projection is seeded
//! explicitly; the workflow layer feeds a fresh nonce whenever the operator
//! re-executes, reproducing the paper's semantics while keeping whole runs
//! replayable.
//!
//! The map is `x ↦ sqrt(2/D) · cos(Wx + b)` with `W ~ N(0, γ)` rows and
//! `b ~ U[0, 2π)`, approximating an RBF kernel.

use helix_common::{HelixError, Result, SplitMix64};
use helix_data::{FeatureVector, TransformModel};

/// Random Fourier feature generator configuration.
#[derive(Clone, Debug)]
pub struct RandomFourierFeatures {
    /// Output dimensionality `D`.
    pub dim_out: usize,
    /// Kernel bandwidth multiplier for the Gaussian projection.
    pub gamma: f64,
    /// Projection seed (the workflow layer mixes in an execution nonce).
    pub seed: u64,
}

impl Default for RandomFourierFeatures {
    fn default() -> Self {
        RandomFourierFeatures { dim_out: 128, gamma: 0.05, seed: 42 }
    }
}

impl RandomFourierFeatures {
    /// Draw the projection for inputs of dimension `dim_in`.
    pub fn fit(&self, dim_in: usize) -> Result<TransformModel> {
        if self.dim_out == 0 || dim_in == 0 {
            return Err(HelixError::ml("rff: dimensions must be positive"));
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut projection = Vec::with_capacity(self.dim_out * dim_in);
        for _ in 0..self.dim_out * dim_in {
            projection.push(rng.next_gaussian() * self.gamma.sqrt());
        }
        let offsets: Vec<f64> =
            (0..self.dim_out).map(|_| rng.next_f64() * std::f64::consts::TAU).collect();
        Ok(TransformModel::RandomFourier {
            projection,
            offsets,
            dim_in: dim_in as u32,
            dim_out: self.dim_out as u32,
        })
    }

    /// Apply a fitted projection to one input vector.
    pub fn transform(model: &TransformModel, x: &FeatureVector) -> Result<FeatureVector> {
        let TransformModel::RandomFourier { projection, offsets, dim_in, dim_out } = model else {
            return Err(HelixError::ml("rff: wrong transform model"));
        };
        let (din, dout) = (*dim_in as usize, *dim_out as usize);
        if x.dim() != din {
            return Err(HelixError::ml(format!("rff: input dim {} != fitted dim {din}", x.dim())));
        }
        let dense = x.to_dense();
        let scale = (2.0 / dout as f64).sqrt();
        let mut out = Vec::with_capacity(dout);
        for row in 0..dout {
            let w = &projection[row * din..(row + 1) * din];
            out.push(scale * (crate::linalg::dot(w, &dense) + offsets[row]).cos());
        }
        Ok(FeatureVector::Dense(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dimension_and_bounds() {
        let rff = RandomFourierFeatures { dim_out: 64, ..Default::default() };
        let model = rff.fit(10).unwrap();
        let y = RandomFourierFeatures::transform(&model, &FeatureVector::zeros(10)).unwrap();
        assert_eq!(y.dim(), 64);
        let bound = (2.0 / 64.0f64).sqrt() + 1e-12;
        for k in 0..64 {
            assert!(y.get(k).abs() <= bound);
        }
    }

    #[test]
    fn kernel_approximation_close_points_more_similar() {
        let rff = RandomFourierFeatures { dim_out: 512, gamma: 0.5, seed: 9 };
        let model = rff.fit(4).unwrap();
        let x = FeatureVector::Dense(vec![1.0, 0.0, -1.0, 0.5]);
        let near = FeatureVector::Dense(vec![1.05, 0.0, -1.0, 0.55]);
        let far = FeatureVector::Dense(vec![-3.0, 2.0, 4.0, -1.0]);
        let phi = |v: &FeatureVector| RandomFourierFeatures::transform(&model, v).unwrap();
        let sim_near = crate::linalg::dot(&phi(&x).to_dense(), &phi(&near).to_dense());
        let sim_far = crate::linalg::dot(&phi(&x).to_dense(), &phi(&far).to_dense());
        assert!(sim_near > sim_far + 0.2, "near {sim_near} vs far {sim_far}");
    }

    #[test]
    fn different_seeds_different_projections() {
        let a = RandomFourierFeatures { seed: 1, ..Default::default() }.fit(5).unwrap();
        let b = RandomFourierFeatures { seed: 2, ..Default::default() }.fit(5).unwrap();
        assert_ne!(a, b, "fresh nonce must deprecate the projection");
        let a2 = RandomFourierFeatures { seed: 1, ..Default::default() }.fit(5).unwrap();
        assert_eq!(a, a2, "same seed must replay exactly");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let model = RandomFourierFeatures::default().fit(8).unwrap();
        assert!(RandomFourierFeatures::transform(&model, &FeatureVector::zeros(9)).is_err());
        assert!(RandomFourierFeatures { dim_out: 0, ..Default::default() }.fit(3).is_err());
    }
}
