//! Text processing for the NLP-flavoured workloads.
//!
//! The paper's IE workflow leans on CoreNLP for tokenization, sentence
//! splitting and part-of-speech tagging (§2.1, §6.2). We provide compact
//! deterministic equivalents: the point of the reproduction is the *cost
//! structure* (an expensive parse whose output is reusable across
//! iterations), not linguistic fidelity.

/// Lowercase alphanumeric tokenizer; splits on any non-alphanumeric rune.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Tokenizer preserving original case (needed for name detection).
pub fn tokenize_cased(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.push(ch);
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Minimal English stop-word list (enough to shrink feature spaces in the
/// workloads; not a linguistics claim).
pub const STOP_WORDS: [&str; 24] = [
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "in", "is", "it", "of",
    "on", "or", "that", "the", "to", "was", "were", "with", "this",
];

/// True when `token` is a stop word (expects lowercase input).
pub fn is_stop_word(token: &str) -> bool {
    STOP_WORDS.contains(&token)
}

/// Remove stop words from a token stream.
pub fn remove_stop_words(tokens: Vec<String>) -> Vec<String> {
    tokens.into_iter().filter(|t| !is_stop_word(t)).collect()
}

/// Contiguous n-grams joined with `_`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join("_")).collect()
}

/// Split text into sentences on `.`, `!`, `?` (quote-naive).
pub fn split_sentences(text: &str) -> Vec<&str> {
    text.split(['.', '!', '?']).map(str::trim).filter(|s| !s.is_empty()).collect()
}

/// Coarse part-of-speech-style tags used by the IE features.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PosTag {
    /// Capitalized token mid-sentence → treated as a proper noun.
    ProperNoun,
    /// Numeric token.
    Number,
    /// `-ly` adverbs.
    Adverb,
    /// Common verb endings / auxiliary list.
    Verb,
    /// Everything else.
    Other,
}

/// Rule-based tagger over *cased* tokens. `position` is the token index
/// within its sentence (sentence-initial capitalization is not evidence of
/// a proper noun).
pub fn pos_tag(token: &str, position: usize) -> PosTag {
    if token.chars().all(|c| c.is_ascii_digit()) {
        return PosTag::Number;
    }
    let mut chars = token.chars();
    let first_upper = chars.next().is_some_and(char::is_uppercase);
    if first_upper && position > 0 {
        return PosTag::ProperNoun;
    }
    let lower = token.to_lowercase();
    if lower.ends_with("ly") && lower.len() > 3 {
        return PosTag::Adverb;
    }
    const AUX: [&str; 8] = ["is", "was", "are", "were", "married", "met", "wed", "divorced"];
    if AUX.contains(&lower.as_str()) || lower.ends_with("ed") || lower.ends_with("ing") {
        return PosTag::Verb;
    }
    PosTag::Other
}

/// Tag a full cased-token sentence.
pub fn pos_tag_sentence(tokens: &[String]) -> Vec<PosTag> {
    tokens.iter().enumerate().map(|(i, t)| pos_tag(t, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Hello, World! 42"), vec!["hello", "world", "42"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("  --  "), Vec::<String>::new());
        assert_eq!(tokenize("gene-disease"), vec!["gene", "disease"]);
    }

    #[test]
    fn tokenize_cased_preserves_case() {
        assert_eq!(tokenize_cased("Barack met Michelle"), vec!["Barack", "met", "Michelle"]);
    }

    #[test]
    fn stop_word_removal() {
        let tokens = tokenize("the gene is in the cell");
        let kept = remove_stop_words(tokens);
        assert_eq!(kept, vec!["gene", "cell"]);
    }

    #[test]
    fn ngram_windows() {
        let tokens: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(ngrams(&tokens, 2), vec!["a_b", "b_c"]);
        assert_eq!(ngrams(&tokens, 3), vec!["a_b_c"]);
        assert!(ngrams(&tokens, 4).is_empty());
        assert!(ngrams(&tokens, 0).is_empty());
    }

    #[test]
    fn sentence_splitting() {
        let sents = split_sentences("One sentence. Another one! A third? ");
        assert_eq!(sents, vec!["One sentence", "Another one", "A third"]);
        assert!(split_sentences("...").is_empty());
    }

    #[test]
    fn pos_rules() {
        assert_eq!(pos_tag("Barack", 3), PosTag::ProperNoun);
        assert_eq!(pos_tag("Barack", 0), PosTag::Other, "sentence-initial caps not proper noun");
        assert_eq!(pos_tag("2015", 2), PosTag::Number);
        assert_eq!(pos_tag("quickly", 2), PosTag::Adverb);
        assert_eq!(pos_tag("married", 2), PosTag::Verb);
        assert_eq!(pos_tag("walking", 1), PosTag::Verb);
        assert_eq!(pos_tag("table", 1), PosTag::Other);
    }

    #[test]
    fn pos_sentence_alignment() {
        let tokens = tokenize_cased("Barack married Michelle");
        let tags = pos_tag_sentence(&tokens);
        assert_eq!(tags, vec![PosTag::Other, PosTag::Verb, PosTag::ProperNoun]);
    }
}
