//! Logistic regression via SGD with L2 regularization.
//!
//! This is the `Learner(modelType="LR", regParam=0.1)` of the paper's
//! Census example (Figure 3a, line 15) and the classifier of the IE
//! workload. Binary problems train a single weight vector; multiclass
//! problems (MNIST) train one-vs-rest.
//!
//! Training is deterministic given the seed: examples are shuffled with a
//! `SplitMix64` stream per epoch.

use crate::linalg::sigmoid;
use helix_common::{HelixError, Result, SplitMix64};
use helix_data::{Example, FeatureVector, LinearModel, Split};

/// Logistic-regression trainer configuration.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// L2 regularization strength (the paper's `regParam`).
    pub l2: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / (1 + epoch)`).
    pub learning_rate: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression { l2: 0.1, epochs: 12, learning_rate: 0.5, seed: 42 }
    }
}

impl LogisticRegression {
    /// Builder-style constructor with the paper's `regParam`.
    pub fn with_reg(l2: f64) -> LogisticRegression {
        LogisticRegression { l2, ..Default::default() }
    }

    /// Fit on the `Train` split of `examples`. Labels must be integers in
    /// `0..k`; `k = 2` yields a single-score binary model.
    pub fn fit(&self, examples: &[Example], dim: usize) -> Result<LinearModel> {
        let train: Vec<&Example> =
            examples.iter().filter(|e| e.split == Split::Train && e.label.is_some()).collect();
        if train.is_empty() {
            return Err(HelixError::ml("logistic regression: no labeled training examples"));
        }
        let classes = train.iter().map(|e| e.label.unwrap_or(0.0) as i64).max().unwrap_or(0).max(1)
            as usize
            + 1;
        if classes > 1_000 {
            return Err(HelixError::ml(format!("implausible class count {classes}")));
        }
        let heads = if classes == 2 { 1 } else { classes };
        let mut weights = vec![vec![0.0f64; dim]; heads];
        let mut bias = vec![0.0f64; heads];
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SplitMix64::new(self.seed);

        for epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            let lr = self.learning_rate / (1.0 + epoch as f64);
            // L2 shrink applied once per example via scaled decay keeps the
            // update sparse-friendly (decay factor folded into the update).
            let decay = 1.0 - lr * self.l2 / train.len() as f64;
            for &i in &order {
                let example = train[i];
                let label = example.label.unwrap_or(0.0);
                for (h, (w, b)) in weights.iter_mut().zip(bias.iter_mut()).enumerate() {
                    let target = if heads == 1 {
                        label
                    } else if (label as usize) == h {
                        1.0
                    } else {
                        0.0
                    };
                    let z = example.features.dot_dense(w) + *b;
                    let gradient = sigmoid(z) - target;
                    if decay < 1.0 {
                        for x in w.iter_mut() {
                            *x *= decay;
                        }
                    }
                    example.features.add_scaled_to(w, -lr * gradient);
                    *b -= lr * gradient;
                }
            }
        }
        Ok(LinearModel { weights, bias, dim: dim as u32 })
    }

    /// Predicted probability (binary) or class scores (multiclass) for one
    /// feature vector.
    pub fn scores(model: &LinearModel, features: &FeatureVector) -> Vec<f64> {
        model
            .weights
            .iter()
            .zip(&model.bias)
            .map(|(w, b)| sigmoid(features.dot_dense(w) + b))
            .collect()
    }

    /// Hard prediction: probability threshold for binary, argmax for
    /// multiclass.
    pub fn predict(model: &LinearModel, features: &FeatureVector) -> f64 {
        let scores = Self::scores(model, features);
        if scores.len() == 1 {
            if scores[0] >= 0.5 {
                1.0
            } else {
                0.0
            }
        } else {
            crate::linalg::argmax(&scores).unwrap_or(0) as f64
        }
    }

    /// Run inference over a slice of examples, filling `prediction`.
    pub fn predict_all(model: &LinearModel, examples: &mut [Example]) {
        for e in examples.iter_mut() {
            let scores = Self::scores(model, &e.features);
            e.prediction = Some(if scores.len() == 1 {
                scores[0]
            } else {
                crate::linalg::argmax(&scores).unwrap_or(0) as f64
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_data::Split;

    fn example(x: Vec<f64>, label: f64, split: Split) -> Example {
        Example::new(FeatureVector::Dense(x), Some(label), split)
    }

    /// Linearly separable blob pair.
    fn blobs(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let label = (i % 2) as f64;
            let center = if label > 0.5 { 2.0 } else { -2.0 };
            let x = vec![center + rng.next_gaussian() * 0.5, center + rng.next_gaussian() * 0.5];
            let split = if i % 5 == 0 { Split::Test } else { Split::Train };
            out.push(example(x, label, split));
        }
        out
    }

    #[test]
    fn separable_binary_problem_learned() {
        let data = blobs(400, 7);
        let model = LogisticRegression::default().fit(&data, 2).unwrap();
        assert_eq!(model.classes(), 1);
        let mut correct = 0;
        let mut total = 0;
        for e in data.iter().filter(|e| e.split == Split::Test) {
            let p = LogisticRegression::predict(&model, &e.features);
            total += 1;
            if (p - e.label.unwrap()).abs() < 0.5 {
                correct += 1;
            }
        }
        assert!(total > 0);
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut rng = SplitMix64::new(3);
        let mut data = Vec::new();
        let centers = [(0.0, 4.0), (4.0, -4.0), (-4.0, -4.0)];
        for i in 0..600 {
            let c = i % 3;
            let (cx, cy) = centers[c];
            data.push(example(
                vec![cx + rng.next_gaussian() * 0.4, cy + rng.next_gaussian() * 0.4],
                c as f64,
                if i % 4 == 0 { Split::Test } else { Split::Train },
            ));
        }
        let model = LogisticRegression::default().fit(&data, 2).unwrap();
        assert_eq!(model.classes(), 3);
        let mut correct = 0;
        let mut total = 0;
        for e in data.iter().filter(|e| e.split == Split::Test) {
            total += 1;
            if (LogisticRegression::predict(&model, &e.features) - e.label.unwrap()).abs() < 0.5 {
                correct += 1;
            }
        }
        assert!(correct as f64 / total as f64 > 0.9);
    }

    #[test]
    fn sparse_features_train_too() {
        let mut data = Vec::new();
        for i in 0..200 {
            let label = (i % 2) as f64;
            let idx = if label > 0.5 { 0 } else { 1 };
            data.push(Example::new(
                FeatureVector::sparse_from_pairs(4, vec![(idx, 1.0), (3, 0.1)]),
                Some(label),
                Split::Train,
            ));
        }
        let model = LogisticRegression::default().fit(&data, 4).unwrap();
        let pos = LogisticRegression::scores(
            &model,
            &FeatureVector::sparse_from_pairs(4, vec![(0, 1.0)]),
        )[0];
        let neg = LogisticRegression::scores(
            &model,
            &FeatureVector::sparse_from_pairs(4, vec![(1, 1.0)]),
        )[0];
        assert!(pos > 0.8, "pos {pos}");
        assert!(neg < 0.2, "neg {neg}");
    }

    #[test]
    fn regularization_shrinks_weights() {
        let data = blobs(200, 11);
        let loose = LogisticRegression { l2: 0.0, ..Default::default() }.fit(&data, 2).unwrap();
        let tight = LogisticRegression { l2: 50.0, ..Default::default() }.fit(&data, 2).unwrap();
        let norm = |m: &LinearModel| m.weights[0].iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(norm(&tight) < norm(&loose), "l2 must shrink weights");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(100, 5);
        let a = LogisticRegression::default().fit(&data, 2).unwrap();
        let b = LogisticRegression::default().fit(&data, 2).unwrap();
        assert_eq!(a, b);
        let c = LogisticRegression { seed: 99, ..Default::default() }.fit(&data, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn no_training_data_is_an_error() {
        let data = vec![example(vec![1.0], 1.0, Split::Test)];
        assert!(LogisticRegression::default().fit(&data, 1).is_err());
    }

    #[test]
    fn predict_all_fills_predictions() {
        let mut data = blobs(50, 2);
        let model = LogisticRegression::default().fit(&data, 2).unwrap();
        LogisticRegression::predict_all(&model, &mut data);
        assert!(data.iter().all(|e| e.prediction.is_some()));
    }
}
