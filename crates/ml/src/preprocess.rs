//! Learned DPR transforms (paper §3.1: "sometimes these functions need to
//! be learned from the input data").
//!
//! * [`StandardScaler`] — per-dimension mean/variance standardization.
//! * [`QuantileBucketizer`] — the Census example's
//!   `Bucketizer(ageExt, bins=10)`: bucket boundaries "computed by HELIX"
//!   from the empirical distribution, i.e. quantiles.
//! * [`StringIndexer`] — categorical value → dense index, learned from the
//!   observed vocabulary.
//!
//! Each type has a `fit` that produces a plain-data model (stored in
//! `helix-data` so the catalog can persist it) and a pure `transform`.

use helix_common::{HelixError, Result};
use helix_data::{BucketizerModel, IndexerModel, ScalerModel};
use std::collections::HashMap;

/// Mean/standard-deviation scaler.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardScaler;

impl StandardScaler {
    /// Learn per-dimension statistics from dense rows.
    pub fn fit(rows: &[Vec<f64>]) -> Result<ScalerModel> {
        let Some(first) = rows.first() else {
            return Err(HelixError::ml("scaler: empty input"));
        };
        let dim = first.len();
        let n = rows.len() as f64;
        let mut means = vec![0.0f64; dim];
        for row in rows {
            if row.len() != dim {
                return Err(HelixError::ml("scaler: ragged input"));
            }
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut vars = vec![0.0f64; dim];
        for row in rows {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds: Vec<f64> = vars.iter().map(|v| (v / n).sqrt().max(1e-9)).collect();
        Ok(ScalerModel { means, stds })
    }

    /// Standardize one row in place.
    pub fn transform(model: &ScalerModel, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(&model.means).zip(&model.stds) {
            *x = (*x - m) / s;
        }
    }
}

/// Quantile-based discretizer.
#[derive(Clone, Copy, Debug)]
pub struct QuantileBucketizer {
    /// Number of buckets.
    pub bins: usize,
}

impl QuantileBucketizer {
    /// Learn `bins - 1` boundaries at the empirical quantiles of `values`
    /// (requires a full scan — this is exactly the work HELIX avoids
    /// recomputing by materializing `ageBucket`, Figure 3).
    pub fn fit(&self, values: &[f64]) -> Result<BucketizerModel> {
        if self.bins < 2 {
            return Err(HelixError::ml("bucketizer: need at least 2 bins"));
        }
        if values.is_empty() {
            return Err(HelixError::ml("bucketizer: empty input"));
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(HelixError::ml("bucketizer: no finite values"));
        }
        sorted.sort_by(f64::total_cmp);
        let mut boundaries = Vec::with_capacity(self.bins - 1);
        for b in 1..self.bins {
            let q = b as f64 / self.bins as f64;
            let pos = (q * (sorted.len() - 1) as f64).round() as usize;
            boundaries.push(sorted[pos]);
        }
        boundaries.dedup();
        Ok(BucketizerModel { boundaries })
    }

    /// Bucket index of a value.
    pub fn transform(model: &BucketizerModel, value: f64) -> usize {
        model.bucket(value)
    }
}

/// Categorical indexer learned from observed values.
#[derive(Clone, Copy, Debug, Default)]
pub struct StringIndexer;

impl StringIndexer {
    /// Learn a vocabulary: values indexed in first-seen order (stable given
    /// the deterministic scan order of our collections).
    pub fn fit<'a>(values: impl Iterator<Item = &'a str>) -> IndexerModel {
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut next = 0u32;
        for v in values {
            vocab.entry(v.to_string()).or_insert_with(|| {
                let i = next;
                next += 1;
                i
            });
        }
        IndexerModel { vocab }
    }

    /// Index of a value (`None` for unseen categories).
    pub fn transform(model: &IndexerModel, value: &str) -> Option<u32> {
        model.vocab.get(value).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_standardizes() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let model = StandardScaler::fit(&rows).unwrap();
        assert_eq!(model.means, vec![3.0, 20.0]);
        let mut row = vec![3.0, 20.0];
        StandardScaler::transform(&model, &mut row);
        assert!(row.iter().all(|x| x.abs() < 1e-9));
        let mut hi = vec![5.0, 30.0];
        StandardScaler::transform(&model, &mut hi);
        assert!((hi[0] - hi[1]).abs() < 1e-9, "equal z-scores for equal quantiles");
    }

    #[test]
    fn scaler_rejects_bad_input() {
        assert!(StandardScaler::fit(&[]).is_err());
        assert!(StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn scaler_constant_column_is_safe() {
        let rows = vec![vec![7.0], vec![7.0]];
        let model = StandardScaler::fit(&rows).unwrap();
        let mut row = vec![7.0];
        StandardScaler::transform(&model, &mut row);
        assert!(row[0].is_finite());
    }

    #[test]
    fn bucketizer_quantiles_balance_buckets() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let model = QuantileBucketizer { bins: 10 }.fit(&values).unwrap();
        assert_eq!(model.boundaries.len(), 9);
        // Roughly 100 values per bucket.
        let mut counts = [0usize; 10];
        for v in &values {
            counts[QuantileBucketizer::transform(&model, *v)] += 1;
        }
        for (b, c) in counts.iter().enumerate() {
            assert!((80..=120).contains(c), "bucket {b} has {c}");
        }
    }

    #[test]
    fn bucketizer_skewed_distribution() {
        // Heavy left skew: quantile boundaries adapt, equal-width would not.
        let mut values: Vec<f64> = vec![0.0; 900];
        values.extend((0..100).map(|i| 1000.0 + i as f64));
        let model = QuantileBucketizer { bins: 4 }.fit(&values).unwrap();
        assert!(model.boundaries.first().copied().unwrap_or(1.0) <= 1.0);
    }

    #[test]
    fn bucketizer_rejects_bad_input() {
        assert!(QuantileBucketizer { bins: 1 }.fit(&[1.0]).is_err());
        assert!(QuantileBucketizer { bins: 4 }.fit(&[]).is_err());
        assert!(QuantileBucketizer { bins: 4 }.fit(&[f64::NAN]).is_err());
    }

    #[test]
    fn indexer_first_seen_order() {
        let model = StringIndexer::fit(["b", "a", "b", "c"].into_iter());
        assert_eq!(StringIndexer::transform(&model, "b"), Some(0));
        assert_eq!(StringIndexer::transform(&model, "a"), Some(1));
        assert_eq!(StringIndexer::transform(&model, "c"), Some(2));
        assert_eq!(StringIndexer::transform(&model, "zzz"), None);
    }
}
