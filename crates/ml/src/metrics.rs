//! Evaluation metrics (the PPR side of the workloads).
//!
//! The Census example's `checkResults` reducer computes prediction accuracy
//! (paper Figure 3a, lines 17–20); the genomics workload needs a clustering
//! quality measure (we use normalized mutual information against planted
//! topics); the IE workload reports precision/recall/F1.

use std::collections::BTreeMap;

/// Fraction of `(truth, prediction)` pairs that agree after thresholding
/// predictions at 0.5 (binary) or rounding (multiclass ids).
pub fn accuracy(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs
        .iter()
        .filter(|(truth, pred)| {
            let p = if (0.0..=1.0).contains(pred) && truth.fract() == 0.0 && *truth <= 1.0 {
                if *pred >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            } else {
                pred.round()
            };
            (p - truth).abs() < 0.5
        })
        .count();
    correct as f64 / pairs.len() as f64
}

/// Binary confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tally thresholded binary outcomes.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Confusion {
        let mut c = Confusion::default();
        for (truth, pred) in pairs {
            let p = *pred >= 0.5;
            let t = *truth >= 0.5;
            match (t, p) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision (0 when no positives predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (0 when no positive truth).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Binary cross-entropy of probabilistic predictions.
pub fn log_loss(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = pairs
        .iter()
        .map(|(truth, pred)| {
            let p = pred.clamp(eps, 1.0 - eps);
            -(truth * p.ln() + (1.0 - truth) * (1.0 - p).ln())
        })
        .sum();
    total / pairs.len() as f64
}

/// Normalized mutual information between two labelings (clustering vs
/// planted truth); in `[0, 1]`, 1 = identical partitions.
pub fn normalized_mutual_information(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must align");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    // BTreeMaps, not HashMaps: the summations below run in iteration
    // order, and float addition is not associative — hash-random order
    // would make the result differ in the last ulp between runs, breaking
    // the engine's byte-identical determinism guarantee.
    let count = |xs: &[usize]| {
        let mut m: BTreeMap<usize, f64> = BTreeMap::new();
        for &x in xs {
            *m.entry(x).or_insert(0.0) += 1.0;
        }
        m
    };
    let ca = count(a);
    let cb = count(b);
    let mut joint: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0.0) += 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for (&(x, y), &nxy) in &joint {
        let pxy = nxy / nf;
        let px = ca[&x] / nf;
        let py = cb[&y] / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    let entropy = |m: &BTreeMap<usize, f64>| -> f64 {
        m.values()
            .map(|&c| {
                let p = c / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (entropy(&ca), entropy(&cb));
    if ha == 0.0 || hb == 0.0 {
        // A constant labeling carries no information; NMI is defined as 1
        // only when both are constant (identical partitions).
        return if ha == hb { 1.0 } else { 0.0 };
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_thresholds_binary_probs() {
        let pairs = [(1.0, 0.9), (0.0, 0.1), (1.0, 0.4), (0.0, 0.6)];
        assert!((accuracy(&pairs) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&[]), 0.0);
    }

    #[test]
    fn accuracy_rounds_multiclass_ids() {
        let pairs = [(3.0, 3.0), (2.0, 2.0), (4.0, 2.0)];
        assert!((accuracy(&pairs) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_and_f1() {
        let pairs = [(1.0, 0.9), (1.0, 0.2), (0.0, 0.8), (0.0, 0.3), (1.0, 0.7)];
        let c = Confusion::from_pairs(&pairs);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusions() {
        let none_predicted = Confusion::from_pairs(&[(1.0, 0.0), (1.0, 0.1)]);
        assert_eq!(none_predicted.precision(), 0.0);
        assert_eq!(none_predicted.f1(), 0.0);
        let no_positives = Confusion::from_pairs(&[(0.0, 0.0)]);
        assert_eq!(no_positives.recall(), 0.0);
    }

    #[test]
    fn log_loss_prefers_confident_correct() {
        let good = log_loss(&[(1.0, 0.99), (0.0, 0.01)]);
        let bad = log_loss(&[(1.0, 0.01), (0.0, 0.99)]);
        assert!(good < 0.05);
        assert!(bad > 3.0);
        // Extreme predictions must not produce infinities.
        assert!(log_loss(&[(1.0, 0.0)]).is_finite());
    }

    #[test]
    fn nmi_identical_and_independent() {
        let truth = [0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&truth, &truth) - 1.0).abs() < 1e-12);
        // Permuted cluster ids are still a perfect match.
        let permuted = [2, 2, 0, 0, 1, 1];
        assert!((normalized_mutual_information(&truth, &permuted) - 1.0).abs() < 1e-12);
        // A constant labeling carries no information.
        let constant = [0; 6];
        assert_eq!(normalized_mutual_information(&truth, &constant), 0.0);
    }

    #[test]
    fn nmi_partial_agreement_between_zero_and_one() {
        let truth = [0, 0, 0, 1, 1, 1];
        let noisy = [0, 0, 1, 1, 1, 0];
        let nmi = normalized_mutual_information(&truth, &noisy);
        assert!(nmi > 0.0 && nmi < 1.0, "nmi {nmi}");
    }
}
