//! Shared numeric kernels.

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// log(Σ exp(xᵢ)) without overflow.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// In-place softmax.
pub fn softmax_in_place(xs: &mut [f64]) {
    let lse = log_sum_exp(xs);
    for x in xs.iter_mut() {
        *x = (*x - lse).exp();
    }
}

/// Index of the maximum element (first on ties); `None` when empty.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, x) in xs.iter().enumerate().skip(1) {
        if *x > xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Cosine similarity between two equal-length vectors; 0 when either is 0.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Dot product of equal-length dense slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `a += b * scale` over equal-length dense slices.
#[inline]
pub fn axpy(a: &mut [f64], b: &[f64], scale: f64) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-10);
    }

    #[test]
    fn log_sum_exp_stability() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = [1.0, 2.0, 3.0];
        softmax_in_place(&mut xs);
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn argmax_ties_and_empty() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[-5.0]), Some(0));
    }

    #[test]
    fn cosine_bounds() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, &[10.0, 20.0], 0.5);
        assert_eq!(a, vec![6.0, 12.0]);
        assert_eq!(dot(&a, &[1.0, 1.0]), 18.0);
    }
}
