//! word2vec: skip-gram with negative sampling (SGNS).
//!
//! The Genomics workflow's dominant compute step: "compute embeddings using
//! an approach like word2vec" (paper Example 1, citation 46). This is a
//! compact, deterministic implementation of Mikolov-style SGNS:
//!
//! * vocabulary built with a minimum-count threshold;
//! * a unigram^0.75 table for negative sampling;
//! * linear learning-rate decay over epochs;
//! * input and output embedding matrices, input returned.

use helix_common::{HelixError, Result, SplitMix64};
use helix_data::EmbeddingModel;
use std::collections::HashMap;

/// SGNS trainer configuration.
#[derive(Clone, Debug)]
pub struct Word2Vec {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Minimum token frequency to enter the vocabulary.
    pub min_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2Vec {
    fn default() -> Self {
        Word2Vec {
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 3,
            learning_rate: 0.05,
            min_count: 2,
            seed: 42,
        }
    }
}

impl Word2Vec {
    /// Train embeddings over tokenized sentences.
    pub fn fit(&self, sentences: &[Vec<String>]) -> Result<EmbeddingModel> {
        if self.dim == 0 {
            return Err(HelixError::ml("word2vec: dim must be positive"));
        }
        // ---- Vocabulary ----
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for sentence in sentences {
            for token in sentence {
                *counts.entry(token.as_str()).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(&str, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= self.min_count).collect();
        // Deterministic vocab order: by count desc, then token.
        kept.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if kept.is_empty() {
            return Err(HelixError::ml("word2vec: empty vocabulary after min_count"));
        }
        let vocab: HashMap<String, u32> =
            kept.iter().enumerate().map(|(i, (t, _))| (t.to_string(), i as u32)).collect();
        let v = kept.len();

        // ---- Negative-sampling table (unigram^0.75) ----
        let table = build_unigram_table(&kept, 1 << 16);

        // ---- Init ----
        let mut rng = SplitMix64::new(self.seed);
        let d = self.dim;
        let mut input = vec![0.0f64; v * d];
        let bound = 0.5 / d as f64;
        for x in input.iter_mut() {
            *x = rng.range_f64(-bound, bound);
        }
        let mut output = vec![0.0f64; v * d];

        // Pre-index corpus.
        let indexed: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|t| vocab.get(t).copied()).collect())
            .collect();
        let total_tokens: usize = indexed.iter().map(Vec::len).sum();
        if total_tokens == 0 {
            return Err(HelixError::ml("word2vec: no in-vocabulary tokens"));
        }

        // ---- Training ----
        let mut gradient = vec![0.0f64; d];
        for epoch in 0..self.epochs {
            let lr = self.learning_rate * (1.0 - epoch as f64 / self.epochs.max(1) as f64).max(0.1);
            for sentence in &indexed {
                for (pos, &center) in sentence.iter().enumerate() {
                    let window = 1 + rng.index(self.window.max(1));
                    let lo = pos.saturating_sub(window);
                    let hi = (pos + window + 1).min(sentence.len());
                    for (ctx_pos, &ctx_word) in sentence.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = ctx_word as usize;
                        let c_row = center as usize * d;
                        gradient.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair + negatives.
                        for sample in 0..=self.negatives {
                            let (target, label) = if sample == 0 {
                                (context, 1.0)
                            } else {
                                (table[rng.index(table.len())] as usize, 0.0)
                            };
                            if sample > 0 && target == context {
                                continue;
                            }
                            let t_row = target * d;
                            let score: f64 =
                                (0..d).map(|k| input[c_row + k] * output[t_row + k]).sum();
                            let g = (crate::linalg::sigmoid(score) - label) * lr;
                            for k in 0..d {
                                gradient[k] += g * output[t_row + k];
                                output[t_row + k] -= g * input[c_row + k];
                            }
                        }
                        for k in 0..d {
                            input[c_row + k] -= gradient[k];
                        }
                    }
                }
            }
        }

        Ok(EmbeddingModel { vocab, vectors: input, dim: d as u32 })
    }

    /// Cosine similarity between two tokens (`None` if either is OOV).
    pub fn similarity(model: &EmbeddingModel, a: &str, b: &str) -> Option<f64> {
        Some(crate::linalg::cosine(model.embedding(a)?, model.embedding(b)?))
    }

    /// `n` most similar in-vocabulary tokens to `token`.
    pub fn most_similar(model: &EmbeddingModel, token: &str, n: usize) -> Vec<(String, f64)> {
        let Some(target) = model.embedding(token) else { return Vec::new() };
        let mut scored: Vec<(String, f64)> = model
            .vocab
            .keys()
            .filter(|t| t.as_str() != token)
            .filter_map(|t| Some((t.clone(), crate::linalg::cosine(target, model.embedding(t)?))))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(n);
        scored
    }
}

/// Build the negative-sampling table with probabilities ∝ count^0.75.
fn build_unigram_table(vocab: &[(&str, usize)], size: usize) -> Vec<u32> {
    let powered: Vec<f64> = vocab.iter().map(|(_, c)| (*c as f64).powf(0.75)).collect();
    let total: f64 = powered.iter().sum();
    let mut table = Vec::with_capacity(size);
    let mut cumulative = powered[0] / total;
    let mut word = 0usize;
    for i in 0..size {
        table.push(word as u32);
        if (i as f64 + 1.0) / size as f64 > cumulative && word + 1 < vocab.len() {
            word += 1;
            cumulative += powered[word] / total;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus with two planted topics: {cat, dog, pet} and {sun, moon, sky}
    /// never co-occur across topics.
    fn planted_corpus(repeats: usize) -> Vec<Vec<String>> {
        let animal = ["cat", "dog", "pet", "fur", "tail"];
        let celestial = ["sun", "moon", "sky", "star", "orbit"];
        let mut rng = SplitMix64::new(77);
        let mut corpus = Vec::new();
        for _ in 0..repeats {
            for topic in [&animal, &celestial] {
                let mut sentence: Vec<String> = Vec::with_capacity(8);
                for _ in 0..8 {
                    sentence.push(topic[rng.index(topic.len())].to_string());
                }
                corpus.push(sentence);
            }
        }
        corpus
    }

    #[test]
    fn planted_topics_cluster_in_embedding_space() {
        let corpus = planted_corpus(120);
        let model = Word2Vec { dim: 16, epochs: 4, ..Default::default() }.fit(&corpus).unwrap();
        let within = Word2Vec::similarity(&model, "cat", "dog").unwrap();
        let across = Word2Vec::similarity(&model, "cat", "moon").unwrap();
        assert!(within > across + 0.2, "within-topic {within} should exceed cross-topic {across}");
    }

    #[test]
    fn most_similar_prefers_same_topic() {
        let corpus = planted_corpus(120);
        let model = Word2Vec { dim: 16, epochs: 4, ..Default::default() }.fit(&corpus).unwrap();
        let neighbors = Word2Vec::most_similar(&model, "sun", 3);
        assert_eq!(neighbors.len(), 3);
        let celestial = ["moon", "sky", "star", "orbit"];
        let hits = neighbors.iter().filter(|(t, _)| celestial.contains(&t.as_str())).count();
        assert!(hits >= 2, "neighbors of 'sun' were {neighbors:?}");
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let corpus = vec![
            vec!["common".to_string(), "common".to_string(), "rare".to_string()],
            vec!["common".to_string(), "common".to_string()],
        ];
        let model = Word2Vec { min_count: 2, dim: 4, ..Default::default() }.fit(&corpus).unwrap();
        assert!(model.embedding("common").is_some());
        assert!(model.embedding("rare").is_none());
    }

    #[test]
    fn empty_vocab_is_an_error() {
        let corpus = vec![vec!["once".to_string()]];
        assert!(Word2Vec { min_count: 5, ..Default::default() }.fit(&corpus).is_err());
        assert!(Word2Vec { dim: 0, ..Default::default() }.fit(&corpus).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = planted_corpus(20);
        let cfg = Word2Vec { dim: 8, epochs: 2, ..Default::default() };
        let a = cfg.fit(&corpus).unwrap();
        let b = cfg.fit(&corpus).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unigram_table_biased_to_frequent() {
        let vocab = vec![("frequent", 1000usize), ("rare", 10usize)];
        let table = build_unigram_table(&vocab, 1000);
        let frequent_share = table.iter().filter(|&&w| w == 0).count() as f64 / table.len() as f64;
        assert!(frequent_share > 0.85, "share {frequent_share}");
        assert!(frequent_share < 1.0, "rare word still present");
    }

    #[test]
    fn oov_similarity_is_none() {
        let corpus = planted_corpus(5);
        let model = Word2Vec { dim: 4, epochs: 1, ..Default::default() }.fit(&corpus).unwrap();
        assert!(Word2Vec::similarity(&model, "cat", "nonexistent").is_none());
        assert!(Word2Vec::most_similar(&model, "nonexistent", 3).is_empty());
    }
}
