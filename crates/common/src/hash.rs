//! Stable, fast hashing for operator signatures and change tracking.
//!
//! HELIX decides whether an intermediate result can be reused by comparing
//! *signatures*: Merkle-chain hashes of an operator's declaration and the
//! signatures of its parents (paper §4.2, Definition 2/3). Those hashes must
//! be
//!
//! 1. **stable across process runs** (results are materialized to disk and
//!    looked up in later sessions), which rules out `std`'s randomly seeded
//!    `DefaultHasher`, and
//! 2. **fast**, because signatures are recomputed for the whole DAG on every
//!    iteration.
//!
//! We implement the FxHash mixing function (the rustc hasher — multiply by a
//! 64-bit constant derived from the golden ratio and rotate), widened to a
//! 128-bit [`Signature`] by running two lanes with independent seeds. The
//! 128-bit width makes accidental collisions between materialized artifacts
//! astronomically unlikely without pulling in a cryptographic dependency.

use std::hash::Hasher;

/// Multiplicative constant used by FxHash (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Second-lane seed (arbitrary odd constant, distinct from `SEED`).
const SEED2: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// A deterministic 64-bit streaming hasher (FxHash algorithm).
///
/// Implements [`std::hash::Hasher`], so it can be plugged into any
/// `Hash`-implementing type, but unlike `DefaultHasher` its output is stable
/// across runs and platforms with the same endianness of inputs (we always
/// feed it explicit little-endian bytes).
#[derive(Clone, Copy, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Create a hasher with the default lane seed.
    pub fn new() -> Self {
        StableHasher { state: 0 }
    }

    /// Create a hasher whose initial state is `seed`.
    pub fn with_seed(seed: u64) -> Self {
        StableHasher { state: seed }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so `[1]` and `[1, 0]` differ.
            self.mix(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hash a byte slice to a stable 64-bit value.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// Combine two 64-bit hashes order-dependently.
///
/// `combine(a, b) != combine(b, a)` in general, which is what Merkle
/// chaining over *ordered* parent lists requires.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    (a.rotate_left(5) ^ b).wrapping_mul(SEED)
}

/// A 128-bit content signature: the identity of an operator output.
///
/// Signatures name materialized artifacts on disk and drive equivalence
/// checks between iterations (paper Definitions 2–3). Two operator outputs
/// with equal signatures are treated as interchangeable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature(pub u128);

impl Signature {
    /// Signature of raw bytes (two independent FxHash lanes).
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut lo = StableHasher::with_seed(0);
        let mut hi = StableHasher::with_seed(SEED2);
        lo.write(bytes);
        hi.write(bytes);
        Signature(((hi.finish() as u128) << 64) | lo.finish() as u128)
    }

    /// Signature of a string.
    pub fn of_str(s: &str) -> Self {
        Self::of_bytes(s.as_bytes())
    }

    /// Chain this signature with another (order matters).
    ///
    /// Used to fold parent signatures into a node signature:
    /// `sig = decl_sig.chain(parent1).chain(parent2)…`.
    #[must_use]
    pub fn chain(self, next: Signature) -> Signature {
        let (alo, ahi) = (self.0 as u64, (self.0 >> 64) as u64);
        let (blo, bhi) = (next.0 as u64, (next.0 >> 64) as u64);
        let lo = combine(alo, blo);
        let hi = combine(combine(ahi, bhi), lo);
        Signature(((hi as u128) << 64) | lo as u128)
    }

    /// Chain a raw 64-bit word (e.g. a version counter or nonce).
    #[must_use]
    pub fn chain_u64(self, word: u64) -> Signature {
        let (alo, ahi) = (self.0 as u64, (self.0 >> 64) as u64);
        let lo = combine(alo, word);
        let hi = combine(ahi, word.rotate_left(32) ^ SEED2);
        Signature(((hi as u128) << 64) | lo as u128)
    }

    /// Chain a 64-bit word under a *domain tag*, so words from different
    /// provenance sources can never collide with each other (or with a
    /// plain [`chain_u64`](Self::chain_u64) word): a seed of 7 and a
    /// volatile nonce of 7 folded into the same signature yield different
    /// results as long as their tags differ.
    ///
    /// This is the mixing primitive for execution-environment provenance
    /// (seeds, data versions, byte-affecting config knobs) folded into
    /// the chain-signature scheme: `sig.chain_tagged("helix/seed", seed)`.
    #[must_use]
    pub fn chain_tagged(self, tag: &str, word: u64) -> Signature {
        self.chain(Signature::of_str(tag).chain_u64(word))
    }

    /// Compact hex rendering used for catalog file names (32 hex chars).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the [`to_hex`](Self::to_hex) rendering.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Signature)
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig:{:016x}", (self.0 >> 64) as u64 ^ self.0 as u64)
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_instances() {
        assert_eq!(hash_bytes(b"helix"), hash_bytes(b"helix"));
        assert_ne!(hash_bytes(b"helix"), hash_bytes(b"helix2"));
    }

    #[test]
    fn short_inputs_distinguished_by_length() {
        assert_ne!(hash_bytes(&[1]), hash_bytes(&[1, 0]));
        assert_ne!(hash_bytes(&[]), hash_bytes(&[0]));
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn signature_roundtrips_hex() {
        let s = Signature::of_str("census/rows");
        assert_eq!(Signature::from_hex(&s.to_hex()), Some(s));
        assert_eq!(Signature::from_hex("xyz"), None);
        assert_eq!(Signature::from_hex(""), None);
    }

    #[test]
    fn chain_depends_on_order_and_content() {
        let a = Signature::of_str("a");
        let b = Signature::of_str("b");
        let c = Signature::of_str("c");
        assert_ne!(a.chain(b), b.chain(a));
        assert_ne!(a.chain(b).chain(c), a.chain(c).chain(b));
        assert_eq!(a.chain(b), Signature::of_str("a").chain(Signature::of_str("b")));
    }

    #[test]
    fn chain_u64_changes_signature() {
        let a = Signature::of_str("op");
        assert_ne!(a.chain_u64(1), a.chain_u64(2));
        assert_ne!(a.chain_u64(0), a);
    }

    #[test]
    fn chain_tagged_separates_domains() {
        let a = Signature::of_str("op");
        assert_ne!(a.chain_tagged("seed", 7), a.chain_tagged("nonce", 7), "tags separate");
        assert_ne!(a.chain_tagged("seed", 7), a.chain_u64(7), "tagged != untagged");
        assert_ne!(a.chain_tagged("seed", 1), a.chain_tagged("seed", 2), "word still mixes");
        assert_eq!(a.chain_tagged("seed", 7), Signature::of_str("op").chain_tagged("seed", 7));
    }

    #[test]
    fn hasher_trait_integration() {
        use std::hash::{Hash, Hasher};
        let mut h1 = StableHasher::new();
        let mut h2 = StableHasher::new();
        ("hello", 42u64).hash(&mut h1);
        ("hello", 42u64).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
