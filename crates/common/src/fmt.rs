//! Human-readable rendering of bytes and durations for experiment reports.

use crate::timing::Nanos;

/// Render a byte count with a binary-prefix unit, e.g. `3.2 MiB`.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1} {}", UNITS[unit])
}

/// Render nanoseconds with an adaptive unit, e.g. `1.25 s`, `340 ms`.
pub fn human_nanos(nanos: Nanos) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Left-pad a string to `width` (for ASCII tables in the figure harness).
pub fn pad_left(s: &str, width: usize) -> String {
    if s.len() >= width {
        s.to_string()
    } else {
        format!("{}{}", " ".repeat(width - s.len()), s)
    }
}

/// Right-pad a string to `width`.
pub fn pad_right(s: &str, width: usize) -> String {
    if s.len() >= width {
        s.to_string()
    } else {
        format!("{}{}", s, " ".repeat(width - s.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_rendering() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 + 200 * 1024), "3.2 MiB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.0 GiB");
    }

    #[test]
    fn nanos_rendering() {
        assert_eq!(human_nanos(17), "17 ns");
        assert_eq!(human_nanos(1_500), "1.5 µs");
        assert_eq!(human_nanos(340_000_000), "340.0 ms");
        assert_eq!(human_nanos(1_250_000_000), "1.25 s");
    }

    #[test]
    fn padding() {
        assert_eq!(pad_left("ab", 4), "  ab");
        assert_eq!(pad_right("ab", 4), "ab  ");
        assert_eq!(pad_left("abcdef", 4), "abcdef");
    }
}
