//! Workspace-wide error type.
//!
//! All fallible public APIs in the HELIX reproduction return
//! [`Result<T>`](crate::Result) with this error. Variants are coarse by
//! design: the system's recovery strategy (abort the iteration, report to
//! the user) never branches on fine-grained error detail, so we favour a
//! small, stable surface with rich messages.

use std::fmt;

/// The unified error type for the HELIX workspace.
#[derive(Debug)]
pub enum HelixError {
    /// Underlying I/O failure (catalog reads/writes, data sources).
    Io(std::io::Error),
    /// Corrupt or incompatible bytes in the materialization store.
    Codec { detail: String },
    /// Malformed workflow graph (cycles, dangling references, …).
    Graph { detail: String },
    /// A named object (node, collection, catalog entry) does not exist.
    NotFound { what: &'static str, name: String },
    /// Workflow specification error detected at compile time.
    Spec { detail: String },
    /// Runtime execution failure inside an operator.
    Exec { operator: String, detail: String },
    /// An ML routine received invalid input (dimension mismatch, empty data).
    Ml { detail: String },
    /// Configuration / parameter validation failure.
    Config { detail: String },
}

impl fmt::Display for HelixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HelixError::Io(e) => write!(f, "io error: {e}"),
            HelixError::Codec { detail } => write!(f, "codec error: {detail}"),
            HelixError::Graph { detail } => write!(f, "graph error: {detail}"),
            HelixError::NotFound { what, name } => write!(f, "{what} not found: {name}"),
            HelixError::Spec { detail } => write!(f, "workflow spec error: {detail}"),
            HelixError::Exec { operator, detail } => {
                write!(f, "execution error in operator `{operator}`: {detail}")
            }
            HelixError::Ml { detail } => write!(f, "ml error: {detail}"),
            HelixError::Config { detail } => write!(f, "config error: {detail}"),
        }
    }
}

impl std::error::Error for HelixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HelixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HelixError {
    fn from(e: std::io::Error) -> Self {
        HelixError::Io(e)
    }
}

impl HelixError {
    /// Convenience constructor for codec failures.
    pub fn codec(detail: impl Into<String>) -> Self {
        HelixError::Codec { detail: detail.into() }
    }

    /// Convenience constructor for graph failures.
    pub fn graph(detail: impl Into<String>) -> Self {
        HelixError::Graph { detail: detail.into() }
    }

    /// Convenience constructor for spec failures.
    pub fn spec(detail: impl Into<String>) -> Self {
        HelixError::Spec { detail: detail.into() }
    }

    /// Convenience constructor for operator execution failures.
    pub fn exec(operator: impl Into<String>, detail: impl Into<String>) -> Self {
        HelixError::Exec { operator: operator.into(), detail: detail.into() }
    }

    /// Convenience constructor for ML failures.
    pub fn ml(detail: impl Into<String>) -> Self {
        HelixError::Ml { detail: detail.into() }
    }

    /// Convenience constructor for config failures.
    pub fn config(detail: impl Into<String>) -> Self {
        HelixError::Config { detail: detail.into() }
    }

    /// Convenience constructor for lookup failures.
    pub fn not_found(what: &'static str, name: impl Into<String>) -> Self {
        HelixError::NotFound { what, name: name.into() }
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, HelixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = HelixError::exec("tokenizer", "empty input");
        assert_eq!(e.to_string(), "execution error in operator `tokenizer`: empty input");
        let e = HelixError::not_found("node", "rows");
        assert_eq!(e.to_string(), "node not found: rows");
    }

    #[test]
    fn io_source_preserved() {
        let io = std::io::Error::other("disk on fire");
        let e: HelixError = io.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("disk on fire"));
    }
}
