//! CRC-32 (IEEE 802.3 polynomial, reflected) for storage-frame integrity.
//!
//! The materialization catalog (`helix-storage`) frames every artifact with
//! a CRC so that torn writes or bit rot are detected at load time rather
//! than silently corrupting a reuse decision. Table-driven, one byte at a
//! time — the catalog is bandwidth-throttled anyway (see
//! `helix_storage::disk`), so CRC speed is never the bottleneck.

/// Reflected polynomial for CRC-32 (IEEE).
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a new checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and return the checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world, this is helix".to_vec();
        let original = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(crc32(&data), original);
    }
}
