//! Bounded append-only logs with oldest-first eviction.
//!
//! Several subsystems keep a short rolling history of recent events —
//! per-session seeds in `helix-serve`, eviction records in
//! `helix-storage`, span events in `helix-obs`. They all want the same
//! thing: a fixed capacity, pushes that never fail, the *newest* entries
//! retained, and an explicit count of how many entries were discarded so
//! truncation is never silent. [`RingLog`] is that type, and
//! [`BOUNDED_LOG_CAP`] is the workspace-wide default capacity that the
//! previously independent `SESSION_SEED_HISTORY` / `EVICTION_LOG_CAP`
//! constants unify behind.

use std::collections::VecDeque;

/// Default capacity for bounded in-process history logs.
///
/// Chosen once here instead of per-subsystem: large enough that recent
/// history is useful for debugging and audit assertions, small enough
/// that a per-tenant or per-catalog log is never a memory concern.
pub const BOUNDED_LOG_CAP: usize = 64;

/// A fixed-capacity log that drops the *oldest* entry on overflow.
///
/// Unlike a plain `VecDeque` with manual `pop_front`, `RingLog` counts
/// every dropped entry ([`RingLog::dropped`]) so readers can tell a
/// complete history from a truncated one.
#[derive(Debug, Clone)]
pub struct RingLog<T> {
    buf: VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T> RingLog<T> {
    /// Create a log holding at most `cap` entries. A zero capacity is
    /// clamped to 1 so `push` always retains the newest entry.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingLog { buf: VecDeque::with_capacity(cap), cap, dropped: 0 }
    }

    /// Create a log with the workspace default capacity.
    pub fn with_default_cap() -> Self {
        Self::new(BOUNDED_LOG_CAP)
    }

    /// Append `value`, evicting the oldest entry (and counting it as
    /// dropped) if the log is full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of entries evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate retained entries oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Most recently pushed entry, if any.
    pub fn last(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Discard all retained entries (the drop counter is preserved —
    /// it tracks capacity evictions, not explicit clears).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Drain all retained entries oldest → newest, leaving the log empty.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.buf.drain(..)
    }

    /// Copy the retained entries into a `Vec`, oldest → newest.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.buf.iter().cloned().collect()
    }
}

impl<T> Default for RingLog<T> {
    fn default() -> Self {
        Self::with_default_cap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_newest_and_counts_drops() {
        let mut log = RingLog::new(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.to_vec(), vec![2, 3, 4]);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.len(), 3);
        assert_eq!(log.last(), Some(&4));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut log = RingLog::new(0);
        log.push(1);
        log.push(2);
        assert_eq!(log.to_vec(), vec![2]);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut log: RingLog<u8> = RingLog::with_default_cap();
        assert_eq!(log.capacity(), BOUNDED_LOG_CAP);
        for i in 0..BOUNDED_LOG_CAP as u8 {
            log.push(i);
        }
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.len(), BOUNDED_LOG_CAP);
    }

    #[test]
    fn clear_preserves_drop_counter() {
        let mut log = RingLog::new(1);
        log.push(1);
        log.push(2);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }
}
