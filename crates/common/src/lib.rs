//! # helix-common
//!
//! Foundation utilities shared by every crate in the HELIX reproduction:
//!
//! * [`error`] — the workspace-wide error type and `Result` alias.
//! * [`hash`] — a fast, *stable* (cross-run deterministic) 64/128-bit hasher
//!   used for operator signatures and change tracking.
//! * [`crc32`] — table-driven CRC-32 (IEEE) used by the storage codec.
//! * [`rng`] — a tiny deterministic PRNG (SplitMix64) for seeded workload
//!   generation independent of external crates.
//! * [`fmt`] — human-readable byte / duration formatting for reports.
//! * [`ring`] — a bounded history log with oldest-first eviction and an
//!   explicit drop counter, plus the workspace-wide `BOUNDED_LOG_CAP`.
//! * [`timing`] — a monotonic stopwatch and nanosecond conventions.
//!
//! HELIX's optimizers reason about *nanosecond integer costs* everywhere
//! (see `helix-flow::oep`); this crate fixes those conventions.

pub mod crc32;
pub mod error;
pub mod fmt;
pub mod hash;
pub mod ring;
pub mod rng;
pub mod timing;

pub use error::{HelixError, Result};
pub use hash::{Signature, StableHasher};
pub use ring::{RingLog, BOUNDED_LOG_CAP};
pub use rng::SplitMix64;
pub use timing::{Nanos, Stopwatch};
