//! Deterministic pseudo-randomness for workload generation.
//!
//! Every stochastic component of the reproduction — synthetic data
//! generators, SGD shuffles, k-means initialization, the iteration
//! simulator — draws from an explicitly seeded [`SplitMix64`]. Keeping the
//! generator in-tree (rather than depending on `rand`'s default generators)
//! guarantees bit-identical workloads across runs and platforms, which the
//! experiment harness relies on when comparing HELIX variants: all variants
//! must see *exactly* the same sequence of workflow modifications.
//!
//! SplitMix64 is the standard seeding/mixing generator from Steele et al.;
//! it passes BigCrush when used as a stream and is more than adequate for
//! workload synthesis (we make no cryptographic claims).

/// SplitMix64 PRNG.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be positive");
        // Widening-multiply rejection-free mapping (Lemire). Slight bias of
        // < 2^-64 is irrelevant for workload synthesis.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index into a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; simple and fine
    /// for generator workloads).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                let v = self.next_f64();
                return (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick an index according to non-negative `weights`. Returns `None` if
    /// all weights are zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Derive an independent child generator (for per-operator streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 (from the canonical C impl).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = SplitMix64::new(9);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn weighted_choice_matches_weights() {
        let mut r = SplitMix64::new(11);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4_000 {
            counts[r.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
        assert_eq!(r.choose_weighted(&[]), None);
        assert_eq!(r.choose_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut parent = SplitMix64::new(1);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
