//! Time conventions and measurement helpers.
//!
//! The OEP/OMP optimizers (paper §5) compare *compute time* `c_i` against
//! *load time* `l_i`. We represent all such costs as integer **nanoseconds**
//! ([`Nanos`]) so the max-flow reduction works on exact integers (see
//! `helix-flow::oep` for why floats would be hazardous there).

use std::time::Instant;

/// Integer nanoseconds — the cost unit used throughout the optimizers.
pub type Nanos = u64;

/// Sentinel for "no equivalent materialization exists" (paper: `l_i = ∞`).
///
/// Chosen far below `u64::MAX` so sums of a few sentinels never overflow
/// when accumulated into `i64`/`i128` profit arithmetic.
pub const INFINITE_LOAD: Nanos = u64::MAX / 1024;

/// Convert a `std::time::Duration` to [`Nanos`], saturating.
pub fn duration_to_nanos(d: std::time::Duration) -> Nanos {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A simple monotonic stopwatch.
///
/// ```
/// use helix_common::Stopwatch;
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed_nanos();
/// assert!(elapsed < 1_000_000_000, "reading a stopwatch is fast");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Nanoseconds since `start()`.
    pub fn elapsed_nanos(&self) -> Nanos {
        duration_to_nanos(self.started.elapsed())
    }

    /// Seconds since `start()` as `f64` (for reports only — never feed this
    /// to the optimizers).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Time a closure, returning its result and the elapsed nanoseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Nanos) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (value, nanos) = timed(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(value, (0..10_000u64).map(|i| i.wrapping_mul(i)).fold(0u64, u64::wrapping_add));
        assert!(nanos > 0);
    }

    #[test]
    fn infinite_load_headroom() {
        // Summing thousands of sentinels must not overflow i128 profit math.
        let total = (INFINITE_LOAD as u128) * 10_000;
        assert!(total < i128::MAX as u128);
    }

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }
}
