//! # helix-data
//!
//! The data model of the HELIX reproduction — the types that flow along
//! edges of the Workflow DAG (paper §3.2):
//!
//! * [`record`] — raw records ([`Record`], [`RecordBatch`]) with a shared
//!   [`Schema`]; the output of data sources and Scanners.
//! * [`feature`] — sparse/dense [`FeatureVector`]s and the intermediate
//!   [`FeatureBundle`] representation produced by Extractors.
//! * [`unit`](mod@unit) — [`SemanticUnit`]s: the paper's device for compartmentalizing
//!   the logical and physical representation of features (§3.2.1).
//! * [`example`] — [`Example`]s and the [`FeatureSpace`] that globally
//!   orders features and records per-feature *provenance* (which operator
//!   produced each feature — the bookkeeping behind data-driven pruning,
//!   paper §5.4).
//! * [`model`] — plain-data model parameter containers (weights, centroids,
//!   embeddings, learned DPR transforms). The *algorithms* that fit and
//!   apply them live in `helix-ml`; keeping the containers here lets the
//!   storage codec serialize models without depending on the math crate.
//! * [`value`] — [`Value`], the sum type carried by DAG nodes: a data
//!   collection, a model, or a scalar.
//!
//! Every type reports an approximate resident size via [`ByteSized`], which
//! feeds both the materialization optimizer (projected load times, paper
//! §5.3) and the memory tracker (paper Fig. 10).

pub mod example;
pub mod feature;
pub mod model;
pub mod record;
pub mod unit;
pub mod value;

pub use example::{Example, ExampleBatch, FeatureSpace};
pub use feature::{FeatureBundle, FeatureVector};
pub use model::{
    BucketizerModel, CentroidModel, EmbeddingModel, IndexerModel, LinearModel, Model,
    NaiveBayesModel, ScalerModel, TransformModel,
};
pub use record::{FieldValue, Record, RecordBatch, Schema, Split};
pub use unit::{SemanticUnit, UnitBatch};
pub use value::{ByteSized, DataCollection, Scalar, Value, ValueKind};
