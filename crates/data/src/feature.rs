//! Feature vectors and the pre-vectorization feature bundle.
//!
//! The paper keeps sparse categorical features "in the raw key-value format
//! until the final FV assembly" (§3.2.1). [`FeatureBundle`] is that raw
//! format; [`FeatureVector`] is the physical representation assembled by the
//! synthesizer, with both sparse and dense layouts.

use crate::value::ByteSized;

/// A numeric feature vector, sparse or dense.
///
/// Sparse vectors keep their indices strictly increasing; constructors
/// enforce this so dot products can merge-scan.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureVector {
    /// Contiguous `f64`s; dimension is the length.
    Dense(Vec<f64>),
    /// Sorted `(index, value)` pairs within a fixed dimension.
    Sparse {
        /// Total dimensionality of the space.
        dim: u32,
        /// Strictly increasing feature indices.
        indices: Vec<u32>,
        /// Parallel values.
        values: Vec<f64>,
    },
}

impl FeatureVector {
    /// All-zeros dense vector.
    pub fn zeros(dim: usize) -> FeatureVector {
        FeatureVector::Dense(vec![0.0; dim])
    }

    /// Build a sparse vector from possibly unsorted pairs; duplicate
    /// indices are summed.
    pub fn sparse_from_pairs(dim: u32, mut pairs: Vec<(u32, f64)>) -> FeatureVector {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            debug_assert!(i < dim, "index {i} out of dim {dim}");
            if indices.last() == Some(&i) {
                *values.last_mut().unwrap() += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        FeatureVector::Sparse { dim, indices, values }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            FeatureVector::Dense(v) => v.len(),
            FeatureVector::Sparse { dim, .. } => *dim as usize,
        }
    }

    /// Number of stored (possibly nonzero) entries.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureVector::Dense(v) => v.len(),
            FeatureVector::Sparse { indices, .. } => indices.len(),
        }
    }

    /// Value at `i` (zero for absent sparse entries).
    pub fn get(&self, i: usize) -> f64 {
        match self {
            FeatureVector::Dense(v) => v.get(i).copied().unwrap_or(0.0),
            FeatureVector::Sparse { indices, values, .. } => {
                indices.binary_search(&(i as u32)).map(|pos| values[pos]).unwrap_or(0.0)
            }
        }
    }

    /// Dot product against a dense weight slice (the hot path of linear
    /// models — sparse examples dotted with dense weights).
    pub fn dot_dense(&self, weights: &[f64]) -> f64 {
        match self {
            FeatureVector::Dense(v) => {
                let n = v.len().min(weights.len());
                let mut acc = 0.0;
                for k in 0..n {
                    acc += v[k] * weights[k];
                }
                acc
            }
            FeatureVector::Sparse { indices, values, .. } => {
                let mut acc = 0.0;
                for (i, v) in indices.iter().zip(values) {
                    if let Some(w) = weights.get(*i as usize) {
                        acc += v * w;
                    }
                }
                acc
            }
        }
    }

    /// `weights += self * scale` (SGD update path).
    pub fn add_scaled_to(&self, weights: &mut [f64], scale: f64) {
        match self {
            FeatureVector::Dense(v) => {
                for (w, x) in weights.iter_mut().zip(v) {
                    *w += x * scale;
                }
            }
            FeatureVector::Sparse { indices, values, .. } => {
                for (i, v) in indices.iter().zip(values) {
                    if let Some(w) = weights.get_mut(*i as usize) {
                        *w += v * scale;
                    }
                }
            }
        }
    }

    /// Squared Euclidean distance to a dense point (k-means hot path).
    pub fn sq_dist_dense(&self, point: &[f64]) -> f64 {
        match self {
            FeatureVector::Dense(v) => {
                let mut acc = 0.0;
                for k in 0..v.len().min(point.len()) {
                    let d = v[k] - point[k];
                    acc += d * d;
                }
                acc
            }
            FeatureVector::Sparse { indices, values, dim } => {
                // ||x - p||^2 = ||p||^2 - 2 x·p + ||x||^2 over stored terms,
                // adjusting for overlapping coordinates exactly.
                let mut acc: f64 = point.iter().take(*dim as usize).map(|p| p * p).sum();
                for (i, v) in indices.iter().zip(values) {
                    let p = point.get(*i as usize).copied().unwrap_or(0.0);
                    acc += -p * p + (v - p) * (v - p);
                }
                acc
            }
        }
    }

    /// L2 norm.
    pub fn l2_norm(&self) -> f64 {
        let sq: f64 = match self {
            FeatureVector::Dense(v) => v.iter().map(|x| x * x).sum(),
            FeatureVector::Sparse { values, .. } => values.iter().map(|x| x * x).sum(),
        };
        sq.sqrt()
    }

    /// Materialize as a dense `Vec<f64>`.
    pub fn to_dense(&self) -> Vec<f64> {
        match self {
            FeatureVector::Dense(v) => v.clone(),
            FeatureVector::Sparse { dim, indices, values } => {
                let mut out = vec![0.0; *dim as usize];
                for (i, v) in indices.iter().zip(values) {
                    out[*i as usize] = *v;
                }
                out
            }
        }
    }

    /// Concatenate vectors into one (paper: feature concatenation ∈ F).
    /// The result is dense if every part is dense, sparse otherwise —
    /// mirroring HELIX's "dense when mixing" policy inverted conservatively
    /// for memory (sparse wins ties).
    pub fn concat(parts: &[&FeatureVector]) -> FeatureVector {
        let total: usize = parts.iter().map(|p| p.dim()).sum();
        let all_dense = parts.iter().all(|p| matches!(p, FeatureVector::Dense(_)));
        if all_dense {
            let mut out = Vec::with_capacity(total);
            for p in parts {
                if let FeatureVector::Dense(v) = p {
                    out.extend_from_slice(v);
                }
            }
            FeatureVector::Dense(out)
        } else {
            let mut indices = Vec::new();
            let mut values = Vec::new();
            let mut offset = 0u32;
            for p in parts {
                match p {
                    FeatureVector::Dense(v) => {
                        for (i, x) in v.iter().enumerate() {
                            if *x != 0.0 {
                                indices.push(offset + i as u32);
                                values.push(*x);
                            }
                        }
                        offset += v.len() as u32;
                    }
                    FeatureVector::Sparse { dim, indices: is, values: vs } => {
                        for (i, x) in is.iter().zip(vs) {
                            indices.push(offset + i);
                            values.push(*x);
                        }
                        offset += dim;
                    }
                }
            }
            FeatureVector::Sparse { dim: total as u32, indices, values }
        }
    }
}

impl ByteSized for FeatureVector {
    fn byte_size(&self) -> u64 {
        let base = std::mem::size_of::<FeatureVector>() as u64;
        match self {
            FeatureVector::Dense(v) => base + 8 * v.capacity() as u64,
            FeatureVector::Sparse { indices, values, .. } => {
                base + 4 * indices.capacity() as u64 + 8 * values.capacity() as u64
            }
        }
    }
}

/// Pre-vectorization features emitted by Extractors (paper §3.2.1).
///
/// Raw features stay in human-readable form until example assembly, which
/// is what lets HELIX (a) batch-learn all data-dependent transforms in one
/// pass and (b) track feature→operator provenance.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureBundle {
    /// Categorical features as `(field, value)` pairs; each distinct pair
    /// becomes one indicator dimension in the assembled space.
    Categorical(Vec<(String, String)>),
    /// Named numeric features; each name becomes one dimension.
    Numeric(Vec<(String, f64)>),
    /// An already-vectorized block (dense DPR outputs, embeddings).
    Vector(FeatureVector),
    /// Token sequence (tokenizer output consumed by text learners).
    Tokens(Vec<String>),
    /// No features (e.g. filtered-out element placeholder).
    Empty,
}

impl ByteSized for FeatureBundle {
    fn byte_size(&self) -> u64 {
        let base = std::mem::size_of::<FeatureBundle>() as u64;
        match self {
            FeatureBundle::Categorical(kv) => {
                base + kv
                    .iter()
                    .map(|(k, v)| k.capacity() as u64 + v.capacity() as u64 + 48)
                    .sum::<u64>()
            }
            FeatureBundle::Numeric(kv) => {
                base + kv.iter().map(|(k, _)| k.capacity() as u64 + 32).sum::<u64>()
            }
            FeatureBundle::Vector(v) => base + v.byte_size(),
            FeatureBundle::Tokens(ts) => {
                base + ts.iter().map(|t| t.capacity() as u64 + 24).sum::<u64>()
            }
            FeatureBundle::Empty => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_construction_sorts_and_merges() {
        let v = FeatureVector::sparse_from_pairs(10, vec![(5, 1.0), (2, 2.0), (5, 3.0)]);
        match &v {
            FeatureVector::Sparse { indices, values, dim } => {
                assert_eq!(*dim, 10);
                assert_eq!(indices, &vec![2, 5]);
                assert_eq!(values, &vec![2.0, 4.0]);
            }
            _ => panic!("expected sparse"),
        }
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_products_agree_between_layouts() {
        let dense = FeatureVector::Dense(vec![0.0, 2.0, 0.0, 1.5]);
        let sparse = FeatureVector::sparse_from_pairs(4, vec![(1, 2.0), (3, 1.5)]);
        let w = [1.0, 0.5, 3.0, 2.0];
        assert_eq!(dense.dot_dense(&w), sparse.dot_dense(&w));
        assert!((dense.dot_dense(&w) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_matches_manual() {
        let sparse = FeatureVector::sparse_from_pairs(3, vec![(0, 1.0), (2, 2.0)]);
        let mut w = [10.0, 10.0, 10.0];
        sparse.add_scaled_to(&mut w, 0.5);
        assert_eq!(w, [10.5, 10.0, 11.0]);
        let dense = FeatureVector::Dense(vec![1.0, 1.0, 1.0]);
        dense.add_scaled_to(&mut w, -1.0);
        assert_eq!(w, [9.5, 9.0, 10.0]);
    }

    #[test]
    fn sq_dist_agrees_between_layouts() {
        let dense = FeatureVector::Dense(vec![1.0, 0.0, 3.0]);
        let sparse = FeatureVector::sparse_from_pairs(3, vec![(0, 1.0), (2, 3.0)]);
        let p = [0.5, 1.0, -1.0];
        assert!((dense.sq_dist_dense(&p) - sparse.sq_dist_dense(&p)).abs() < 1e-12);
        assert!((dense.sq_dist_dense(&p) - (0.25 + 1.0 + 16.0)).abs() < 1e-12);
    }

    #[test]
    fn l2_norm_and_to_dense() {
        let sparse = FeatureVector::sparse_from_pairs(4, vec![(1, 3.0), (3, 4.0)]);
        assert!((sparse.l2_norm() - 5.0).abs() < 1e-12);
        assert_eq!(sparse.to_dense(), vec![0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn concat_dense_and_mixed() {
        let a = FeatureVector::Dense(vec![1.0, 2.0]);
        let b = FeatureVector::Dense(vec![3.0]);
        assert_eq!(FeatureVector::concat(&[&a, &b]), FeatureVector::Dense(vec![1.0, 2.0, 3.0]));

        let s = FeatureVector::sparse_from_pairs(2, vec![(1, 9.0)]);
        let mixed = FeatureVector::concat(&[&a, &s]);
        assert_eq!(mixed.dim(), 4);
        assert_eq!(mixed.get(0), 1.0);
        assert_eq!(mixed.get(3), 9.0);
        assert!(matches!(mixed, FeatureVector::Sparse { .. }));
    }

    #[test]
    fn concat_empty_and_zero_handling() {
        let z = FeatureVector::zeros(2);
        let s = FeatureVector::sparse_from_pairs(2, vec![]);
        let c = FeatureVector::concat(&[&z, &s]);
        assert_eq!(c.dim(), 4);
        assert_eq!(c.nnz(), 0); // dense zeros dropped in sparse concat
    }

    #[test]
    fn byte_sizes_reasonable() {
        let dense = FeatureVector::Dense(vec![0.0; 100]);
        assert!(dense.byte_size() >= 800);
        let bundle = FeatureBundle::Tokens(vec!["hello".into(); 10]);
        assert!(bundle.byte_size() > 10 * 5);
    }
}
