//! [`Value`]: the sum type carried by Workflow DAG nodes.
//!
//! Every operator output in HELIX is one of: a data collection, an ML
//! model, or a scalar (paper §3.2.2: "A HELIX operator takes one or more
//! DCs and outputs DCs, ML models, or scalars"). [`ByteSized`] provides the
//! approximate resident size used by the materialization optimizer and the
//! memory tracker.

use crate::example::ExampleBatch;
use crate::model::Model;
use crate::record::RecordBatch;
use crate::unit::UnitBatch;

/// Types that can report their approximate resident heap size.
///
/// Estimates are deliberately simple (capacity-based); OEP/OMP only need
/// sizes to be *proportionally* right so that projected load times order
/// correctly.
pub trait ByteSized {
    /// Approximate resident size in bytes.
    fn byte_size(&self) -> u64;
}

/// A non-dataset result (paper: Reducer outputs, §3.2.2).
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// A single number (accuracy, inertia, …).
    F64(f64),
    /// An integer count.
    I64(i64),
    /// Free-form text (e.g. a rendered report).
    Text(String),
    /// Named metric bundle.
    Metrics(Vec<(String, f64)>),
}

impl Scalar {
    /// Numeric view of `F64`/`I64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::F64(f) => Some(*f),
            Scalar::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Look up a named metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        match self {
            Scalar::Metrics(m) => m.iter().find(|(n, _)| n == name).map(|(_, v)| *v),
            _ => None,
        }
    }
}

impl ByteSized for Scalar {
    fn byte_size(&self) -> u64 {
        let base = std::mem::size_of::<Scalar>() as u64;
        match self {
            Scalar::Text(s) => base + s.capacity() as u64,
            Scalar::Metrics(m) => {
                base + m.iter().map(|(n, _)| n.capacity() as u64 + 32).sum::<u64>()
            }
            _ => base,
        }
    }
}

/// A collection of homogeneous elements (paper §3.2.1: "A DC can only
/// contain a single type of element").
#[derive(Clone, Debug)]
pub enum DataCollection {
    /// Raw or parsed records (`DC` of records).
    Records(RecordBatch),
    /// Semantic units (`DC_SU`).
    Units(UnitBatch),
    /// Examples (`DC_E`).
    Examples(ExampleBatch),
}

impl DataCollection {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            DataCollection::Records(b) => b.len(),
            DataCollection::Units(b) => b.len(),
            DataCollection::Examples(b) => b.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element-type name for error messages.
    pub fn element_kind(&self) -> &'static str {
        match self {
            DataCollection::Records(_) => "records",
            DataCollection::Units(_) => "semantic-units",
            DataCollection::Examples(_) => "examples",
        }
    }

    /// Borrow as records, or error.
    pub fn as_records(&self) -> helix_common::Result<&RecordBatch> {
        match self {
            DataCollection::Records(b) => Ok(b),
            other => Err(helix_common::HelixError::exec(
                "type-check",
                format!("expected records, found {}", other.element_kind()),
            )),
        }
    }

    /// Borrow as semantic units, or error.
    pub fn as_units(&self) -> helix_common::Result<&UnitBatch> {
        match self {
            DataCollection::Units(b) => Ok(b),
            other => Err(helix_common::HelixError::exec(
                "type-check",
                format!("expected semantic-units, found {}", other.element_kind()),
            )),
        }
    }

    /// Borrow as examples, or error.
    pub fn as_examples(&self) -> helix_common::Result<&ExampleBatch> {
        match self {
            DataCollection::Examples(b) => Ok(b),
            other => Err(helix_common::HelixError::exec(
                "type-check",
                format!("expected examples, found {}", other.element_kind()),
            )),
        }
    }
}

impl ByteSized for DataCollection {
    fn byte_size(&self) -> u64 {
        match self {
            DataCollection::Records(b) => b.byte_size(),
            DataCollection::Units(b) => b.byte_size(),
            DataCollection::Examples(b) => b.byte_size(),
        }
    }
}

/// Discriminant of a [`Value`] (used by the codec and for diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// Record collection.
    Records,
    /// Semantic-unit collection.
    Units,
    /// Example collection.
    Examples,
    /// ML model.
    Model,
    /// Scalar.
    Scalar,
}

impl ValueKind {
    /// Stable byte tag for the storage codec.
    pub fn to_byte(self) -> u8 {
        match self {
            ValueKind::Records => 0,
            ValueKind::Units => 1,
            ValueKind::Examples => 2,
            ValueKind::Model => 3,
            ValueKind::Scalar => 4,
        }
    }

    /// Inverse of [`to_byte`](Self::to_byte).
    pub fn from_byte(b: u8) -> Option<ValueKind> {
        Some(match b {
            0 => ValueKind::Records,
            1 => ValueKind::Units,
            2 => ValueKind::Examples,
            3 => ValueKind::Model,
            4 => ValueKind::Scalar,
            _ => return None,
        })
    }
}

/// The output of a Workflow DAG node.
#[derive(Clone, Debug)]
pub enum Value {
    /// A data collection.
    Collection(DataCollection),
    /// A learned model.
    Model(Model),
    /// A scalar result.
    Scalar(Scalar),
}

impl Value {
    /// Discriminant.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Collection(DataCollection::Records(_)) => ValueKind::Records,
            Value::Collection(DataCollection::Units(_)) => ValueKind::Units,
            Value::Collection(DataCollection::Examples(_)) => ValueKind::Examples,
            Value::Model(_) => ValueKind::Model,
            Value::Scalar(_) => ValueKind::Scalar,
        }
    }

    /// Borrow as a collection, or error.
    pub fn as_collection(&self) -> helix_common::Result<&DataCollection> {
        match self {
            Value::Collection(c) => Ok(c),
            other => Err(helix_common::HelixError::exec(
                "type-check",
                format!("expected a data collection, found {:?}", other.kind()),
            )),
        }
    }

    /// Borrow as a model, or error.
    pub fn as_model(&self) -> helix_common::Result<&Model> {
        match self {
            Value::Model(m) => Ok(m),
            other => Err(helix_common::HelixError::exec(
                "type-check",
                format!("expected a model, found {:?}", other.kind()),
            )),
        }
    }

    /// Borrow as a scalar, or error.
    pub fn as_scalar(&self) -> helix_common::Result<&Scalar> {
        match self {
            Value::Scalar(s) => Ok(s),
            other => Err(helix_common::HelixError::exec(
                "type-check",
                format!("expected a scalar, found {:?}", other.kind()),
            )),
        }
    }

    /// Convenience: wrap a record batch.
    pub fn records(batch: RecordBatch) -> Value {
        Value::Collection(DataCollection::Records(batch))
    }

    /// Convenience: wrap a unit batch.
    pub fn units(batch: UnitBatch) -> Value {
        Value::Collection(DataCollection::Units(batch))
    }

    /// Convenience: wrap an example batch.
    pub fn examples(batch: ExampleBatch) -> Value {
        Value::Collection(DataCollection::Examples(batch))
    }
}

impl ByteSized for Value {
    fn byte_size(&self) -> u64 {
        match self {
            Value::Collection(c) => c.byte_size(),
            Value::Model(m) => m.byte_size(),
            Value::Scalar(s) => s.byte_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Example;
    use crate::feature::FeatureVector;
    use crate::record::{Record, RecordBatch, Schema, Split};

    #[test]
    fn scalar_views() {
        assert_eq!(Scalar::F64(0.9).as_f64(), Some(0.9));
        assert_eq!(Scalar::I64(4).as_f64(), Some(4.0));
        assert_eq!(Scalar::Text("x".into()).as_f64(), None);
        let m = Scalar::Metrics(vec![("acc".into(), 0.8), ("f1".into(), 0.7)]);
        assert_eq!(m.metric("f1"), Some(0.7));
        assert_eq!(m.metric("auc"), None);
    }

    #[test]
    fn value_kind_byte_roundtrip() {
        for kind in [
            ValueKind::Records,
            ValueKind::Units,
            ValueKind::Examples,
            ValueKind::Model,
            ValueKind::Scalar,
        ] {
            assert_eq!(ValueKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(ValueKind::from_byte(200), None);
    }

    #[test]
    fn typed_accessors_enforce_kinds() {
        let schema = Schema::new(["a"]);
        let records = Value::records(
            RecordBatch::new(schema, vec![Record::train(vec![crate::FieldValue::Int(1)])]).unwrap(),
        );
        assert!(records.as_collection().is_ok());
        assert!(records.as_model().is_err());
        assert!(records.as_scalar().is_err());
        assert!(records.as_collection().unwrap().as_records().is_ok());
        assert!(records.as_collection().unwrap().as_examples().is_err());

        let scalar = Value::Scalar(Scalar::F64(1.0));
        assert!(scalar.as_scalar().is_ok());
        assert!(scalar.as_collection().is_err());
    }

    #[test]
    fn collection_len_dispatch() {
        let batch = ExampleBatch::dense(vec![
            Example::new(FeatureVector::zeros(1), None, Split::Train),
            Example::new(FeatureVector::zeros(1), None, Split::Test),
        ]);
        let v = Value::examples(batch);
        assert_eq!(v.as_collection().unwrap().len(), 2);
        assert!(!v.as_collection().unwrap().is_empty());
        assert!(v.byte_size() > 0);
    }
}
