//! Examples and the globally ordered feature space (paper §3.2.1).
//!
//! An [`Example`] is the unit of learning: a single assembled feature
//! vector, an optional label, and a split tag. The [`FeatureSpace`] fixes
//! the global index of every feature across the dataset — the paper's
//! "order of SUs in the concatenation is determined globally across D" —
//! and additionally records *provenance*: which DAG operator produced each
//! feature. Provenance is the bookkeeping that enables data-driven pruning
//! by model weights (paper §5.4).

use crate::feature::FeatureVector;
use crate::record::Split;
use crate::value::ByteSized;
use helix_common::hash::Signature;
use std::collections::HashMap;
use std::sync::Arc;

/// A single learning example.
#[derive(Clone, Debug, PartialEq)]
pub struct Example {
    /// Assembled features in the batch's [`FeatureSpace`].
    pub features: FeatureVector,
    /// Supervised label, if any (`None` for unsupervised settings).
    pub label: Option<f64>,
    /// Train/test membership.
    pub split: Split,
    /// Model output attached by an inference pass (`None` until inference).
    pub prediction: Option<f64>,
    /// Optional identity of the underlying entity (e.g. the gene name an
    /// embedding example represents) for post-processing.
    pub tag: Option<String>,
}

impl Example {
    /// Construct a bare example.
    pub fn new(features: FeatureVector, label: Option<f64>, split: Split) -> Example {
        Example { features, label, split, prediction: None, tag: None }
    }

    /// Attach an entity tag.
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Example {
        self.tag = Some(tag.into());
        self
    }
}

impl ByteSized for Example {
    fn byte_size(&self) -> u64 {
        std::mem::size_of::<Example>() as u64
            + self.features.byte_size()
            + self.tag.as_ref().map_or(0, |t| t.capacity() as u64)
    }
}

/// The global feature index: name → dimension, plus per-dimension
/// provenance (the DAG node id of the producing operator).
#[derive(Clone, Debug, Default)]
pub struct FeatureSpace {
    names: Vec<String>,
    owners: Vec<u32>,
    by_name: HashMap<String, u32>,
}

impl FeatureSpace {
    /// Empty space.
    pub fn new() -> FeatureSpace {
        FeatureSpace::default()
    }

    /// Intern a feature name produced by operator `owner`, returning its
    /// stable dimension index.
    pub fn intern(&mut self, name: &str, owner: u32) -> u32 {
        if let Some(&i) = self.by_name.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.owners.push(owner);
        self.by_name.insert(name.to_string(), i);
        i
    }

    /// Look up a feature's dimension without interning.
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// Feature name of a dimension.
    pub fn name(&self, i: u32) -> Option<&str> {
        self.names.get(i as usize).map(String::as_str)
    }

    /// Producing operator (DAG node id) of a dimension.
    pub fn owner(&self, i: u32) -> Option<u32> {
        self.owners.get(i as usize).copied()
    }

    /// All dimensions owned by `owner` (provenance query for data-driven
    /// pruning).
    pub fn dims_of_owner(&self, owner: u32) -> Vec<u32> {
        self.owners.iter().enumerate().filter(|(_, &o)| o == owner).map(|(i, _)| i as u32).collect()
    }

    /// Content signature over names+owners (participates in downstream
    /// equivalence: a different feature space is a different dataset).
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::of_str("feature-space");
        for (n, o) in self.names.iter().zip(&self.owners) {
            sig = sig.chain(Signature::of_str(n)).chain_u64(*o as u64);
        }
        sig
    }

    /// Raw view for the codec.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u32)> {
        self.names.iter().map(String::as_str).zip(self.owners.iter().copied())
    }

    /// Rebuild from codec entries.
    pub fn from_entries(entries: Vec<(String, u32)>) -> FeatureSpace {
        let mut space = FeatureSpace::new();
        for (name, owner) in entries {
            space.intern(&name, owner);
        }
        space
    }
}

impl ByteSized for FeatureSpace {
    fn byte_size(&self) -> u64 {
        self.names.iter().map(|n| 2 * n.capacity() as u64 + 64).sum::<u64>()
            + 4 * self.owners.len() as u64
    }
}

/// A collection of examples sharing one feature space.
#[derive(Clone, Debug)]
pub struct ExampleBatch {
    /// The shared, globally ordered feature space.
    pub space: Arc<FeatureSpace>,
    /// The examples.
    pub examples: Vec<Example>,
}

impl ExampleBatch {
    /// Wrap examples in a space.
    pub fn new(space: Arc<FeatureSpace>, examples: Vec<Example>) -> ExampleBatch {
        ExampleBatch { space, examples }
    }

    /// Batch with an anonymous space (dense pipelines that never use names).
    pub fn dense(examples: Vec<Example>) -> ExampleBatch {
        ExampleBatch { space: Arc::new(FeatureSpace::new()), examples }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Iterate examples of one split.
    pub fn split_examples(&self, split: Split) -> impl Iterator<Item = &Example> {
        self.examples.iter().filter(move |e| e.split == split)
    }

    /// A new batch containing only `split` examples (used by `testData(..)`
    /// style reducers).
    pub fn filter_split(&self, split: Split) -> ExampleBatch {
        ExampleBatch {
            space: Arc::clone(&self.space),
            examples: self.examples.iter().filter(|e| e.split == split).cloned().collect(),
        }
    }
}

impl ByteSized for ExampleBatch {
    fn byte_size(&self) -> u64 {
        self.space.byte_size() + self.examples.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_ordered() {
        let mut s = FeatureSpace::new();
        assert_eq!(s.intern("edu=BS", 3), 0);
        assert_eq!(s.intern("edu=PhD", 3), 1);
        assert_eq!(s.intern("edu=BS", 3), 0);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.name(1), Some("edu=PhD"));
        assert_eq!(s.owner(0), Some(3));
        assert_eq!(s.index_of("edu=PhD"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn provenance_query() {
        let mut s = FeatureSpace::new();
        s.intern("a", 1);
        s.intern("b", 2);
        s.intern("c", 1);
        assert_eq!(s.dims_of_owner(1), vec![0, 2]);
        assert_eq!(s.dims_of_owner(2), vec![1]);
        assert!(s.dims_of_owner(9).is_empty());
    }

    #[test]
    fn signature_sensitive_to_names_and_owners() {
        let mut a = FeatureSpace::new();
        a.intern("x", 1);
        let mut b = FeatureSpace::new();
        b.intern("x", 1);
        assert_eq!(a.signature(), b.signature());
        let mut c = FeatureSpace::new();
        c.intern("x", 2);
        assert_ne!(a.signature(), c.signature());
        let mut d = FeatureSpace::new();
        d.intern("y", 1);
        assert_ne!(a.signature(), d.signature());
    }

    #[test]
    fn entries_roundtrip() {
        let mut s = FeatureSpace::new();
        s.intern("a", 1);
        s.intern("b", 7);
        let entries: Vec<(String, u32)> = s.entries().map(|(n, o)| (n.to_string(), o)).collect();
        let rebuilt = FeatureSpace::from_entries(entries);
        assert_eq!(rebuilt.signature(), s.signature());
    }

    #[test]
    fn batch_split_filtering() {
        let space = Arc::new(FeatureSpace::new());
        let ex = |split| Example::new(FeatureVector::zeros(2), Some(1.0), split);
        let batch =
            ExampleBatch::new(space, vec![ex(Split::Train), ex(Split::Test), ex(Split::Train)]);
        assert_eq!(batch.split_examples(Split::Train).count(), 2);
        let test_only = batch.filter_split(Split::Test);
        assert_eq!(test_only.len(), 1);
        assert!(Arc::ptr_eq(&batch.space, &test_only.space));
    }

    #[test]
    fn example_tagging() {
        let e = Example::new(FeatureVector::zeros(1), None, Split::Train).with_tag("BRCA1");
        assert_eq!(e.tag.as_deref(), Some("BRCA1"));
        assert!(e.prediction.is_none());
    }
}
