//! Raw records: the input side of data preprocessing.
//!
//! A [`RecordBatch`] is HELIX's analogue of a relation: a shared [`Schema`]
//! plus rows of [`FieldValue`]s. The paper unifies training and test data in
//! a single collection so both undergo identical preprocessing (§3.2.1,
//! "Unified learning support"); we carry that through with a per-row
//! [`Split`] tag.

use crate::value::ByteSized;
use helix_common::hash::Signature;
use std::collections::HashMap;
use std::sync::Arc;

/// Train/test membership of a row or example (paper §3.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Split {
    /// Used to fit models.
    Train,
    /// Held out; used by Reducers operating on `testData(...)`.
    Test,
}

impl Split {
    /// Stable single-byte encoding for the storage codec.
    pub fn to_byte(self) -> u8 {
        match self {
            Split::Train => 0,
            Split::Test => 1,
        }
    }

    /// Inverse of [`to_byte`](Self::to_byte).
    pub fn from_byte(b: u8) -> Option<Split> {
        match b {
            0 => Some(Split::Train),
            1 => Some(Split::Test),
            _ => None,
        }
    }
}

/// A single cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Missing / not applicable.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text (also used for categorical values).
    Text(String),
}

impl FieldValue {
    /// Numeric view: `Int` and `Float` convert; `Text`/`Null` do not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Int(i) => Some(*i as f64),
            FieldValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view (categoricals).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            FieldValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Render any value as a string (used when forming `col=value` feature
    /// names).
    pub fn render(&self) -> String {
        match self {
            FieldValue::Null => "∅".to_string(),
            FieldValue::Int(i) => i.to_string(),
            FieldValue::Float(f) => format!("{f}"),
            FieldValue::Text(s) => s.clone(),
        }
    }

    /// Parse a CSV cell with type inference: int, then float, then text.
    /// Empty cells become `Null`. This is the inference the paper alludes to
    /// ("the feature type … is automatically inferred by HELIX from data").
    pub fn infer(cell: &str) -> FieldValue {
        let trimmed = cell.trim();
        if trimmed.is_empty() || trimmed == "?" {
            return FieldValue::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return FieldValue::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return FieldValue::Float(f);
        }
        FieldValue::Text(trimmed.to_string())
    }
}

impl ByteSized for FieldValue {
    fn byte_size(&self) -> u64 {
        let base = std::mem::size_of::<FieldValue>() as u64;
        match self {
            FieldValue::Text(s) => base + s.capacity() as u64,
            _ => base,
        }
    }
}

/// Ordered column names shared by every row of a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from column names. Duplicate names keep the first
    /// index (later duplicates are unreachable by name, matching CSV
    /// semantics).
    pub fn new<I, S>(columns: I) -> Arc<Schema>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            by_name.entry(c.clone()).or_insert(i);
        }
        Arc::new(Schema { columns, by_name })
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Content signature of the schema (participates in operator
    /// signatures so schema changes deprecate downstream results).
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::of_str("schema");
        for c in &self.columns {
            sig = sig.chain(Signature::of_str(c));
        }
        sig
    }
}

/// One row: values positionally aligned with the batch schema, plus split.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Cell values, one per schema column.
    pub values: Vec<FieldValue>,
    /// Train/test membership.
    pub split: Split,
}

impl Record {
    /// Construct a training row.
    pub fn train(values: Vec<FieldValue>) -> Record {
        Record { values, split: Split::Train }
    }

    /// Construct a test row.
    pub fn test(values: Vec<FieldValue>) -> Record {
        Record { values, split: Split::Test }
    }
}

impl ByteSized for Record {
    fn byte_size(&self) -> u64 {
        std::mem::size_of::<Record>() as u64
            + self.values.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

/// A relation: schema + rows.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordBatch {
    /// Shared column naming.
    pub schema: Arc<Schema>,
    /// The rows.
    pub rows: Vec<Record>,
}

impl RecordBatch {
    /// Create a batch, checking row arity against the schema.
    pub fn new(schema: Arc<Schema>, rows: Vec<Record>) -> helix_common::Result<RecordBatch> {
        if let Some(bad) = rows.iter().position(|r| r.values.len() != schema.arity()) {
            return Err(helix_common::HelixError::spec(format!(
                "row {bad} has {} values but schema has {} columns",
                rows[bad].values.len(),
                schema.arity()
            )));
        }
        Ok(RecordBatch { schema, rows })
    }

    /// Empty batch over a schema.
    pub fn empty(schema: Arc<Schema>) -> RecordBatch {
        RecordBatch { schema, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value of `column` in row `row`, if both exist.
    pub fn cell(&self, row: usize, column: &str) -> Option<&FieldValue> {
        let idx = self.schema.index_of(column)?;
        self.rows.get(row).map(|r| &r.values[idx])
    }

    /// Iterate rows of a given split.
    pub fn split_rows(&self, split: Split) -> impl Iterator<Item = &Record> {
        self.rows.iter().filter(move |r| r.split == split)
    }

    /// Parse CSV text into rows with inferred field types, tagging each row
    /// with `split`. A very small CSV dialect: comma-separated, no quoting
    /// (the paper's census input is unquoted), blank lines skipped.
    pub fn parse_csv(
        schema: Arc<Schema>,
        text: &str,
        split: Split,
    ) -> helix_common::Result<RecordBatch> {
        let mut rows = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let values: Vec<FieldValue> = line.split(',').map(FieldValue::infer).collect();
            if values.len() != schema.arity() {
                return Err(helix_common::HelixError::spec(format!(
                    "csv line has {} cells, schema expects {}",
                    values.len(),
                    schema.arity()
                )));
            }
            rows.push(Record { values, split });
        }
        Ok(RecordBatch { schema, rows })
    }

    /// Concatenate two batches over the same schema.
    pub fn concat(mut self, other: RecordBatch) -> helix_common::Result<RecordBatch> {
        if self.schema != other.schema {
            return Err(helix_common::HelixError::spec(
                "cannot concat batches with different schemas",
            ));
        }
        self.rows.extend(other.rows);
        Ok(self)
    }
}

impl ByteSized for RecordBatch {
    fn byte_size(&self) -> u64 {
        // Schema is shared; attribute it once.
        let schema: u64 = self.schema.columns().iter().map(|c| c.capacity() as u64 + 48).sum();
        schema + self.rows.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(["age", "education", "income"])
    }

    #[test]
    fn field_value_inference() {
        assert_eq!(FieldValue::infer("42"), FieldValue::Int(42));
        assert_eq!(FieldValue::infer("4.5"), FieldValue::Float(4.5));
        assert_eq!(FieldValue::infer(" BSc "), FieldValue::Text("BSc".into()));
        assert_eq!(FieldValue::infer(""), FieldValue::Null);
        assert_eq!(FieldValue::infer("?"), FieldValue::Null);
    }

    #[test]
    fn field_value_views() {
        assert_eq!(FieldValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(FieldValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(FieldValue::Text("x".into()).as_f64(), None);
        assert_eq!(FieldValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(FieldValue::Null.as_text(), None);
    }

    #[test]
    fn schema_lookup_and_signature() {
        let s = schema();
        assert_eq!(s.index_of("education"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.arity(), 3);
        let s2 = Schema::new(["age", "education", "income"]);
        assert_eq!(s.signature(), s2.signature());
        let s3 = Schema::new(["age", "education", "wealth"]);
        assert_ne!(s.signature(), s3.signature());
    }

    #[test]
    fn batch_arity_checked() {
        let s = schema();
        let ok = RecordBatch::new(
            s.clone(),
            vec![Record::train(vec![
                FieldValue::Int(30),
                FieldValue::Text("BS".into()),
                FieldValue::Int(1),
            ])],
        );
        assert!(ok.is_ok());
        let bad = RecordBatch::new(s, vec![Record::train(vec![FieldValue::Int(30)])]);
        assert!(bad.is_err());
    }

    #[test]
    fn csv_parsing_and_splits() {
        let s = schema();
        let train = RecordBatch::parse_csv(s.clone(), "30,BS,1\n41,PhD,0\n", Split::Train).unwrap();
        let test = RecordBatch::parse_csv(s, "55,MS,1\n", Split::Test).unwrap();
        let all = train.concat(test).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all.split_rows(Split::Train).count(), 2);
        assert_eq!(all.split_rows(Split::Test).count(), 1);
        assert_eq!(all.cell(0, "education").unwrap().as_text(), Some("BS"));
        assert_eq!(all.cell(2, "age").unwrap().as_f64(), Some(55.0));
    }

    #[test]
    fn csv_bad_arity_rejected() {
        let s = schema();
        assert!(RecordBatch::parse_csv(s, "1,2\n", Split::Train).is_err());
    }

    #[test]
    fn concat_schema_mismatch_rejected() {
        let a = RecordBatch::empty(schema());
        let b = RecordBatch::empty(Schema::new(["x"]));
        assert!(a.concat(b).is_err());
    }

    #[test]
    fn byte_size_grows_with_rows() {
        let s = schema();
        let small = RecordBatch::parse_csv(s.clone(), "30,BS,1\n", Split::Train).unwrap();
        let large = RecordBatch::parse_csv(s, &"30,BS,1\n".repeat(100), Split::Train).unwrap();
        // Schema overhead is shared, so compare row-attributable growth.
        assert!(large.byte_size() - small.byte_size() > 90 * small.rows[0].byte_size());
    }

    #[test]
    fn split_byte_roundtrip() {
        for s in [Split::Train, Split::Test] {
            assert_eq!(Split::from_byte(s.to_byte()), Some(s));
        }
        assert_eq!(Split::from_byte(9), None);
    }
}
