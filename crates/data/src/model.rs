//! Model parameter containers.
//!
//! These are *plain data*: the learning and inference algorithms live in
//! `helix-ml`. Keeping parameters here lets the storage codec persist any
//! model without a dependency on the math crate, mirroring how HELIX treats
//! models "largely as black boxes" (paper §3.3) at the workflow level.

use crate::value::ByteSized;
use std::collections::HashMap;

/// A linear model (logistic or linear regression, one-vs-rest multiclass).
#[derive(Clone, Debug, PartialEq)]
pub struct LinearModel {
    /// Per-class weight vectors (`1` entry for binary problems), each of
    /// dimension `dim`.
    pub weights: Vec<Vec<f64>>,
    /// Per-class intercepts.
    pub bias: Vec<f64>,
    /// Feature dimensionality the model was trained with.
    pub dim: u32,
}

impl LinearModel {
    /// Number of classes (1 = binary with a single score).
    pub fn classes(&self) -> usize {
        self.weights.len()
    }
}

/// K-means centroids.
#[derive(Clone, Debug, PartialEq)]
pub struct CentroidModel {
    /// `k` centroids, each of dimension `dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Dimensionality.
    pub dim: u32,
    /// Final within-cluster sum of squares (for PPR reporting).
    pub inertia: f64,
}

/// Learned token embeddings (word2vec output).
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingModel {
    /// Token → embedding row index.
    pub vocab: HashMap<String, u32>,
    /// Row-major embedding matrix, `vocab.len() × dim`.
    pub vectors: Vec<f64>,
    /// Embedding dimensionality.
    pub dim: u32,
}

impl EmbeddingModel {
    /// Embedding of a token, if in vocabulary.
    pub fn embedding(&self, token: &str) -> Option<&[f64]> {
        let row = *self.vocab.get(token)? as usize;
        let d = self.dim as usize;
        self.vectors.get(row * d..(row + 1) * d)
    }
}

/// Multinomial naive Bayes parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct NaiveBayesModel {
    /// Log prior per class.
    pub log_priors: Vec<f64>,
    /// Log likelihood per class × feature (row-major, `classes × dim`).
    pub log_likelihoods: Vec<f64>,
    /// Feature dimensionality.
    pub dim: u32,
}

/// Mean/variance feature scaler.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalerModel {
    /// Per-dimension means.
    pub means: Vec<f64>,
    /// Per-dimension standard deviations (≥ small epsilon).
    pub stds: Vec<f64>,
}

/// Learned discretization boundaries (paper's `Bucketizer`, Census line 11).
#[derive(Clone, Debug, PartialEq)]
pub struct BucketizerModel {
    /// Ascending bucket boundaries; value `v` maps to the first bucket
    /// whose boundary exceeds it.
    pub boundaries: Vec<f64>,
}

impl BucketizerModel {
    /// Bucket index of a value in `0..=boundaries.len()`.
    pub fn bucket(&self, v: f64) -> usize {
        self.boundaries.partition_point(|b| *b <= v)
    }
}

/// Learned categorical → index mapping (string indexer).
#[derive(Clone, Debug, PartialEq)]
pub struct IndexerModel {
    /// Category → dense index.
    pub vocab: HashMap<String, u32>,
}

/// A learned DPR transformation (paper: "f can also be a feature
/// transformation function that needs to be learned from the input
/// dataset", §3.2.2).
#[derive(Clone, Debug, PartialEq)]
pub enum TransformModel {
    /// Standardization.
    Scaler(ScalerModel),
    /// Discretization.
    Bucketizer(BucketizerModel),
    /// Category indexing.
    Indexer(IndexerModel),
    /// Random Fourier feature projection (MNIST workload): row-major
    /// `dim_out × dim_in` projection matrix plus phase offsets.
    RandomFourier {
        /// Projection matrix (row-major, `dim_out` rows of `dim_in`).
        projection: Vec<f64>,
        /// Phase offsets, length `dim_out`.
        offsets: Vec<f64>,
        /// Input dimensionality.
        dim_in: u32,
        /// Output dimensionality.
        dim_out: u32,
    },
}

/// Any learned artifact a Learner node can output (paper: L/I produces a
/// function `f`).
#[derive(Clone, Debug, PartialEq)]
pub enum Model {
    /// Linear / logistic regression.
    Linear(LinearModel),
    /// K-means.
    Centroids(CentroidModel),
    /// Word embeddings.
    Embeddings(EmbeddingModel),
    /// Naive Bayes.
    NaiveBayes(NaiveBayesModel),
    /// Learned DPR transform.
    Transform(TransformModel),
}

impl Model {
    /// Short kind string for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Model::Linear(_) => "linear",
            Model::Centroids(_) => "centroids",
            Model::Embeddings(_) => "embeddings",
            Model::NaiveBayes(_) => "naive-bayes",
            Model::Transform(_) => "transform",
        }
    }
}

impl ByteSized for Model {
    fn byte_size(&self) -> u64 {
        let base = std::mem::size_of::<Model>() as u64;
        base + match self {
            Model::Linear(m) => {
                m.weights.iter().map(|w| 8 * w.len() as u64).sum::<u64>() + 8 * m.bias.len() as u64
            }
            Model::Centroids(m) => m.centroids.iter().map(|c| 8 * c.len() as u64).sum::<u64>(),
            Model::Embeddings(m) => {
                8 * m.vectors.len() as u64
                    + m.vocab.keys().map(|k| k.capacity() as u64 + 56).sum::<u64>()
            }
            Model::NaiveBayes(m) => 8 * (m.log_priors.len() + m.log_likelihoods.len()) as u64,
            Model::Transform(t) => match t {
                TransformModel::Scaler(s) => 8 * (s.means.len() + s.stds.len()) as u64,
                TransformModel::Bucketizer(b) => 8 * b.boundaries.len() as u64,
                TransformModel::Indexer(i) => {
                    i.vocab.keys().map(|k| k.capacity() as u64 + 56).sum::<u64>()
                }
                TransformModel::RandomFourier { projection, offsets, .. } => {
                    8 * (projection.len() + offsets.len()) as u64
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketizer_boundaries() {
        let b = BucketizerModel { boundaries: vec![10.0, 20.0, 30.0] };
        assert_eq!(b.bucket(5.0), 0);
        assert_eq!(b.bucket(10.0), 1); // boundary belongs to the right bucket
        assert_eq!(b.bucket(15.0), 1);
        assert_eq!(b.bucket(29.9), 2);
        assert_eq!(b.bucket(99.0), 3);
    }

    #[test]
    fn embedding_lookup() {
        let mut vocab = HashMap::new();
        vocab.insert("gene".to_string(), 0u32);
        vocab.insert("cell".to_string(), 1u32);
        let m = EmbeddingModel { vocab, vectors: vec![1.0, 2.0, 3.0, 4.0], dim: 2 };
        assert_eq!(m.embedding("gene"), Some(&[1.0, 2.0][..]));
        assert_eq!(m.embedding("cell"), Some(&[3.0, 4.0][..]));
        assert_eq!(m.embedding("unknown"), None);
    }

    #[test]
    fn model_kinds_and_sizes() {
        let linear =
            Model::Linear(LinearModel { weights: vec![vec![0.0; 64]], bias: vec![0.0], dim: 64 });
        assert_eq!(linear.kind(), "linear");
        assert!(linear.byte_size() >= 64 * 8);

        let tiny =
            Model::Transform(TransformModel::Bucketizer(BucketizerModel { boundaries: vec![1.0] }));
        assert!(tiny.byte_size() < linear.byte_size());
    }
}
