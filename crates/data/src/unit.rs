//! Semantic units: the DPR intermediate representation (paper §3.2.1).
//!
//! A [`SemanticUnit`] carries the *logical* features an extractor produced
//! for one upstream element, before physical vector assembly. Each Extractor
//! node in the DAG outputs a [`UnitBatch`] aligned index-for-index with its
//! input collection (`origin` records the upstream element), so the
//! synthesizer can zip any number of extractor outputs together into
//! examples and the optimizer can treat every extractor as an independent,
//! individually reusable node.

use crate::feature::FeatureBundle;
use crate::record::Split;
use crate::value::ByteSized;

/// One extractor's features for one upstream element.
#[derive(Clone, Debug, PartialEq)]
pub struct SemanticUnit {
    /// Index of the originating element in the extractor's input collection.
    pub origin: u32,
    /// Train/test membership inherited from the origin element.
    pub split: Split,
    /// The features (logical representation).
    pub features: FeatureBundle,
    /// Optional join/grouping key (used by Synthesizers that join DCs,
    /// e.g. matching entity mentions against a knowledge base).
    pub key: Option<String>,
}

impl SemanticUnit {
    /// Unit with features only.
    pub fn new(origin: u32, split: Split, features: FeatureBundle) -> SemanticUnit {
        SemanticUnit { origin, split, features, key: None }
    }

    /// Unit with a join key.
    pub fn keyed(
        origin: u32,
        split: Split,
        features: FeatureBundle,
        key: impl Into<String>,
    ) -> SemanticUnit {
        SemanticUnit { origin, split, features, key: Some(key.into()) }
    }
}

impl ByteSized for SemanticUnit {
    fn byte_size(&self) -> u64 {
        std::mem::size_of::<SemanticUnit>() as u64
            + self.features.byte_size()
            + self.key.as_ref().map_or(0, |k| k.capacity() as u64)
    }
}

/// A collection of semantic units (one extractor's output).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct UnitBatch {
    /// The units, ordered by `origin` (not necessarily contiguous: a
    /// flat-mapping Scanner can emit zero or many units per input).
    pub units: Vec<SemanticUnit>,
}

impl UnitBatch {
    /// Wrap a vector of units.
    pub fn new(units: Vec<SemanticUnit>) -> UnitBatch {
        UnitBatch { units }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Iterate units restricted to a split.
    pub fn split_units(&self, split: Split) -> impl Iterator<Item = &SemanticUnit> {
        self.units.iter().filter(move |u| u.split == split)
    }
}

impl ByteSized for UnitBatch {
    fn byte_size(&self) -> u64 {
        self.units.iter().map(ByteSized::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_split_filter() {
        let batch = UnitBatch::new(vec![
            SemanticUnit::new(0, Split::Train, FeatureBundle::Numeric(vec![("x".into(), 1.0)])),
            SemanticUnit::new(1, Split::Test, FeatureBundle::Empty),
            SemanticUnit::keyed(2, Split::Train, FeatureBundle::Empty, "BRCA1"),
        ]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.split_units(Split::Train).count(), 2);
        assert_eq!(batch.units[2].key.as_deref(), Some("BRCA1"));
    }

    #[test]
    fn byte_size_counts_features_and_keys() {
        let plain = SemanticUnit::new(0, Split::Train, FeatureBundle::Empty);
        let keyed = SemanticUnit::keyed(
            0,
            Split::Train,
            FeatureBundle::Tokens(vec!["gene".into(), "disease".into()]),
            "somekey",
        );
        assert!(keyed.byte_size() > plain.byte_size());
    }
}
