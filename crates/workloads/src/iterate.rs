//! The iterative-development simulator (paper §6.3).
//!
//! "We use the iteration frequency in Figure 3 from our literature study
//! (78) to determine the type of modifications to make in each iteration…
//! At each iteration, we draw an iteration type from {DPR, L/I, PPR}
//! according to these likelihoods." The exact frequencies of (78) are not
//! reproduced in the paper; the distributions below encode its qualitative
//! findings (PPR iterations dominate the social sciences; NLP iterations
//! are all DPR; CV/natural sciences are L/I-heavy) and are frozen
//! constants of this reproduction.

use crate::Workload;
use helix_common::{Result, SplitMix64};
use helix_core::{IterationReport, Session};

/// The component a simulated developer modifies in one iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// Data preprocessing change (feature engineering, parsing, corpus).
    Dpr,
    /// Learning/inference change (hyperparameters, model swap).
    LI,
    /// Postprocessing change (evaluation, reporting).
    Ppr,
}

impl ChangeKind {
    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ChangeKind::Dpr => "DPR",
            ChangeKind::LI => "L/I",
            ChangeKind::Ppr => "PPR",
        }
    }
}

/// Application domain of a workload (Table 2's rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Census: covariate analysis, heavy result inspection.
    SocialSciences,
    /// Genomics: multiple learning steps, exploratory outputs.
    NaturalSciences,
    /// Information extraction: feature-engineering dominated.
    Nlp,
    /// MNIST: model-tuning dominated.
    ComputerVision,
}

impl Domain {
    /// `(P[DPR], P[L/I], P[PPR])` — our rendering of survey citation 78, Fig. 3.
    pub fn change_distribution(self) -> (f64, f64, f64) {
        match self {
            Domain::SocialSciences => (0.3, 0.2, 0.5),
            Domain::NaturalSciences => (0.2, 0.4, 0.4),
            Domain::Nlp => (1.0, 0.0, 0.0),
            Domain::ComputerVision => (0.2, 0.5, 0.3),
        }
    }

    /// Draw a change kind for this domain.
    pub fn sample_change(self, rng: &mut SplitMix64) -> ChangeKind {
        let (dpr, li, ppr) = self.change_distribution();
        match rng.choose_weighted(&[dpr, li, ppr]).unwrap_or(2) {
            0 => ChangeKind::Dpr,
            1 => ChangeKind::LI,
            _ => ChangeKind::Ppr,
        }
    }
}

/// Run a workload for `1 + changes.len()` iterations in `session`:
/// iteration 0 executes the initial version, then each change is applied
/// and re-run (paper §2.2's lifecycle loop).
pub fn run_iterations<W: Workload>(
    session: &mut Session,
    workload: &mut W,
    changes: &[ChangeKind],
) -> Result<Vec<IterationReport>> {
    let mut reports = Vec::with_capacity(changes.len() + 1);
    reports.push(session.run(&workload.build())?);
    for &kind in changes {
        workload.apply_change(kind);
        reports.push(session.run(&workload.build())?);
    }
    Ok(reports)
}

/// Sample a change sequence of `len` iterations for a domain (the
/// alternative to a workload's frozen `scripted_sequence`).
pub fn sample_sequence(domain: Domain, len: usize, seed: u64) -> Vec<ChangeKind> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| domain.sample_change(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nlp_domain_is_all_dpr() {
        let seq = sample_sequence(Domain::Nlp, 20, 1);
        assert!(seq.iter().all(|k| *k == ChangeKind::Dpr));
    }

    #[test]
    fn social_sciences_is_ppr_heavy() {
        let seq = sample_sequence(Domain::SocialSciences, 400, 2);
        let ppr = seq.iter().filter(|k| **k == ChangeKind::Ppr).count();
        let dpr = seq.iter().filter(|k| **k == ChangeKind::Dpr).count();
        assert!(ppr > dpr, "ppr {ppr} vs dpr {dpr}");
        assert!((0.4..0.6).contains(&(ppr as f64 / 400.0)));
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(
            sample_sequence(Domain::ComputerVision, 10, 7),
            sample_sequence(Domain::ComputerVision, 10, 7)
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ChangeKind::Dpr.label(), "DPR");
        assert_eq!(ChangeKind::LI.label(), "L/I");
        assert_eq!(ChangeKind::Ppr.label(), "PPR");
    }
}
