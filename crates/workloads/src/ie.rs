//! The information-extraction workflow (paper §6.2, the DeepDive spouse
//! example (19)).
//!
//! Structured prediction over unstructured text: articles are split into
//! sentences, candidate person pairs are extracted with part-of-speech
//! evidence (the expensive "NLP parse" whose reuse drives paper Figure
//! 5(c)), candidates are labeled by joining against a knowledge base of
//! known spouses, and a logistic-regression classifier scores unseen
//! pairs. One-to-many input→example mapping and a two-source join, per
//! Table 2.
//!
//! The paper's NLP iterations are *all DPR* and never touch the parse —
//! they iterate on downstream feature engineering. Our change schedule
//! mirrors that: struct-feature version bumps and a bigram-feature toggle.

use crate::gen::ie_corpus;
use crate::iterate::{ChangeKind, Domain};
use crate::Workload;
use helix_common::HelixError;
use helix_core::ops::Algo;
use helix_core::prelude::*;
use helix_data::{
    DataCollection, FeatureBundle, FieldValue, Record, RecordBatch, Scalar, Schema, Value,
};
use helix_ml::text;
use std::collections::HashSet;
use std::sync::Arc;

/// Mutable spec for the IE workflow.
#[derive(Clone, Debug)]
pub struct IeWorkload {
    /// Articles in the corpus.
    pub articles: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Data version.
    pub data_version: u64,
    /// Structural-feature UDF version (DPR change).
    pub struct_version: u64,
    /// Include between-text bigram features (DPR change).
    pub use_bigrams: bool,
    /// L2 regularization (L/I change — unused by the paper's NLP schedule
    /// but supported).
    pub l2: f64,
    /// Report UDF version (PPR change).
    pub reducer_version: u64,
    dpr_step: u64,
}

impl Default for IeWorkload {
    fn default() -> Self {
        IeWorkload {
            articles: 1_500,
            seed: 0x1E,
            data_version: 1,
            struct_version: 1,
            use_bigrams: false,
            l2: 0.1,
            reducer_version: 1,
            dpr_step: 0,
        }
    }
}

impl IeWorkload {
    /// A smaller configuration for unit tests.
    pub fn small() -> Self {
        IeWorkload { articles: 120, ..Default::default() }
    }
}

/// Candidate-pair schema produced by the parse step.
fn candidate_columns() -> Arc<Schema> {
    Schema::new(["a", "b", "pair", "between", "dist", "verb_evidence"])
}

impl Workload for IeWorkload {
    fn name(&self) -> &'static str {
        "ie"
    }

    fn domain(&self) -> Domain {
        Domain::Nlp
    }

    fn build(&self) -> Workflow {
        let mut wf = Workflow::new(self.name());
        let (articles, seed) = (self.articles, self.seed);
        let corpus = wf.source("articles", self.data_version, move |_ctx| {
            let (articles, _) = ie_corpus(articles, seed);
            let schema = Schema::new(["text"]);
            let rows: Vec<Record> = articles
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    // Hold out a fifth of articles for evaluation.

                    Record {
                        values: vec![FieldValue::Text(a.clone())],
                        split: if i % 5 == 4 {
                            helix_data::Split::Test
                        } else {
                            helix_data::Split::Train
                        },
                    }
                })
                .collect();
            Ok(Value::records(RecordBatch::new(schema, rows)?))
        });
        let kb = wf.source("spouseKb", 1, move |_ctx| {
            let (_, pairs) = ie_corpus(1, seed);
            let schema = Schema::new(["pair"]);
            let rows =
                pairs.into_iter().map(|p| Record::train(vec![FieldValue::Text(p)])).collect();
            Ok(Value::records(RecordBatch::new(schema, rows)?))
        });

        // The expensive, reusable parse: sentence splitting + POS tagging +
        // candidate-pair generation (one-to-many).
        let sentences_schema = Schema::new(["sentence"]);
        let sentences = wf.scan("sentences", corpus, 1, sentences_schema, |row, schema| {
            let idx = schema.index_of("text").unwrap();
            let article = row.values[idx].as_text().unwrap_or("");
            text::split_sentences(article)
                .into_iter()
                .map(|s| Record { values: vec![FieldValue::Text(s.to_string())], split: row.split })
                .collect()
        });
        let candidates = wf.scan("candidates", sentences, 1, candidate_columns(), |row, schema| {
            let idx = schema.index_of("sentence").unwrap();
            let sentence = row.values[idx].as_text().unwrap_or("");
            let tokens = text::tokenize_cased(sentence);
            let tags = text::pos_tag_sentence(&tokens);
            // Person heuristic: capitalized alphabetic token (sentence-
            // initial names included — our corpus capitalizes only names).
            let persons: Vec<usize> = tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.chars().next().is_some_and(char::is_uppercase)
                        && t.chars().all(char::is_alphabetic)
                })
                .map(|(i, _)| i)
                .collect();
            let mut out = Vec::new();
            for (pi, &i) in persons.iter().enumerate() {
                for &j in &persons[pi + 1..] {
                    let (a, b) = (tokens[i].clone(), tokens[j].clone());
                    if a == b {
                        continue;
                    }
                    let between = tokens[i + 1..j].join(" ");
                    let verb_evidence =
                        tags[i + 1..j].iter().filter(|t| **t == text::PosTag::Verb).count() as i64;
                    let pair = if a < b { format!("{a}|{b}") } else { format!("{b}|{a}") };
                    out.push(Record {
                        values: vec![
                            FieldValue::Text(a),
                            FieldValue::Text(b),
                            FieldValue::Text(pair),
                            FieldValue::Text(between),
                            FieldValue::Int((j - i) as i64),
                            FieldValue::Int(verb_evidence),
                        ],
                        split: row.split,
                    });
                }
            }
            out
        });

        // Label candidates by joining with the knowledge base (distant
        // supervision, as in DeepDive).
        let labeled = wf.udf_collection(
            "labeledCandidates",
            Phase::Dpr,
            &[candidates, kb],
            1,
            |inputs, _ctx| {
                let [cands, kb] = inputs else {
                    return Err(HelixError::exec("labeledCandidates", "expects 2 inputs"));
                };
                let cands = cands.as_collection()?.as_records()?;
                let kb = kb.as_collection()?.as_records()?;
                let pair_idx = cands.schema.index_of("pair").unwrap();
                let kb_idx = kb.schema.index_of("pair").unwrap();
                let known: HashSet<&str> =
                    kb.rows.iter().filter_map(|r| r.values[kb_idx].as_text()).collect();
                let mut columns: Vec<String> = cands.schema.columns().to_vec();
                columns.push("label".to_string());
                let schema = Schema::new(columns);
                let rows: Vec<Record> = cands
                    .rows
                    .iter()
                    .map(|r| {
                        let is_spouse =
                            r.values[pair_idx].as_text().is_some_and(|p| known.contains(p));
                        let mut values = r.values.clone();
                        values.push(FieldValue::Int(i64::from(is_spouse)));
                        Record { values, split: r.split }
                    })
                    .collect();
                Ok(Value::Collection(DataCollection::Records(RecordBatch::new(schema, rows)?)))
            },
        );

        // Fine-grained features over labeled candidates.
        let between_tokens = wf.tokenize("betweenTokens", labeled, "between");
        let struct_version = self.struct_version;
        let struct_ext =
            wf.udf_extractor("structExt", labeled, struct_version, move |row, schema| {
                let dist =
                    schema.index_of("dist").and_then(|i| row.values[i].as_f64()).unwrap_or(0.0);
                let verbs = schema
                    .index_of("verb_evidence")
                    .and_then(|i| row.values[i].as_f64())
                    .unwrap_or(0.0);
                FeatureBundle::Numeric(vec![
                    ("dist".into(), dist),
                    ("verb_evidence".into(), verbs),
                    // The struct version scales nothing; it exists so DPR
                    // iterations deprecate exactly this operator.
                    ("bias".into(), 1.0),
                ])
            });
        let label = wf.field_extractor("pairLabel", labeled, "label");

        let mut extractors = vec![between_tokens, struct_ext];
        if self.use_bigrams {
            let bigrams = wf.udf_extractor("bigramExt", labeled, 1, |row, schema| {
                let idx = schema.index_of("between").unwrap();
                let tokens = text::tokenize(row.values[idx].as_text().unwrap_or(""));
                FeatureBundle::Tokens(text::ngrams(&tokens, 2))
            });
            extractors.push(bigrams);
        }
        let examples = wf.examples("pairExamples", labeled, &extractors, Some(label));
        let model = wf.learner(
            "spouseModel",
            examples,
            Algo::LogisticRegression { l2: self.l2, epochs: 8 },
        );
        let predictions = wf.predict("predictions", model, examples);
        let scored = wf.f1("extractionF1", predictions);
        let version = self.reducer_version;
        let extracted = wf.reduce("extractedPairs", predictions, version, move |v, _| {
            let batch = v.as_collection()?.as_examples()?;
            let count =
                batch.examples.iter().filter(|e| e.prediction.unwrap_or(0.0) >= 0.5).count() as f64;
            Ok(Value::Scalar(Scalar::Metrics(vec![
                ("extracted".into(), count),
                ("report_version".into(), version as f64),
            ])))
        });
        wf.output(scored);
        wf.output(extracted);
        wf
    }

    fn apply_change(&mut self, kind: ChangeKind) {
        match kind {
            ChangeKind::Dpr => {
                // All NLP iterations are feature engineering downstream of
                // the parse: alternate struct-feature revisions with the
                // bigram toggle.
                if self.dpr_step.is_multiple_of(2) {
                    self.struct_version += 1;
                } else {
                    self.use_bigrams = !self.use_bigrams;
                }
                self.dpr_step += 1;
            }
            ChangeKind::LI => {
                self.l2 = if self.l2 == 0.1 { 0.01 } else { 0.1 };
            }
            ChangeKind::Ppr => {
                self.reducer_version += 1;
            }
        }
    }

    fn scripted_sequence(&self) -> Vec<ChangeKind> {
        // Paper Figure 5(c): six iterations, all DPR.
        vec![ChangeKind::Dpr; 5]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterate::run_iterations;
    use helix_flow::oep::State;

    #[test]
    fn extraction_learns_spouse_signal() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let wl = IeWorkload::small();
        let report = session.run(&wl.build()).unwrap();
        let f1 = report.output_scalar("extractionF1").unwrap();
        assert!(
            f1.metric("f1").unwrap() > 0.6,
            "marriage-verb signal should be learnable: {:?}",
            f1
        );
        assert!(f1.metric("test_examples").unwrap() > 20.0, "one-to-many mapping yields pairs");
    }

    #[test]
    fn dpr_iterations_reuse_the_parse() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = IeWorkload::small();
        let reports =
            run_iterations(&mut session, &mut wl, &[ChangeKind::Dpr, ChangeKind::Dpr]).unwrap();
        for (i, r) in reports.iter().enumerate().skip(1) {
            let state =
                |n: &str| r.states.iter().find(|(name, _)| name == n).map(|(_, s)| *s).unwrap();
            assert_ne!(
                state("candidates"),
                State::Compute,
                "iteration {i}: the parse must be reused"
            );
            assert_eq!(state("spouseModel"), State::Compute, "features changed → retrain");
            assert!(r.total_nanos() < reports[0].total_nanos());
        }
    }

    #[test]
    fn bigram_toggle_changes_feature_space() {
        let mut wl = IeWorkload::small();
        assert!(wl.build().node_by_name("bigramExt").is_none());
        wl.apply_change(ChangeKind::Dpr); // struct bump
        wl.apply_change(ChangeKind::Dpr); // bigram on
        assert!(wl.build().node_by_name("bigramExt").is_some());
    }
}
