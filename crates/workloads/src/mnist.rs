//! The MNIST workflow (paper §6.2; source: KeystoneML's `MnistRandomFFT`
//! (64)).
//!
//! Multiclass image classification with *non-deterministic* preprocessing:
//! a random Fourier featurization whose projection is re-drawn on every
//! actual execution (a volatile operator), followed by a linear classifier.
//! The DPR intermediates are large and cheap to compute, so Algorithm 2
//! correctly declines to materialize them; the small L/I outputs are
//! materialized instead and pay off on PPR iterations — the precise
//! behaviour discussed for Figure 5(d)/6(d).

use crate::gen::mnist_images;
use crate::iterate::{ChangeKind, Domain};
use crate::Workload;
use helix_core::ops::Algo;
use helix_core::prelude::*;
use helix_data::{Example, ExampleBatch, FeatureVector, Scalar, Split, Value};

/// Mutable spec for the MNIST workflow.
#[derive(Clone, Debug)]
pub struct MnistWorkload {
    /// Training images.
    pub train: usize,
    /// Test images.
    pub test: usize,
    /// Image side length (images are `side × side`).
    pub side: usize,
    /// Generator seed.
    pub seed: u64,
    /// Data version.
    pub data_version: u64,
    /// Random Fourier output dimensionality (DPR change).
    pub rff_dim: usize,
    /// RFF kernel bandwidth.
    pub gamma: f64,
    /// Classifier regularization (L/I change).
    pub l2: f64,
    /// Classifier epochs.
    pub epochs: usize,
    /// Report UDF version (PPR change).
    pub reducer_version: u64,
    li_step: u64,
}

impl Default for MnistWorkload {
    fn default() -> Self {
        MnistWorkload {
            train: 1_200,
            test: 300,
            side: 16,
            seed: 0x3157,
            data_version: 1,
            rff_dim: 256,
            gamma: 0.02,
            l2: 0.01,
            epochs: 12,
            reducer_version: 1,
            li_step: 0,
        }
    }
}

impl MnistWorkload {
    /// A smaller configuration for unit tests.
    pub fn small() -> Self {
        MnistWorkload { train: 220, test: 80, side: 10, rff_dim: 96, ..Default::default() }
    }
}

impl Workload for MnistWorkload {
    fn name(&self) -> &'static str {
        "mnist"
    }

    fn domain(&self) -> Domain {
        Domain::ComputerVision
    }

    fn build(&self) -> Workflow {
        let mut wf = Workflow::new(self.name());
        let (train, test, side, seed) = (self.train, self.test, self.side, self.seed);
        let images = wf.source("images", self.data_version, move |_ctx| {
            let (images, _) = mnist_images(train, test, side, seed);
            let examples: Vec<Example> = images
                .into_iter()
                .map(|(pixels, class, is_train)| {
                    Example::new(
                        FeatureVector::Dense(pixels),
                        Some(class as f64),
                        if is_train { Split::Train } else { Split::Test },
                    )
                })
                .collect();
            Ok(Value::examples(ExampleBatch::dense(examples)))
        });
        // Volatile featurization: re-executing draws a fresh projection.
        let rff = wf.learner(
            "randomFFT",
            images,
            Algo::RandomFourier { dim_out: self.rff_dim, gamma: self.gamma },
        );
        let featurized = wf.predict("featurized", rff, images);
        let model = wf.learner(
            "digitModel",
            featurized,
            Algo::LogisticRegression { l2: self.l2, epochs: self.epochs },
        );
        let predictions = wf.predict("predictions", model, featurized);
        let checked = wf.accuracy("checked", predictions);
        let version = self.reducer_version;
        let confusion = wf.reduce("perClass", predictions, version, move |v, _| {
            let batch = v.as_collection()?.as_examples()?;
            let mut per_class = [(0usize, 0usize); 10];
            for e in batch.examples.iter().filter(|e| e.split == Split::Test) {
                if let (Some(truth), Some(pred)) = (e.label, e.prediction) {
                    let c = truth as usize % 10;
                    per_class[c].1 += 1;
                    if (pred - truth).abs() < 0.5 {
                        per_class[c].0 += 1;
                    }
                }
            }
            let mut metrics: Vec<(String, f64)> = per_class
                .iter()
                .enumerate()
                .filter(|(_, (_, n))| *n > 0)
                .map(|(c, (ok, n))| (format!("class_{c}_acc"), *ok as f64 / *n as f64))
                .collect();
            metrics.push(("report_version".into(), version as f64));
            Ok(Value::Scalar(Scalar::Metrics(metrics)))
        });
        wf.output(checked);
        wf.output(confusion);
        wf
    }

    fn apply_change(&mut self, kind: ChangeKind) {
        match kind {
            ChangeKind::Dpr => {
                // Featurization change: everything downstream is deprecated
                // and, because the operator is volatile, nothing upstream
                // of L/I can be reused either.
                self.rff_dim = if self.rff_dim >= 192 { 128 } else { 192 };
            }
            ChangeKind::LI => {
                const SWEEP: [f64; 3] = [0.01, 0.1, 0.001];
                self.li_step += 1;
                self.l2 = SWEEP[(self.li_step as usize) % SWEEP.len()];
            }
            ChangeKind::Ppr => {
                self.reducer_version += 1;
            }
        }
    }

    fn scripted_sequence(&self) -> Vec<ChangeKind> {
        // Frozen draw from the ComputerVision distribution (L/I-heavy with
        // PPR inspections and occasional featurization changes) —
        // Figure 5(d)'s bands.
        use ChangeKind::*;
        vec![LI, Ppr, Dpr, LI, Ppr, Ppr, LI, Dpr, Ppr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterate::run_iterations;
    use helix_flow::oep::State;

    #[test]
    fn digits_are_classified() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let wl = MnistWorkload::small();
        let report = session.run(&wl.build()).unwrap();
        let acc = report.output_scalar("checked").unwrap().metric("accuracy").unwrap();
        assert!(acc > 0.6, "template classes should be separable, got {acc}");
    }

    #[test]
    fn ppr_iteration_reuses_volatile_chain() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = MnistWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::Ppr]).unwrap();
        let second = &reports[1];
        let state =
            |n: &str| second.states.iter().find(|(name, _)| name == n).map(|(_, s)| *s).unwrap();
        assert_ne!(state("randomFFT"), State::Compute, "unchanged volatile op reused");
        assert_eq!(state("perClass"), State::Compute);
        assert!(second.total_nanos() < reports[0].total_nanos() / 2);
    }

    #[test]
    fn li_iteration_recomputes_volatile_preprocessing() {
        // With a realistic (bandwidth-limited) disk, the big featurized
        // batch fails Algorithm 2's C > 2l test and is never materialized —
        // so retraining forces the volatile chain to rerun (paper §6.5.2).
        // On an unthrottled disk, materializing it would genuinely be
        // optimal, which is why this test pins the disk profile.
        let config = SessionConfig::in_memory()
            .with_disk(helix_storage::DiskProfile::scaled(1_000_000, 5_000_000));
        let mut session = Session::new(config).unwrap();
        let mut wl = MnistWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::LI]).unwrap();
        let second = &reports[1];
        let state =
            |n: &str| second.states.iter().find(|(name, _)| name == n).map(|(_, s)| *s).unwrap();
        // The big featurized batch is not worth materializing (cheap to
        // compute, large), so retraining forces the volatile chain to rerun.
        assert_eq!(state("digitModel"), State::Compute);
        assert_eq!(state("featurized"), State::Compute);
        assert_eq!(state("randomFFT"), State::Compute);
    }

    #[test]
    fn dpr_change_deprecates_everything() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = MnistWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::Dpr]).unwrap();
        let second = &reports[1];
        let computed = second.states.iter().filter(|(_, s)| *s == State::Compute).count();
        assert!(computed >= 5, "full recompute after featurization change, got {computed}");
    }
}
