//! Deterministic synthetic data generators.
//!
//! Each generator stands in for a dataset the paper used but we cannot
//! ship (see DESIGN.md §4 for the substitution argument). All are pure
//! functions of their parameters and seed.

use helix_common::SplitMix64;

/// Census-like CSV text (train, test): the 14-attribute schema of the
/// Kohavi Census Income dataset with a planted logistic relationship
/// between a feature subset and the binary `target` column.
pub fn census_csv(train_rows: usize, test_rows: usize, seed: u64) -> (String, String) {
    const EDUCATION: [&str; 8] =
        ["HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate", "Assoc", "11th", "9th"];
    const OCCUPATION: [&str; 8] = [
        "Adm-clerical",
        "Exec-managerial",
        "Prof-specialty",
        "Handlers-cleaners",
        "Sales",
        "Craft-repair",
        "Transport",
        "Tech-support",
    ];
    const MARITAL: [&str; 5] = ["Married", "Never-married", "Divorced", "Widowed", "Separated"];
    const RELATIONSHIP: [&str; 4] = ["Husband", "Wife", "Own-child", "Not-in-family"];
    const RACE: [&str; 5] = ["White", "Black", "Asian", "Amer-Indian", "Other"];
    const SEX: [&str; 2] = ["Male", "Female"];
    const COUNTRY: [&str; 6] =
        ["United-States", "Mexico", "Philippines", "Germany", "Canada", "India"];
    const WORKCLASS: [&str; 5] = ["Private", "Self-emp", "Federal-gov", "Local-gov", "State-gov"];

    let mut rng = SplitMix64::new(seed);
    let mut emit = |rows: usize| -> String {
        let mut out = String::with_capacity(rows * 96);
        for _ in 0..rows {
            let age = 17 + rng.next_below(60) as i64;
            let workclass = WORKCLASS[rng.index(WORKCLASS.len())];
            let fnlwgt = 10_000 + rng.next_below(900_000) as i64;
            let education = rng.index(EDUCATION.len());
            let marital = rng.index(MARITAL.len());
            let occupation = rng.index(OCCUPATION.len());
            let relationship = RELATIONSHIP[rng.index(RELATIONSHIP.len())];
            let race = RACE[rng.index(RACE.len())];
            let sex = SEX[rng.index(SEX.len())];
            let capital_gain = if rng.chance(0.1) { rng.next_below(20_000) as i64 } else { 0 };
            let hours = 20 + rng.next_below(50) as i64;
            let country = COUNTRY[rng.index(COUNTRY.len())];
            // Planted relationship: education, managerial/professional
            // occupations, age, and hours drive income.
            let score = -3.2
                + 0.55 * (7 - education) as f64 * 0.5
                + if occupation <= 2 { 1.1 } else { 0.0 }
                + 0.025 * (age as f64 - 38.0)
                + 0.02 * (hours as f64 - 40.0)
                + if marital == 0 { 0.7 } else { 0.0 }
                + rng.next_gaussian() * 0.8;
            let target = i64::from(score > 0.0);
            out.push_str(&format!(
                "{age},{workclass},{fnlwgt},{},{marital},{},{relationship},{race},{sex},\
                 {capital_gain},0,{hours},{country},{target}\n",
                EDUCATION[education], OCCUPATION[occupation]
            ));
        }
        out
    };
    (emit(train_rows), emit(test_rows))
}

/// Column names matching [`census_csv`]'s output order.
pub const CENSUS_COLUMNS: [&str; 14] = [
    "age",
    "workclass",
    "fnlwgt",
    "education",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital_gain",
    "capital_loss",
    "hours",
    "country",
    "target",
];

/// Genomics corpus: articles whose sentences mix gene mentions from
/// planted functional clusters with filler vocabulary. Gene `g{c}_{i}`
/// belongs to planted cluster `c`, so genes of one cluster co-occur and
/// word2vec + k-means can rediscover the partition. Returns
/// `(articles, gene_names)`.
pub fn genomics_corpus(
    articles: usize,
    sentences_per_article: usize,
    clusters: usize,
    genes_per_cluster: usize,
    seed: u64,
) -> (Vec<String>, Vec<String>) {
    const FILLER: [&str; 18] = [
        "expression",
        "pathway",
        "regulates",
        "binding",
        "protein",
        "mutation",
        "tumor",
        "signaling",
        "receptor",
        "cell",
        "growth",
        "factor",
        "analysis",
        "study",
        "response",
        "activation",
        "variant",
        "tissue",
    ];
    let genes: Vec<String> = (0..clusters)
        .flat_map(|c| (0..genes_per_cluster).map(move |i| format!("g{c}x{i}")))
        .collect();
    let mut rng = SplitMix64::new(seed);
    let mut corpus = Vec::with_capacity(articles);
    for _ in 0..articles {
        let mut article = String::new();
        for _ in 0..sentences_per_article {
            // Each sentence is about one planted cluster.
            let cluster = rng.index(clusters);
            let mut words = Vec::with_capacity(12);
            for _ in 0..12 {
                if rng.chance(0.45) {
                    let g = rng.index(genes_per_cluster);
                    words.push(genes[cluster * genes_per_cluster + g].clone());
                } else {
                    words.push(FILLER[rng.index(FILLER.len())].to_string());
                }
            }
            article.push_str(&words.join(" "));
            article.push_str(". ");
        }
        corpus.push(article);
    }
    (corpus, genes)
}

/// Planted cluster of a gene name produced by [`genomics_corpus`].
pub fn planted_cluster(gene: &str) -> Option<usize> {
    gene.strip_prefix('g')?.split('x').next()?.parse().ok()
}

/// IE corpus: news-like articles mentioning person pairs, some of which
/// are spouses according to the returned knowledge base. Spouse sentences
/// use marriage verbs; non-spouse sentences use other interactions.
/// Returns `(articles, spouse_pairs)` where pairs are `"A|B"` strings with
/// names in lexicographic order.
pub fn ie_corpus(articles: usize, seed: u64) -> (Vec<String>, Vec<String>) {
    const FIRST: [&str; 16] = [
        "Alice", "Robert", "Carol", "David", "Emma", "Frank", "Grace", "Henry", "Irene", "James",
        "Karen", "Louis", "Maria", "Nathan", "Olivia", "Peter",
    ];
    const SPOUSE_VERBS: [&str; 3] = ["married", "wed", "exchanged vows with"];
    const OTHER_VERBS: [&str; 4] = ["met", "interviewed", "debated", "praised"];
    let mut rng = SplitMix64::new(seed);
    // Plant a fixed spouse relation over name pairs.
    let mut spouse_pairs = Vec::new();
    for i in (0..FIRST.len()).step_by(2) {
        let (a, b) = (FIRST[i], FIRST[i + 1]);
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        spouse_pairs.push(format!("{a}|{b}"));
    }
    let mut corpus = Vec::with_capacity(articles);
    for _ in 0..articles {
        let mut article = String::new();
        let sentences = 2 + rng.index(3);
        for _ in 0..sentences {
            // News about couples mentions them often: 40% of sentences
            // feature a planted spouse pair, keeping classes balanced
            // enough for distant supervision to work.
            let (a, b, is_spouse) = if rng.chance(0.4) {
                let pair = &spouse_pairs[rng.index(spouse_pairs.len())];
                let (a, b) = pair.split_once('|').unwrap();
                (a, b, true)
            } else {
                let i = rng.index(FIRST.len());
                let mut j = rng.index(FIRST.len());
                while j == i {
                    j = rng.index(FIRST.len());
                }
                let (a, b) = (FIRST[i], FIRST[j]);
                let key = if a < b { format!("{a}|{b}") } else { format!("{b}|{a}") };
                (a, b, spouse_pairs.contains(&key))
            };
            // Spouse mentions use wedding vocabulary most of the time;
            // other pairs only rarely (confounders).
            let wedding_vocab = if is_spouse { rng.chance(0.85) } else { rng.chance(0.04) };
            let verb = if wedding_vocab {
                SPOUSE_VERBS[rng.index(SPOUSE_VERBS.len())]
            } else {
                OTHER_VERBS[rng.index(OTHER_VERBS.len())]
            };
            let year = 1980 + rng.next_below(40);
            article.push_str(&format!("{a} {verb} {b} in {year}. "));
        }
        corpus.push(article);
    }
    (corpus, spouse_pairs)
}

/// MNIST-like images: 10 fixed class templates (seeded) with per-image
/// pixel noise. Returns row-major images, labels, and the flat dimension.
pub fn mnist_images(
    train: usize,
    test: usize,
    side: usize,
    seed: u64,
) -> (Vec<(Vec<f64>, u8, bool)>, usize) {
    let dim = side * side;
    let mut rng = SplitMix64::new(seed);
    // Templates: smooth random blobs per class.
    let templates: Vec<Vec<f64>> = (0..10)
        .map(|_| {
            let cx = rng.range_f64(0.2, 0.8) * side as f64;
            let cy = rng.range_f64(0.2, 0.8) * side as f64;
            let sx = rng.range_f64(1.5, 4.0);
            let sy = rng.range_f64(1.5, 4.0);
            let angle = rng.range_f64(0.0, std::f64::consts::PI);
            (0..dim)
                .map(|p| {
                    let x = (p % side) as f64 - cx;
                    let y = (p / side) as f64 - cy;
                    let xr = x * angle.cos() + y * angle.sin();
                    let yr = -x * angle.sin() + y * angle.cos();
                    (-(xr * xr) / (2.0 * sx * sx) - (yr * yr) / (2.0 * sy * sy)).exp()
                })
                .collect()
        })
        .collect();
    let mut images = Vec::with_capacity(train + test);
    for n in 0..train + test {
        let class = (n % 10) as u8;
        let noise = 0.25;
        let pixels: Vec<f64> = templates[class as usize]
            .iter()
            .map(|t| (t + rng.next_gaussian() * noise).clamp(0.0, 1.0))
            .collect();
        images.push((pixels, class, n < train));
    }
    (images, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_is_deterministic_and_well_formed() {
        let (train_a, test_a) = census_csv(50, 20, 7);
        let (train_b, _) = census_csv(50, 20, 7);
        assert_eq!(train_a, train_b);
        let (train_c, _) = census_csv(50, 20, 8);
        assert_ne!(train_a, train_c);
        assert_eq!(train_a.lines().count(), 50);
        assert_eq!(test_a.lines().count(), 20);
        for line in train_a.lines() {
            assert_eq!(line.split(',').count(), CENSUS_COLUMNS.len());
        }
        // Both classes present.
        let positives = train_a.lines().filter(|l| l.ends_with(",1")).count();
        assert!(positives > 5 && positives < 45, "positives {positives}");
    }

    #[test]
    fn genomics_corpus_contains_planted_genes() {
        let (articles, genes) = genomics_corpus(10, 4, 3, 4, 5);
        assert_eq!(articles.len(), 10);
        assert_eq!(genes.len(), 12);
        assert_eq!(planted_cluster("g2x3"), Some(2));
        assert_eq!(planted_cluster("notagene"), None);
        let text = articles.join(" ");
        let mentioned = genes.iter().filter(|g| text.contains(g.as_str())).count();
        assert!(mentioned >= 10, "most genes mentioned, got {mentioned}");
    }

    #[test]
    fn ie_corpus_has_spouses_and_verbs() {
        let (articles, pairs) = ie_corpus(30, 3);
        assert_eq!(pairs.len(), 8);
        let text = articles.join(" ");
        assert!(text.contains("married") || text.contains("wed"));
        for p in &pairs {
            let (a, b) = p.split_once('|').unwrap();
            assert!(a < b, "pair keys are ordered: {p}");
        }
    }

    #[test]
    fn mnist_images_shape_and_classes() {
        let (images, dim) = mnist_images(40, 10, 8, 2);
        assert_eq!(dim, 64);
        assert_eq!(images.len(), 50);
        assert!(images.iter().all(|(px, _, _)| px.len() == 64));
        assert!(images.iter().all(|(px, _, _)| px.iter().all(|v| (0.0..=1.0).contains(v))));
        assert_eq!(images.iter().filter(|(_, _, train)| *train).count(), 40);
        // Same class images are more similar than cross-class ones.
        let d =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let same = d(&images[0].0, &images[10].0); // class 0 vs class 0
        let diff = d(&images[0].0, &images[5].0); // class 0 vs class 5
        assert!(same < diff, "same {same} diff {diff}");
    }
}
