//! The Census workflow (paper Figure 3a; source: the DeepDive census
//! example (1)).
//!
//! A classification task over structured rows with fine-grained features:
//! per-column extractors, a learned age discretization, an interaction
//! feature, logistic regression, and an accuracy reducer. Iterations
//! follow the paper's running example: DPR changes toggle the
//! `marital_status` extractor and re-bin the bucketizer, L/I changes sweep
//! the regularization parameter, PPR changes version-bump the evaluation
//! UDF.

use crate::gen::{census_csv, CENSUS_COLUMNS};
use crate::iterate::{ChangeKind, Domain};
use crate::Workload;
use helix_core::ops::Algo;
use helix_core::prelude::*;
use helix_data::{Scalar, Value};

/// Mutable spec for the census workflow.
#[derive(Clone, Debug)]
pub struct CensusWorkload {
    /// Training rows to generate.
    pub train_rows: usize,
    /// Test rows to generate.
    pub test_rows: usize,
    /// Generator seed ("expand the corpus" bumps this via data_version).
    pub seed: u64,
    /// Data version (DPR change: new data pull).
    pub data_version: u64,
    /// Bucketizer bins (DPR change).
    pub bins: usize,
    /// Include the marital-status extractor (DPR change; the paper's
    /// Figure 3a `msExt` toggle).
    pub use_marital: bool,
    /// L2 regularization (L/I change; the paper's `regParam`).
    pub l2: f64,
    /// SGD epochs (L/I change).
    pub epochs: usize,
    /// Evaluation UDF version (PPR change).
    pub reducer_version: u64,
    dpr_step: u64,
    li_step: u64,
}

impl Default for CensusWorkload {
    fn default() -> Self {
        CensusWorkload {
            train_rows: 9_000,
            test_rows: 3_000,
            seed: 0xCE5505,
            data_version: 1,
            bins: 10,
            use_marital: false,
            l2: 0.1,
            epochs: 30,
            reducer_version: 1,
            dpr_step: 0,
            li_step: 0,
        }
    }
}

impl CensusWorkload {
    /// A smaller configuration for unit tests.
    pub fn small() -> Self {
        CensusWorkload { train_rows: 300, test_rows: 100, ..Default::default() }
    }

    /// Scale the dataset (`Census 10x` of paper Figure 7).
    #[must_use]
    pub fn scaled(mut self, factor: usize) -> Self {
        self.train_rows *= factor;
        self.test_rows *= factor;
        self
    }
}

impl Workload for CensusWorkload {
    fn name(&self) -> &'static str {
        "census"
    }

    fn domain(&self) -> Domain {
        Domain::SocialSciences
    }

    fn build(&self) -> Workflow {
        let mut wf = Workflow::new(self.name());
        let (train_rows, test_rows, seed) = (self.train_rows, self.test_rows, self.seed);
        let data = wf.source("data", self.data_version, move |_ctx| {
            let (train, test) = census_csv(train_rows, test_rows, seed);
            Ok(Value::records(helix_core::ops::source::lines_batch(&train, &test)?))
        });
        let rows = wf.csv_scan("rows", data, &CENSUS_COLUMNS);
        let edu = wf.field_extractor("eduExt", rows, "education");
        let occ = wf.field_extractor("occExt", rows, "occupation");
        let sex = wf.field_extractor("sexExt", rows, "sex");
        // Hours is discretized like age: raw magnitudes would need feature
        // scaling for SGD, and the paper's census features are categorical.
        let hours = wf.bucketizer("hoursBucket", rows, "hours", 5);
        // Declared but excluded from `examples` below — sliced away, like
        // the paper's raceExt (Figure 3b, grayed out).
        let _race = wf.field_extractor("raceExt", rows, "race");
        let age_bucket = wf.bucketizer("ageBucket", rows, "age", self.bins);
        let edu_x_occ = wf.interaction("eduXocc", edu, occ);
        let target = wf.field_extractor("target", rows, "target");

        let mut extractors = vec![edu, occ, sex, hours, age_bucket, edu_x_occ];
        if self.use_marital {
            let ms = wf.field_extractor("msExt", rows, "marital_status");
            extractors.push(ms);
        }
        let income = wf.examples("income", rows, &extractors, Some(target));
        let model = wf.learner(
            "incPred",
            income,
            Algo::LogisticRegression { l2: self.l2, epochs: self.epochs },
        );
        let predictions = wf.predict("predictions", model, income);
        let checked = wf.accuracy("checked", predictions);
        // The PPR iteration target: a report whose UDF version is bumped.
        let version = self.reducer_version;
        let report = wf.reduce("report", predictions, version, move |v, _| {
            let batch = v.as_collection()?.as_examples()?;
            let positives =
                batch.examples.iter().filter(|e| e.prediction.unwrap_or(0.0) >= 0.5).count() as f64;
            Ok(Value::Scalar(Scalar::Metrics(vec![
                ("predicted_positive".into(), positives),
                ("report_version".into(), version as f64),
            ])))
        });
        wf.output(checked);
        wf.output(report);
        wf
    }

    fn apply_change(&mut self, kind: ChangeKind) {
        match kind {
            ChangeKind::Dpr => {
                // Alternate the paper's two example DPR edits: toggle the
                // marital-status extractor, then re-bin the bucketizer.
                if self.dpr_step.is_multiple_of(2) {
                    self.use_marital = !self.use_marital;
                } else {
                    self.bins = if self.bins == 10 { 8 } else { 10 };
                }
                self.dpr_step += 1;
            }
            ChangeKind::LI => {
                const SWEEP: [f64; 4] = [0.1, 0.01, 1.0, 0.5];
                self.li_step += 1;
                self.l2 = SWEEP[(self.li_step as usize) % SWEEP.len()];
            }
            ChangeKind::Ppr => {
                self.reducer_version += 1;
            }
        }
    }

    fn scripted_sequence(&self) -> Vec<ChangeKind> {
        // Frozen draw from the SocialSciences distribution; front-loaded
        // DPR (the only iterations DeepDive supports) and PPR-dominated
        // overall, matching the bands of paper Figure 5(a).
        use ChangeKind::*;
        vec![Dpr, Dpr, Dpr, Ppr, LI, Ppr, Ppr, Ppr, Ppr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterate::run_iterations;
    use helix_flow::oep::State;

    #[test]
    fn initial_census_runs_and_learns() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let wl = CensusWorkload::small();
        let report = session.run(&wl.build()).unwrap();
        let acc = report.output_scalar("checked").unwrap().metric("accuracy").unwrap();
        assert!(acc > 0.7, "planted relationship should be learnable, got {acc}");
        assert!(report.output_scalar("report").is_some());
        // raceExt contributes to no output: sliced away.
        let race_state =
            report.states.iter().find(|(n, _)| n == "raceExt").map(|(_, s)| *s).unwrap();
        assert_eq!(race_state, State::Prune);
    }

    #[test]
    fn ppr_iteration_reuses_dpr_and_li() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = CensusWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::Ppr]).unwrap();
        let first = &reports[0];
        let second = &reports[1];
        // The PPR iteration must not recompute DPR or L/I operators.
        let recomputed: Vec<&str> = second
            .states
            .iter()
            .filter(|(_, s)| *s == State::Compute)
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(recomputed.contains(&"report"), "changed reducer recomputes");
        assert!(
            !recomputed.contains(&"incPred") && !recomputed.contains(&"rows"),
            "unchanged DPR/LI must not recompute, got {recomputed:?}"
        );
        assert!(second.total_nanos() < first.total_nanos());
    }

    #[test]
    fn dpr_toggle_adds_and_removes_marital_extractor() {
        let mut wl = CensusWorkload::small();
        assert!(wl.build().node_by_name("msExt").is_none());
        wl.apply_change(ChangeKind::Dpr);
        assert!(wl.build().node_by_name("msExt").is_some());
        wl.apply_change(ChangeKind::Dpr); // re-bin
        wl.apply_change(ChangeKind::Dpr); // toggle off
        assert!(wl.build().node_by_name("msExt").is_none());
    }

    #[test]
    fn li_change_deprecates_model_but_not_dpr() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = CensusWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::LI]).unwrap();
        let second = &reports[1];
        let state =
            |n: &str| second.states.iter().find(|(name, _)| name == n).map(|(_, s)| *s).unwrap();
        assert_eq!(state("incPred"), State::Compute, "model retrains");
        assert_eq!(state("predictions"), State::Compute, "inference recomputes");
        assert_ne!(state("income"), State::Compute, "assembled examples reused");
    }
}
