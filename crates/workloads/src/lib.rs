//! # helix-workloads
//!
//! The paper's four evaluation workflows (Table 2) as reproducible,
//! seedable Rust pipelines over synthetic data, plus the iterative-change
//! simulator of §6.3:
//!
//! | workflow  | paper source          | domain           | task                       |
//! |-----------|-----------------------|------------------|----------------------------|
//! | [`census`]   | DeepDive census (1)   | social sciences  | supervised classification |
//! | [`genomics`] | Example 1 / (60)      | natural sciences | unsupervised, 2 learners  |
//! | [`ie`]       | DeepDive spouse (19)  | NLP              | structured prediction      |
//! | [`mnist`]    | KeystoneML (64)       | computer vision  | multiclass classification |
//!
//! Each workload implements [`Workload`]: `build()` produces the current
//! [`Workflow`]; `apply_change(kind)` mutates the spec the way the paper's
//! simulated developer would ("randomly choose an operator of the drawn
//! type and modify its source code"); `scripted_sequence()` is the fixed
//! change schedule used by the figure harness (drawn once from the survey
//! distributions of citation 78 and frozen for reproducibility — the bands shown
//! under Figure 5's curves).
//!
//! Substitutions for the paper's proprietary datasets are documented in
//! DESIGN.md §4; every generator is deterministic given its seed.

pub mod census;
pub mod gen;
pub mod genomics;
pub mod ie;
pub mod iterate;
pub mod mnist;

pub use census::CensusWorkload;
pub use genomics::GenomicsWorkload;
pub use ie::IeWorkload;
pub use iterate::{run_iterations, ChangeKind, Domain};
pub use mnist::MnistWorkload;

use helix_core::Workflow;

/// A paper workload: a mutable spec that can always rebuild its current
/// workflow version.
pub trait Workload {
    /// Workflow name (stable across iterations).
    fn name(&self) -> &'static str;
    /// Application domain (selects the survey change distribution).
    fn domain(&self) -> Domain;
    /// Build the current version of the workflow.
    fn build(&self) -> Workflow;
    /// Apply one iterative modification of the given kind.
    fn apply_change(&mut self, kind: ChangeKind);
    /// The frozen change schedule used by the figure harness (length =
    /// iterations − 1; iteration 0 is the initial version).
    fn scripted_sequence(&self) -> Vec<ChangeKind>;
}
