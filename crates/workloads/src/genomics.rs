//! The Genomics workflow (paper Example 1 / §6.2, source (60)).
//!
//! Two unsupervised learning steps: word2vec embeddings over a literature
//! corpus, then k-means over the embeddings of knowledge-base genes, with
//! qualitative cluster reporting. The word2vec step dominates compute,
//! which is exactly what makes cross-iteration reuse pay off when only the
//! clustering granularity (`k`) or the report changes.

use crate::gen::{genomics_corpus, planted_cluster};
use crate::iterate::{ChangeKind, Domain};
use crate::Workload;
use helix_core::ops::Algo;
use helix_core::prelude::*;
use helix_data::{FieldValue, Record, RecordBatch, Scalar, Schema, Value};
use helix_ml::metrics::normalized_mutual_information;

/// Mutable spec for the genomics workflow.
#[derive(Clone, Debug)]
pub struct GenomicsWorkload {
    /// Articles in the corpus (DPR change: corpus expansion).
    pub articles: usize,
    /// Sentences per article.
    pub sentences_per_article: usize,
    /// Planted functional clusters.
    pub planted_clusters: usize,
    /// Genes per planted cluster.
    pub genes_per_cluster: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Data version (bumped with corpus expansion).
    pub data_version: u64,
    /// Embedding dimensionality (L/I change).
    pub embedding_dim: usize,
    /// word2vec epochs (L/I change).
    pub w2v_epochs: usize,
    /// k-means cluster count (L/I change: "tweak the number of clusters").
    pub k: usize,
    /// Report UDF version (PPR change).
    pub reducer_version: u64,
    li_step: u64,
}

impl Default for GenomicsWorkload {
    fn default() -> Self {
        GenomicsWorkload {
            articles: 320,
            sentences_per_article: 10,
            planted_clusters: 4,
            genes_per_cluster: 5,
            seed: 0x6E0E,
            data_version: 1,
            embedding_dim: 32,
            w2v_epochs: 4,
            k: 4,
            reducer_version: 1,
            li_step: 0,
        }
    }
}

impl GenomicsWorkload {
    /// A smaller configuration for unit tests.
    pub fn small() -> Self {
        GenomicsWorkload { articles: 60, sentences_per_article: 5, ..Default::default() }
    }
}

impl Workload for GenomicsWorkload {
    fn name(&self) -> &'static str {
        "genomics"
    }

    fn domain(&self) -> Domain {
        Domain::NaturalSciences
    }

    fn build(&self) -> Workflow {
        let mut wf = Workflow::new(self.name());
        let (articles, spa, clusters, gpc, seed) = (
            self.articles,
            self.sentences_per_article,
            self.planted_clusters,
            self.genes_per_cluster,
            self.seed,
        );
        let corpus = wf.source("corpus", self.data_version, move |_ctx| {
            let (articles, _) = genomics_corpus(articles, spa, clusters, gpc, seed);
            let schema = Schema::new(["text"]);
            let rows =
                articles.into_iter().map(|a| Record::train(vec![FieldValue::Text(a)])).collect();
            Ok(Value::records(RecordBatch::new(schema, rows)?))
        });
        let kb = wf.source("geneKb", 1, move |_ctx| {
            let (_, genes) = genomics_corpus(1, 1, clusters, gpc, seed);
            let schema = Schema::new(["gene"]);
            let rows =
                genes.into_iter().map(|g| Record::train(vec![FieldValue::Text(g)])).collect();
            Ok(Value::records(RecordBatch::new(schema, rows)?))
        });
        let tokens = wf.tokenize("tokens", corpus, "text");
        let embeddings = wf.learner(
            "word2vec",
            tokens,
            Algo::Word2Vec { dim: self.embedding_dim, epochs: self.w2v_epochs },
        );
        let mentions = wf.kb_join("geneMentions", tokens, kb, "gene", 2);
        let gene_vectors = wf.embed_entities("geneVectors", embeddings, mentions);
        let kmeans = wf.learner("kmeans", gene_vectors, Algo::KMeans { k: self.k });
        let clustered = wf.predict("clustered", kmeans, gene_vectors);
        let summary = wf.cluster_summary("clusterSizes", clustered, self.k);
        let version = self.reducer_version;
        let quality = wf.reduce("clusterQuality", clustered, version, move |v, _| {
            let batch = v.as_collection()?.as_examples()?;
            let mut truth = Vec::new();
            let mut predicted = Vec::new();
            for e in &batch.examples {
                if let (Some(tag), Some(p)) = (e.tag.as_deref(), e.prediction) {
                    if let Some(c) = planted_cluster(tag) {
                        truth.push(c);
                        predicted.push(p as usize);
                    }
                }
            }
            let nmi = normalized_mutual_information(&truth, &predicted);
            Ok(Value::Scalar(Scalar::Metrics(vec![
                ("nmi".into(), nmi),
                ("genes_clustered".into(), truth.len() as f64),
                ("report_version".into(), version as f64),
            ])))
        });
        wf.output(summary);
        wf.output(quality);
        wf
    }

    fn apply_change(&mut self, kind: ChangeKind) {
        match kind {
            ChangeKind::Dpr => {
                // Corpus expansion (paper Example 1(i)): more articles,
                // new data version.
                self.articles += self.articles / 4;
                self.data_version += 1;
            }
            ChangeKind::LI => {
                // Alternate between re-granulating the clustering and
                // changing the embedding algorithm's dimensionality
                // (Example 1(iv)-(v)).
                if self.li_step.is_multiple_of(2) {
                    self.k = if self.k == 4 { 6 } else { 4 };
                } else {
                    self.embedding_dim = if self.embedding_dim == 24 { 32 } else { 24 };
                }
                self.li_step += 1;
            }
            ChangeKind::Ppr => {
                self.reducer_version += 1;
            }
        }
    }

    fn scripted_sequence(&self) -> Vec<ChangeKind> {
        // Frozen draw from the NaturalSciences distribution: L/I-heavy
        // with PPR inspection rounds (paper Figure 5(b) bands).
        use ChangeKind::*;
        vec![LI, Ppr, Ppr, LI, Ppr, LI, Ppr, Ppr, LI]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterate::run_iterations;
    use helix_flow::oep::State;

    #[test]
    fn clusters_recover_planted_structure() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let wl = GenomicsWorkload::small();
        let report = session.run(&wl.build()).unwrap();
        let quality = report.output_scalar("clusterQuality").unwrap();
        let nmi = quality.metric("nmi").unwrap();
        let n = quality.metric("genes_clustered").unwrap();
        assert!(n >= 15.0, "most KB genes embedded, got {n}");
        assert!(nmi > 0.35, "planted clusters should be partially recovered, nmi {nmi}");
    }

    #[test]
    fn k_change_reuses_embeddings() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = GenomicsWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::LI]).unwrap();
        let second = &reports[1];
        let state =
            |n: &str| second.states.iter().find(|(name, _)| name == n).map(|(_, s)| *s).unwrap();
        // The expensive word2vec model is untouched by a k change.
        assert_ne!(state("word2vec"), State::Compute, "embeddings reused");
        assert_eq!(state("kmeans"), State::Compute, "clustering retrains");
        assert!(
            second.total_nanos() < reports[0].total_nanos(),
            "reuse must beat recompute: {} vs {}",
            second.total_nanos(),
            reports[0].total_nanos()
        );
    }

    #[test]
    fn ppr_iteration_is_cheap() {
        let mut session = Session::new(SessionConfig::in_memory()).unwrap();
        let mut wl = GenomicsWorkload::small();
        let reports = run_iterations(&mut session, &mut wl, &[ChangeKind::Ppr]).unwrap();
        let second = &reports[1];
        let computed = second.states.iter().filter(|(_, s)| *s == State::Compute).count();
        assert!(computed <= 2, "only the changed reducer should recompute, got {computed}");
        assert!(second.total_nanos() < reports[0].total_nanos() / 2);
    }
}
