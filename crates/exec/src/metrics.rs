//! Run-time accounting for the paper's figures.
//!
//! Each operator belongs to one workflow component — DPR, L/I, or PPR
//! (paper §2) — and each finishes an iteration in one of the OEP states
//! (computed, loaded, pruned). Figures 5/6/9 plot exactly these sums, so
//! the engine records a [`NodeRun`] per node per iteration and folds them
//! into [`IterationMetrics`].

use helix_common::timing::Nanos;

/// Workflow component of an operator (paper §2: DPR, L/I, PPR).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Data preprocessing.
    Dpr,
    /// Learning / inference.
    LearnInference,
    /// Postprocessing.
    Ppr,
}

impl Phase {
    /// Short label used in figure output (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Dpr => "DPR",
            Phase::LearnInference => "L/I",
            Phase::Ppr => "PPR",
        }
    }
}

/// How a node was resolved this iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Computed from inputs (`S_c`).
    Computed,
    /// Loaded from the catalog (`S_l`).
    Loaded,
    /// Pruned (`S_p`).
    Pruned,
}

/// One node's outcome in one iteration.
#[derive(Clone, Debug)]
pub struct NodeRun {
    /// DAG node id.
    pub node: u32,
    /// Operator name (reports).
    pub name: String,
    /// Workflow component.
    pub phase: Phase,
    /// Resolution state.
    pub state: RunState,
    /// Time spent computing or loading (0 when pruned).
    pub run_nanos: Nanos,
    /// Time spent materializing the output (0 when not materialized).
    pub materialize_nanos: Nanos,
    /// Bytes written when materialized.
    pub materialized_bytes: u64,
    /// Approximate size of the in-memory output (0 when pruned).
    pub output_bytes: u64,
}

/// Aggregated metrics for one iteration of one workflow.
#[derive(Clone, Debug, Default)]
pub struct IterationMetrics {
    /// Iteration number (0-based).
    pub iteration: u64,
    /// Run time per component.
    pub dpr_nanos: Nanos,
    /// L/I run time.
    pub li_nanos: Nanos,
    /// PPR run time.
    pub ppr_nanos: Nanos,
    /// Total materialization time.
    pub materialize_nanos: Nanos,
    /// Bytes written to the catalog this iteration.
    pub materialized_bytes: u64,
    /// Node-state tallies.
    pub computed: usize,
    /// Loaded node count.
    pub loaded: usize,
    /// Of the loaded nodes, how many were served by an artifact another
    /// tenant stored (cross-tenant hits; always 0 for solo sessions).
    pub cross_loaded: usize,
    /// Pruned node count.
    pub pruned: usize,
    /// Wall-clock time during which at least one catalog load was in
    /// flight (union of load intervals). Under prefetching and frontier
    /// parallelism loads overlap each other and compute, so this is the
    /// honest I/O exposure of the iteration.
    pub load_nanos: Nanos,
    /// Summed per-load time — what `load_nanos` would be if every load
    /// ran back-to-back (the serial engine's number). Benches must use
    /// `load_nanos` for wall-clock math and this only for volume,
    /// otherwise hidden (overlapped) I/O gets double-counted.
    pub load_cpu_nanos: Nanos,
    /// Peak resident cache bytes.
    pub peak_memory_bytes: u64,
    /// Average resident cache bytes.
    pub avg_memory_bytes: u64,
    /// Catalog footprint at end of iteration.
    pub storage_bytes: u64,
    /// Per-node detail.
    pub node_runs: Vec<NodeRun>,
}

impl IterationMetrics {
    /// Start metrics for `iteration`.
    pub fn new(iteration: u64) -> IterationMetrics {
        IterationMetrics { iteration, ..Default::default() }
    }

    /// Fold in one node outcome.
    pub fn record(&mut self, run: NodeRun) {
        match run.state {
            RunState::Computed => self.computed += 1,
            RunState::Loaded => self.loaded += 1,
            RunState::Pruned => self.pruned += 1,
        }
        match run.phase {
            Phase::Dpr => self.dpr_nanos += run.run_nanos,
            Phase::LearnInference => self.li_nanos += run.run_nanos,
            Phase::Ppr => self.ppr_nanos += run.run_nanos,
        }
        self.materialize_nanos += run.materialize_nanos;
        self.materialized_bytes += run.materialized_bytes;
        self.node_runs.push(run);
    }

    /// Total iteration time: all components + materialization (the paper's
    /// "per-iteration time measures both the time to execute the workflow
    /// and any time spent to materialize intermediate results", §6.4).
    pub fn total_nanos(&self) -> Nanos {
        self.dpr_nanos + self.li_nanos + self.ppr_nanos + self.materialize_nanos
    }

    /// Fractions of nodes in (computed, loaded, pruned) — Figure 8's
    /// series.
    pub fn state_fractions(&self) -> (f64, f64, f64) {
        let total = (self.computed + self.loaded + self.pruned) as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (self.computed as f64 / total, self.loaded as f64 / total, self.pruned as f64 / total)
    }
}

/// Length of the union of half-open time intervals `(start, end)` — the
/// wall-clock during which at least one of the activities was in flight.
/// Used for [`IterationMetrics::load_nanos`] so overlapped I/O counts
/// once.
pub fn interval_union_nanos(spans: &[(Nanos, Nanos)]) -> Nanos {
    let mut sorted: Vec<(Nanos, Nanos)> = spans.iter().copied().filter(|(s, e)| e > s).collect();
    sorted.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(Nanos, Nanos)> = None;
    for (s, e) in sorted {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Cumulative run time over a sequence of iterations (the y-axis of
/// Figures 5, 7 and 9).
pub fn cumulative_nanos(iterations: &[IterationMetrics]) -> Vec<Nanos> {
    let mut acc = 0;
    iterations
        .iter()
        .map(|m| {
            acc += m.total_nanos();
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(phase: Phase, state: RunState, nanos: Nanos) -> NodeRun {
        NodeRun {
            node: 0,
            name: "op".into(),
            phase,
            state,
            run_nanos: nanos,
            materialize_nanos: 0,
            materialized_bytes: 0,
            output_bytes: 0,
        }
    }

    #[test]
    fn component_sums() {
        let mut m = IterationMetrics::new(0);
        m.record(run(Phase::Dpr, RunState::Computed, 100));
        m.record(run(Phase::Dpr, RunState::Loaded, 50));
        m.record(run(Phase::LearnInference, RunState::Computed, 500));
        m.record(run(Phase::Ppr, RunState::Pruned, 0));
        assert_eq!(m.dpr_nanos, 150);
        assert_eq!(m.li_nanos, 500);
        assert_eq!(m.ppr_nanos, 0);
        assert_eq!(m.total_nanos(), 650);
        assert_eq!((m.computed, m.loaded, m.pruned), (2, 1, 1));
    }

    #[test]
    fn materialization_counts_toward_total() {
        let mut m = IterationMetrics::new(1);
        let mut r = run(Phase::Dpr, RunState::Computed, 100);
        r.materialize_nanos = 40;
        r.materialized_bytes = 1024;
        m.record(r);
        assert_eq!(m.total_nanos(), 140);
        assert_eq!(m.materialized_bytes, 1024);
    }

    #[test]
    fn state_fractions_sum_to_one() {
        let mut m = IterationMetrics::new(0);
        for _ in 0..2 {
            m.record(run(Phase::Dpr, RunState::Computed, 1));
        }
        m.record(run(Phase::Ppr, RunState::Loaded, 1));
        m.record(run(Phase::Ppr, RunState::Pruned, 0));
        let (c, l, p) = m.state_fractions();
        assert!((c + l + p - 1.0).abs() < 1e-12);
        assert!((c - 0.5).abs() < 1e-12);
        assert_eq!(IterationMetrics::new(0).state_fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn interval_union_counts_overlap_once() {
        assert_eq!(interval_union_nanos(&[]), 0);
        assert_eq!(interval_union_nanos(&[(0, 10)]), 10);
        // Overlapping, nested, disjoint, empty, and out-of-order spans.
        assert_eq!(interval_union_nanos(&[(5, 15), (0, 10)]), 15);
        assert_eq!(interval_union_nanos(&[(0, 20), (5, 10)]), 20);
        assert_eq!(interval_union_nanos(&[(0, 5), (10, 15)]), 10);
        assert_eq!(interval_union_nanos(&[(3, 3), (0, 4)]), 4);
        // Three loads of 10 each, fully concurrent: wall is 10, cpu is 30.
        assert_eq!(interval_union_nanos(&[(0, 10), (0, 10), (0, 10)]), 10);
    }

    #[test]
    fn cumulative_series() {
        let mut a = IterationMetrics::new(0);
        a.record(run(Phase::Dpr, RunState::Computed, 10));
        let mut b = IterationMetrics::new(1);
        b.record(run(Phase::Ppr, RunState::Computed, 5));
        assert_eq!(cumulative_nanos(&[a, b]), vec![10, 15]);
        assert!(cumulative_nanos(&[]).is_empty());
    }
}
