//! # helix-exec
//!
//! Execution-engine infrastructure (the paper used Spark for this layer;
//! we provide the single-process, multi-threaded equivalent):
//!
//! * [`budget`] — the process-wide [`CoreBudget`]: a shared pool of core
//!   tokens that node-level scheduling, data-parallel operators, and
//!   concurrent service sessions all draw from, so total working threads
//!   never exceed the machine (the ROADMAP's `workers²` fix).
//! * [`pool`] — a scoped worker pool for data-parallel operators.
//!   "Cluster size" in the paper's Figure 7(b) maps to pool width here.
//!   Budget-governed pools treat their width as a ceiling and degrade
//!   gracefully (deterministically) when tokens are scarce.
//! * [`cache`] — the in-memory intermediate cache with HELIX's *eager*
//!   eviction of out-of-scope nodes (paper §5.4 "Cache Pruning": "HELIX
//!   improves upon [Spark's LRU] by actively managing the set of data to
//!   evict"), plus an LRU policy used by ablation benches.
//! * [`memory`] — resident-byte sampling behind the paper's Figure 10
//!   (peak and average memory per iteration).
//! * [`metrics`] — per-node and per-iteration run-time accounting broken
//!   down by workflow component (DPR / L/I / PPR / materialization), the
//!   series plotted in Figures 5, 6 and 9.

pub mod budget;
pub mod cache;
pub mod memory;
pub mod metrics;
pub mod pool;

pub use budget::{CoreBudget, CoreLease, OwnedCoreLease, ReleaseNotifier};
pub use cache::{CachePolicy, SharedValueCache, ValueCache};
pub use memory::{MemoryTracker, SharedMemoryTracker};
pub use metrics::{interval_union_nanos, IterationMetrics, NodeRun, Phase, RunState};
pub use pool::{Executor, TaskQueue, WorkerPool};
