//! Scoped worker pool for data-parallel operators.
//!
//! HELIX "defers operator pipelining and scheduling for asynchronous
//! execution to Spark" (paper §2.1); in this reproduction, operators that
//! are data-parallel (scanning, extraction, inference) split their input
//! into `workers` chunks processed on scoped threads. The pool width plays
//! the role of cluster size in the paper's scalability experiment
//! (Figure 7b: 2/4/8 workers).

use crossbeam::thread;

/// A fixed-width data-parallel executor.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Pool with `workers` threads (minimum 1).
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool { workers: workers.max(1) }
    }

    /// Single-threaded pool.
    pub fn serial() -> WorkerPool {
        WorkerPool { workers: 1 }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `items` in parallel, preserving input order.
    ///
    /// Chunks are contiguous ranges of roughly equal size; with one worker
    /// the map runs inline (no thread overhead for the serial baseline).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = items.len().div_ceil(self.workers);
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        thread::scope(|scope| {
            let mut remaining: &mut [Option<R>] = &mut out;
            let mut offset = 0;
            for piece in items.chunks(chunk) {
                let (slot, rest) = remaining.split_at_mut(piece.len());
                remaining = rest;
                let f = &f;
                let _ = offset;
                scope.spawn(move |_| {
                    for (s, item) in slot.iter_mut().zip(piece) {
                        *s = Some(f(item));
                    }
                });
                offset += piece.len();
            }
        })
        .expect("worker panicked");
        out.into_iter().map(|r| r.expect("all slots filled")).collect()
    }

    /// Fold each parallel chunk with `fold`, then combine chunk results
    /// with `combine` (deterministic: combination happens in chunk order).
    pub fn map_reduce<T, A, F, C>(&self, items: &[T], init: A, fold: F, combine: C) -> A
    where
        T: Sync,
        A: Send + Clone,
        F: Fn(A, &T) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.iter().fold(init, &fold);
        }
        let chunk = items.len().div_ceil(self.workers);
        let partials: Vec<A> = thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|piece| {
                    let fold = &fold;
                    let init = init.clone();
                    scope.spawn(move |_| piece.iter().fold(init, fold))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("scope failed");
        let mut iter = partials.into_iter();
        let first = iter.next().unwrap_or(init);
        iter.fold(first, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map(&items, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty_and_single() {
        let pool = WorkerPool::new(4);
        assert!(pool.map(&Vec::<u32>::new(), |x| *x).is_empty());
        assert_eq!(pool.map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn map_reduce_matches_serial() {
        let items: Vec<u64> = (1..=100).collect();
        let serial: u64 = items.iter().sum();
        for workers in [1, 3, 8] {
            let pool = WorkerPool::new(workers);
            let total = pool.map_reduce(&items, 0u64, |acc, x| acc + x, |a, b| a + b);
            assert_eq!(total, serial, "workers={workers}");
        }
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn parallel_speedup_on_cpu_bound_work() {
        // A coarse smoke test: 4 workers should not be slower than 1 on
        // embarrassingly parallel work (allowing generous scheduling slack).
        let items: Vec<u64> = (0..64).collect();
        let busy = |x: &u64| -> u64 {
            let mut acc = *x;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let t1 = std::time::Instant::now();
        let serial = WorkerPool::serial().map(&items, busy);
        let serial_time = t1.elapsed();
        let t2 = std::time::Instant::now();
        let parallel = WorkerPool::new(4).map(&items, busy);
        let parallel_time = t2.elapsed();
        assert_eq!(serial, parallel);
        assert!(
            parallel_time < serial_time * 2,
            "parallel {parallel_time:?} vs serial {serial_time:?}"
        );
    }
}
