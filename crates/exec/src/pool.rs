//! Scoped worker pool for data-parallel operators and for the engine's
//! frontier scheduler.
//!
//! HELIX "defers operator pipelining and scheduling for asynchronous
//! execution to Spark" (paper §2.1); in this reproduction, operators that
//! are data-parallel (scanning, extraction, inference) split their input
//! into `workers` chunks processed on scoped threads, and the execution
//! engine dispatches whole ready DAG nodes onto the same pool width via
//! [`WorkerPool::with_executor`]. The pool width plays the role of
//! cluster size in the paper's scalability experiment (Figure 7b:
//! 2/4/8 workers).
//!
//! Built on `std::thread::scope` — no external thread crate needed.
//!
//! ## Core-token budgeting
//!
//! A pool may carry a shared [`CoreBudget`] handle
//! ([`WorkerPool::budgeted`]). Such a pool treats its width as a *ceiling*,
//! not an entitlement: before spawning extra threads it leases tokens from
//! the budget (non-blocking) and runs with however many it was granted —
//! down to fully inline on the caller's thread when the budget is
//! exhausted. Crucially, work is always *chunked* by the nominal width and
//! combined in chunk order, so the grant size affects wall-clock time
//! only, never results. This is how node-level and data-level parallelism
//! split the same cores instead of multiplying into `workers²` threads.

use crate::budget::{CoreBudget, CoreLease};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};

/// A fixed-width data-parallel executor, optionally governed by a shared
/// core-token budget.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    workers: usize,
    budget: Option<Arc<CoreBudget>>,
}

impl WorkerPool {
    /// Pool with `workers` threads (minimum 1), unbudgeted.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool { workers: workers.max(1), budget: None }
    }

    /// Pool with `workers` as a ceiling, drawing extra threads from a
    /// shared core budget.
    pub fn budgeted(workers: usize, budget: Arc<CoreBudget>) -> WorkerPool {
        WorkerPool { workers: workers.max(1), budget: Some(budget) }
    }

    /// Single-threaded pool.
    pub fn serial() -> WorkerPool {
        WorkerPool { workers: 1, budget: None }
    }

    /// Number of workers (the nominal width; a budgeted pool may run
    /// narrower).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared core budget, if this pool is governed by one.
    pub fn budget(&self) -> Option<&Arc<CoreBudget>> {
        self.budget.as_ref()
    }

    /// Lease up to `wanted` extra threads beyond the caller's own. An
    /// unbudgeted pool always grants in full.
    fn lease_extra(&self, wanted: usize) -> (usize, Option<CoreLease<'_>>) {
        match &self.budget {
            None => (wanted, None),
            Some(budget) => {
                let lease = budget.try_acquire(wanted);
                (lease.tokens(), Some(lease))
            }
        }
    }

    /// Map `f` over `items` in parallel, preserving input order.
    ///
    /// Chunks are contiguous ranges of roughly equal size derived from the
    /// *nominal* width — a budgeted pool granted fewer tokens executes the
    /// same chunk list on fewer threads, so results are identical either
    /// way. With one worker the map runs inline (no thread overhead for
    /// the serial baseline).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = items.len().div_ceil(self.workers);
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let mut jobs: Vec<(&[T], &mut [Option<R>])> = Vec::new();
        {
            let mut remaining: &mut [Option<R>] = &mut out;
            for piece in items.chunks(chunk) {
                let (slot, rest) = remaining.split_at_mut(piece.len());
                remaining = rest;
                jobs.push((piece, slot));
            }
        }
        let (extra, lease) = self.lease_extra(jobs.len() - 1);
        let queue = Mutex::new(jobs.into_iter());
        let work = || loop {
            let job = queue.lock().expect("map queue poisoned").next();
            let Some((piece, slot)) = job else { break };
            for (s, item) in slot.iter_mut().zip(piece) {
                *s = Some(f(item));
            }
        };
        if extra == 0 {
            work();
        } else {
            std::thread::scope(|scope| {
                let worker = &work;
                for _ in 0..extra {
                    scope.spawn(worker);
                }
                work();
            });
        }
        drop(lease);
        out.into_iter().map(|r| r.expect("all slots filled")).collect()
    }

    /// Fold each parallel chunk with `fold`, then combine chunk results
    /// with `combine` (deterministic: chunking follows the nominal width
    /// and combination happens in chunk order, independent of how many
    /// threads the budget granted).
    pub fn map_reduce<T, A, F, C>(&self, items: &[T], init: A, fold: F, combine: C) -> A
    where
        T: Sync,
        A: Send + Clone,
        F: Fn(A, &T) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.iter().fold(init, &fold);
        }
        let chunk = items.len().div_ceil(self.workers);
        let pieces: Vec<&[T]> = items.chunks(chunk).collect();
        let mut partials: Vec<Option<A>> = Vec::with_capacity(pieces.len());
        partials.resize_with(pieces.len(), || None);
        // Init clones are made up front on the caller thread so worker
        // closures never touch `init` itself (keeps the bounds at
        // `A: Send + Clone`, no `Sync` required).
        let mut jobs: Vec<(&[T], &mut Option<A>, A)> = Vec::new();
        {
            let mut remaining: &mut [Option<A>] = &mut partials;
            for piece in pieces {
                let (slot, rest) = remaining.split_at_mut(1);
                remaining = rest;
                jobs.push((piece, &mut slot[0], init.clone()));
            }
        }
        let (extra, lease) = self.lease_extra(jobs.len() - 1);
        let queue = Mutex::new(jobs.into_iter());
        let work = || loop {
            let job = queue.lock().expect("map_reduce queue poisoned").next();
            let Some((piece, slot, seed)) = job else { break };
            *slot = Some(piece.iter().fold(seed, &fold));
        };
        if extra == 0 {
            work();
        } else {
            std::thread::scope(|scope| {
                let worker = &work;
                for _ in 0..extra {
                    scope.spawn(worker);
                }
                work();
            });
        }
        drop(lease);
        let mut iter = partials.into_iter().map(|p| p.expect("all partials filled"));
        let first = iter.next().unwrap_or(init);
        iter.fold(first, combine)
    }

    /// Run `coordinator` with a dynamic work-submission handle backed by
    /// `self.workers` scoped threads.
    ///
    /// Jobs submitted through the [`Executor`] are executed by `worker` in
    /// FIFO submission order (picked up as threads free up) and completions
    /// are delivered through [`Executor::recv`] in *completion* order. The
    /// engine's frontier scheduler is the main client: it submits every
    /// ready DAG node and retires nodes as they finish.
    ///
    /// Shutdown is structural: when `coordinator` returns, the queue is
    /// closed and all workers join before `with_executor` returns.
    ///
    /// On a budgeted pool the worker count is `1 + granted`: one worker is
    /// backed by the caller's own token (the coordinator mostly blocks in
    /// [`Executor::recv`] while workers run), and each extra worker needs
    /// a token leased from the shared budget. A tight budget degrades to a
    /// single worker thread, never to zero.
    pub fn with_executor<J, O, W, C, R>(&self, worker: W, coordinator: C) -> R
    where
        J: Send,
        O: Send,
        W: Fn(J) -> O + Sync,
        C: FnOnce(&Executor<'_, J, O>) -> R,
    {
        let (extra, lease) = self.lease_extra(self.workers - 1);
        let spawn_count = match &self.budget {
            None => self.workers,
            Some(_) => 1 + extra,
        };
        let queue = JobQueue::new();
        let (tx, rx) = channel::<O>();
        let result = std::thread::scope(|scope| {
            for _ in 0..spawn_count {
                let queue = &queue;
                let worker = &worker;
                let tx = tx.clone();
                scope.spawn(move || {
                    // If this worker's job panics, close the queue on the
                    // way out: surviving workers then drain and exit, their
                    // senders drop, and a blocked `Executor::recv` fails
                    // loudly instead of deadlocking the coordinator with
                    // a completion that will never arrive.
                    let _guard = PanicGuard { queue };
                    while let Some(job) = queue.pop() {
                        if tx.send(worker(job)).is_err() {
                            break; // coordinator gone; stop early
                        }
                    }
                });
            }
            drop(tx);
            let executor = Executor { queue: &queue, results: rx };
            // Close via a drop guard, not a trailing statement: if the
            // coordinator panics, parked workers must still be released
            // or the scope's implicit join would hang forever.
            let _close = CloseOnDrop { queue: &queue };
            coordinator(&executor)
        });
        drop(lease);
        result
    }
}

/// Closes the job queue when a worker thread unwinds (see
/// [`WorkerPool::with_executor`]).
struct PanicGuard<'a, J> {
    queue: &'a JobQueue<J>,
}

impl<J> Drop for PanicGuard<'_, J> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.queue.close();
        }
    }
}

/// Closes the job queue when the coordinator finishes — by return or by
/// panic.
struct CloseOnDrop<'a, J> {
    queue: &'a JobQueue<J>,
}

impl<J> Drop for CloseOnDrop<'_, J> {
    fn drop(&mut self) {
        self.queue.close();
    }
}

/// Handle passed to the coordinator closure of
/// [`WorkerPool::with_executor`].
pub struct Executor<'a, J, O> {
    queue: &'a JobQueue<J>,
    results: Receiver<O>,
}

impl<J, O> Executor<'_, J, O> {
    /// Enqueue a job for the worker threads.
    pub fn submit(&self, job: J) {
        self.queue.push(job);
    }

    /// Block until the next completion arrives.
    ///
    /// Panics if every worker died without producing one (a worker
    /// panicked mid-job, which also closes the queue and releases the
    /// rest); the originating panic is re-raised when the scope joins.
    pub fn recv(&self) -> O {
        self.results
            .recv()
            .expect("a worker panicked with completions outstanding; aborting executor")
    }
}

/// A closable MPMC FIFO of pending jobs.
///
/// Public because it is the I/O-lane building block outside the pool too:
/// the pipelined engine's background materialization writer drains one of
/// these from a long-lived thread, exactly as `with_executor`'s workers
/// drain theirs.
pub struct TaskQueue<J> {
    state: Mutex<QueueState<J>>,
    ready: Condvar,
}

struct QueueState<J> {
    jobs: VecDeque<J>,
    closed: bool,
}

impl<J> Default for TaskQueue<J> {
    fn default() -> TaskQueue<J> {
        TaskQueue::new()
    }
}

impl<J> TaskQueue<J> {
    /// New open, empty queue.
    pub fn new() -> TaskQueue<J> {
        TaskQueue {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a job (no-op if the queue is closed).
    pub fn push(&self, job: J) {
        let mut state = self.state.lock().expect("queue poisoned");
        if !state.closed {
            state.jobs.push_back(job);
        }
        drop(state);
        self.ready.notify_one();
    }

    /// Block for the next job; `None` once closed and drained.
    pub fn pop(&self) -> Option<J> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Close the queue: consumers drain what is left, then see `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (not including any being executed).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Backwards-compatible internal alias.
type JobQueue<J> = TaskQueue<J>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map(&items, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty_and_single() {
        let pool = WorkerPool::new(4);
        assert!(pool.map(&Vec::<u32>::new(), |x| *x).is_empty());
        assert_eq!(pool.map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn map_reduce_matches_serial() {
        let items: Vec<u64> = (1..=100).collect();
        let serial: u64 = items.iter().sum();
        for workers in [1, 3, 8] {
            let pool = WorkerPool::new(workers);
            let total = pool.map_reduce(&items, 0u64, |acc, x| acc + x, |a, b| a + b);
            assert_eq!(total, serial, "workers={workers}");
        }
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn parallel_speedup_on_cpu_bound_work() {
        // A coarse smoke test: 4 workers should not be slower than 1 on
        // embarrassingly parallel work (allowing generous scheduling slack).
        let items: Vec<u64> = (0..64).collect();
        let busy = |x: &u64| -> u64 {
            let mut acc = *x;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let t1 = std::time::Instant::now();
        let serial = WorkerPool::serial().map(&items, busy);
        let serial_time = t1.elapsed();
        let t2 = std::time::Instant::now();
        let parallel = WorkerPool::new(4).map(&items, busy);
        let parallel_time = t2.elapsed();
        assert_eq!(serial, parallel);
        assert!(
            parallel_time < serial_time * 2,
            "parallel {parallel_time:?} vs serial {serial_time:?}"
        );
    }

    #[test]
    fn executor_runs_all_jobs() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let total: u64 = pool.with_executor(
                |job: u64| job * 2,
                |executor| {
                    for job in 0..100u64 {
                        executor.submit(job);
                    }
                    (0..100).map(|_| executor.recv()).sum()
                },
            );
            assert_eq!(total, (0..100u64).map(|j| j * 2).sum(), "workers={workers}");
        }
    }

    #[test]
    fn executor_supports_incremental_submission() {
        // Submit → recv → submit again (the frontier-scheduling shape).
        let pool = WorkerPool::new(3);
        let outputs = pool.with_executor(
            |job: u32| job + 1,
            |executor| {
                let mut out = Vec::new();
                executor.submit(0);
                for _ in 0..10 {
                    let done = executor.recv();
                    out.push(done);
                    if done < 10 {
                        executor.submit(done);
                    }
                }
                out
            },
        );
        assert_eq!(outputs, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // One of four jobs panics; the coordinator is blocked in recv()
        // for a completion that will never come. The panic guard must turn
        // that into a loud panic (propagated here), not an infinite hang.
        let outcome = std::panic::catch_unwind(|| {
            let pool = WorkerPool::new(2);
            pool.with_executor(
                |job: u32| {
                    if job == 2 {
                        panic!("boom in worker");
                    }
                    job
                },
                |executor| {
                    for job in 0..4 {
                        executor.submit(job);
                    }
                    let mut total = 0;
                    for _ in 0..4 {
                        total += executor.recv();
                    }
                    total
                },
            )
        });
        assert!(outcome.is_err(), "worker panic must propagate to the caller");
    }

    #[test]
    fn coordinator_panic_releases_workers_instead_of_hanging() {
        // The coordinator panics while workers are parked on the queue:
        // the close-on-drop guard must release them so the scope joins
        // and the panic propagates, rather than deadlocking.
        let outcome = std::panic::catch_unwind(|| {
            let pool = WorkerPool::new(4);
            pool.with_executor(
                |job: u32| job,
                |executor| {
                    executor.submit(1);
                    let _ = executor.recv();
                    panic!("coordinator bug");
                },
            )
        });
        assert!(outcome.is_err(), "coordinator panic must propagate to the caller");
    }

    #[test]
    fn budgeted_map_matches_unbudgeted_at_any_grant() {
        // Same items, same nominal width, three budget situations: full
        // grant, partial grant, zero grant (budget pre-drained). Results
        // must be byte-identical in every case.
        let items: Vec<u64> = (0..257).collect();
        let expected = WorkerPool::new(4).map(&items, |x| x * 3 + 1);
        for (total, hold) in [(8usize, 0usize), (8, 6), (1, 1)] {
            let budget = Arc::new(CoreBudget::new(total));
            let hold_lease = budget.try_acquire(hold);
            assert_eq!(hold_lease.tokens(), hold);
            let pool = WorkerPool::budgeted(4, Arc::clone(&budget));
            assert_eq!(pool.map(&items, |x| x * 3 + 1), expected, "total={total} hold={hold}");
            assert_eq!(budget.leased(), hold, "map lease released");
        }
    }

    #[test]
    fn budgeted_map_reduce_is_grant_invariant() {
        let items: Vec<u64> = (1..=1000).collect();
        let expected = WorkerPool::new(8).map_reduce(&items, 0u64, |acc, x| acc + x, |a, b| a + b);
        let budget = Arc::new(CoreBudget::new(1));
        // Whole budget consumed elsewhere: map_reduce must run inline and
        // still produce the identical (chunk-ordered) result.
        let _hold = budget.acquire_one();
        let pool = WorkerPool::budgeted(8, Arc::clone(&budget));
        let total = pool.map_reduce(&items, 0u64, |acc, x| acc + x, |a, b| a + b);
        assert_eq!(total, expected);
        assert_eq!(budget.peak_leased(), 1, "no extra thread was ever backed");
    }

    #[test]
    fn budgeted_pools_never_exceed_the_shared_budget() {
        // Two "sessions" hammer budgeted pools concurrently; the token
        // high-water mark must respect the shared budget even though each
        // pool's nominal width alone would exceed it.
        let budget = Arc::new(CoreBudget::new(3));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let budget = Arc::clone(&budget);
                scope.spawn(move || {
                    let base = budget.acquire_one();
                    let pool = WorkerPool::budgeted(8, Arc::clone(&budget));
                    let items: Vec<u64> = (0..64).collect();
                    for _ in 0..20 {
                        let out = pool.map(&items, |x| x.wrapping_mul(31).wrapping_add(7));
                        assert_eq!(out.len(), 64);
                    }
                    drop(base);
                });
            }
        });
        assert!(
            budget.peak_leased() <= 3,
            "peak {} tokens exceeds the budget of 3",
            budget.peak_leased()
        );
        assert_eq!(budget.leased(), 0);
    }

    #[test]
    fn budgeted_executor_runs_with_a_drained_budget() {
        let budget = Arc::new(CoreBudget::new(1));
        let _hold = budget.acquire_one();
        let pool = WorkerPool::budgeted(4, Arc::clone(&budget));
        let total: u32 = pool.with_executor(
            |job: u32| job * 2,
            |executor| {
                for job in 0..10 {
                    executor.submit(job);
                }
                (0..10).map(|_| executor.recv()).sum()
            },
        );
        assert_eq!(total, (0..10u32).map(|j| j * 2).sum(), "single leased-free worker suffices");
    }

    #[test]
    fn executor_with_zero_jobs_shuts_down_cleanly() {
        let pool = WorkerPool::new(4);
        let out = pool.with_executor(|job: u8| job, |_executor| 42u8);
        assert_eq!(out, 42);
    }

    #[test]
    fn executor_overlaps_blocking_jobs() {
        // Jobs that *wait* (sleeping, like throttled disk I/O) must overlap
        // even on a single-core machine: 4 × 60 ms on 4 workers should take
        // nowhere near the serial 240 ms.
        let wait = |ms: u64| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        };
        let pool = WorkerPool::new(4);
        let start = std::time::Instant::now();
        pool.with_executor(wait, |executor| {
            for _ in 0..4 {
                executor.submit(60);
            }
            for _ in 0..4 {
                std::hint::black_box(executor.recv());
            }
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "4 overlapping 60 ms jobs took {elapsed:?}"
        );
    }
}
