//! Resident-memory sampling (paper Figure 10).
//!
//! The paper measures "memory usage at one-second intervals during HELIX
//! workflow execution" and reports per-iteration peak and average. We
//! sample the cache's resident bytes after every operator event instead —
//! event-driven sampling is strictly finer-grained than 1 Hz polling for
//! workloads of our scale and keeps the tracker deterministic.

/// Accumulates memory samples for one iteration.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    peak: u64,
    sum: u128,
    samples: u64,
}

impl MemoryTracker {
    /// Fresh tracker.
    pub fn new() -> MemoryTracker {
        MemoryTracker::default()
    }

    /// Record an observation of resident bytes.
    pub fn record(&mut self, resident_bytes: u64) {
        self.peak = self.peak.max(resident_bytes);
        self.sum += resident_bytes as u128;
        self.samples += 1;
    }

    /// Highest observation.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Mean observation (0 when no samples).
    pub fn avg_bytes(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            (self.sum / self.samples as u128) as u64
        }
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Reset for the next iteration.
    pub fn reset(&mut self) {
        *self = MemoryTracker::default();
    }
}

/// Thread-safe twin of [`MemoryTracker`] for the parallel engine, where
/// every worker records a sample after each cache mutation.
///
/// The peak is a lock-free `fetch_max`; the running sum needs 128-bit
/// accumulation (no atomic u128 on stable), so it sits behind a mutex —
/// touched once per sample, far off any hot path.
#[derive(Debug, Default)]
pub struct SharedMemoryTracker {
    peak: std::sync::atomic::AtomicU64,
    accum: std::sync::Mutex<(u128, u64)>,
}

impl SharedMemoryTracker {
    /// Fresh tracker.
    pub fn new() -> SharedMemoryTracker {
        SharedMemoryTracker::default()
    }

    /// Record an observation of resident bytes.
    pub fn record(&self, resident_bytes: u64) {
        self.peak.fetch_max(resident_bytes, std::sync::atomic::Ordering::Relaxed);
        let mut accum = self.accum.lock().unwrap();
        accum.0 += resident_bytes as u128;
        accum.1 += 1;
    }

    /// Highest observation.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Mean observation (0 when no samples).
    pub fn avg_bytes(&self) -> u64 {
        let accum = self.accum.lock().unwrap();
        if accum.1 == 0 {
            0
        } else {
            (accum.0 / accum.1 as u128) as u64
        }
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.accum.lock().unwrap().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tracker_peak_and_average() {
        let t = SharedMemoryTracker::new();
        t.record(100);
        t.record(300);
        t.record(200);
        assert_eq!(t.peak_bytes(), 300);
        assert_eq!(t.avg_bytes(), 200);
        assert_eq!(t.samples(), 3);
        let empty = SharedMemoryTracker::new();
        assert_eq!(empty.peak_bytes(), 0);
        assert_eq!(empty.avg_bytes(), 0);
    }

    #[test]
    fn shared_tracker_concurrent_records() {
        let t = SharedMemoryTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = &t;
                scope.spawn(move || {
                    for v in 1..=100u64 {
                        t.record(v);
                    }
                });
            }
        });
        assert_eq!(t.samples(), 400);
        assert_eq!(t.peak_bytes(), 100);
        assert_eq!(t.avg_bytes(), 50); // mean of 1..=100 is 50.5, integer division
    }

    #[test]
    fn peak_and_average() {
        let mut t = MemoryTracker::new();
        t.record(100);
        t.record(300);
        t.record(200);
        assert_eq!(t.peak_bytes(), 300);
        assert_eq!(t.avg_bytes(), 200);
        assert_eq!(t.samples(), 3);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let t = MemoryTracker::new();
        assert_eq!(t.peak_bytes(), 0);
        assert_eq!(t.avg_bytes(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = MemoryTracker::new();
        t.record(1_000_000);
        t.reset();
        assert_eq!(t.peak_bytes(), 0);
        assert_eq!(t.samples(), 0);
    }

    #[test]
    fn no_overflow_on_large_samples() {
        let mut t = MemoryTracker::new();
        for _ in 0..1000 {
            t.record(u64::MAX / 2);
        }
        assert_eq!(t.avg_bytes(), u64::MAX / 2);
    }
}
